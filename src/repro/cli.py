"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate``  -- run the paired deployment simulation and print the
  Table-1 impact summary (``--backend sqlite`` executes every job on a
  real SQLite database instead of the in-memory interpreter);
* ``diff-backends`` -- run the bundled workloads on every execution
  backend with reuse on and off and assert byte-equal results and
  identical reuse decisions;
* ``tpcds``     -- replay the SparkCruise-on-TPC-DS flow (Section 5.5);
* ``capture``   -- profile a generated workload (compile-only) and save
  the workload repository to a JSONL capture;
* ``analyze``   -- load one or more captures and print workload insights
  (Figure 3 statistics, reuse candidates, join-set opportunities);
* ``explain``   -- compile a query against the demo catalog and print its
  optimized plan;
* ``obs``       -- inspect a flight-recorder capture (``obs metrics``,
  ``obs trace <job_id>``, ``obs events --since <day>``) written by
  ``simulate --obs-dir``;
* ``lint``      -- run the plan/signature/reuse soundness analyzer over
  the bundled workloads (text or JSON findings; non-zero exit on any
  error finding, so it slots straight into CI).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.backends import backend_names
from repro.core.runner import SimulationConfig, WorkloadSimulation
from repro.engine.engine import ScopeEngine
from repro.scheduler import ConcurrentSimulation, ConcurrentSimulationConfig
from repro.selection.registry import SELECTION_ALGORITHMS
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    load_capture,
    render_events,
    render_flamegraph,
)
from repro.selection.policies import SelectionPolicy
from repro.telemetry.comparison import compare_telemetry
from repro.workload.generator import generate_workload
from repro.workload.analysis import pipeline_summary
from repro.workload.persistence import merge_captures, save_repository
from repro.workload.profiling import compile_only_repository


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CloudViews reproduction (EDBT 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="run the deployment simulation (Table 1)")
    simulate.add_argument("--days", type=int, default=6)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--virtual-clusters", type=int, default=3)
    simulate.add_argument("--templates-per-vc", type=int, default=16)
    simulate.add_argument("--selection", default="bigsubs",
                          choices=sorted(SELECTION_ALGORITHMS))
    simulate.add_argument("--workers", type=int, default=None, metavar="N",
                          help="run the wave-parallel simulation on N "
                               "scheduler threads instead of the serial "
                               "cluster co-simulation; the resulting view "
                               "catalog and reuse counts are identical "
                               "for every N")
    simulate.add_argument("--shards", type=int, default=0, metavar="N",
                          help="serve insights from N shard worker "
                               "processes (implies --workers; default 0 "
                               "keeps the in-process service); digest "
                               "and reuse counts are identical for "
                               "every N")
    simulate.add_argument("--obs-dir", default=None, metavar="DIR",
                          help="write the flight-recorder capture "
                               "(metrics.json, spans.jsonl, events.jsonl) "
                               "to DIR")
    simulate.add_argument("--view-ttl", type=float, default=None,
                          metavar="SECONDS",
                          help="view time-to-live in simulated seconds "
                               "(default: one week, the paper's eviction "
                               "policy)")
    simulate.add_argument("--backend", default="memory",
                          choices=sorted(backend_names()),
                          help="execution backend: 'memory' interprets "
                               "plans in-process, 'sqlite' compiles them "
                               "to SQL against a real database")

    diff = sub.add_parser(
        "diff-backends",
        help="differential check: run the bundled workloads on every "
             "backend x reuse setting and assert byte-equal results "
             "and identical reuse decisions")
    diff.add_argument("--workload", default="all",
                      choices=["all", "tpcds", "cooking"])
    diff.add_argument("--days", type=int, default=3,
                      help="cooking-workload days")
    diff.add_argument("--scale-rows", type=int, default=400,
                      help="TPC-DS synthetic row count")

    tpcds = sub.add_parser(
        "tpcds", help="SparkCruise on mini TPC-DS (Section 5.5)")
    tpcds.add_argument("--scale-rows", type=int, default=2000)

    capture = sub.add_parser(
        "capture", help="profile a workload and save a JSONL capture")
    capture.add_argument("output")
    capture.add_argument("--days", type=int, default=7)
    capture.add_argument("--seed", type=int, default=7)
    capture.add_argument("--virtual-clusters", type=int, default=3)
    capture.add_argument("--templates-per-vc", type=int, default=16)

    analyze = sub.add_parser(
        "analyze", help="workload insights over saved captures")
    analyze.add_argument("captures", nargs="+")

    explain = sub.add_parser(
        "explain", help="compile a query against the demo catalog")
    explain.add_argument("sql")
    explain.add_argument("--run-date", default="d0000")

    obs = sub.add_parser(
        "obs", help="inspect a flight-recorder capture")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_metrics = obs_sub.add_parser(
        "metrics", help="render the metrics dump (counters/gauges/"
                        "histograms with p50/p95/p99)")
    obs_metrics.add_argument("--capture", default="obs-capture",
                             help="capture directory (default: obs-capture)")

    obs_trace = obs_sub.add_parser(
        "trace", help="render one job's span tree as a text flamegraph")
    obs_trace.add_argument("job_id")
    obs_trace.add_argument("--capture", default="obs-capture")

    obs_events = obs_sub.add_parser(
        "events", help="print the structured event log")
    obs_events.add_argument("--capture", default="obs-capture")
    obs_events.add_argument("--since", type=int, default=None,
                            metavar="DAY",
                            help="only events at or after simulated "
                                 "midnight of DAY")
    obs_events.add_argument("--kind", default=None,
                            help="filter to one event kind "
                                 "(e.g. view.sealed)")
    obs_events.add_argument("--limit", type=int, default=200)

    lint = sub.add_parser(
        "lint", help="soundness analysis of the reuse pipeline "
                     "(plan validity, signature soundness, reuse safety)")
    lint.add_argument("--format", default="text", choices=["text", "json"],
                      dest="output_format")
    lint.add_argument("--suppress", action="append", default=[],
                      metavar="RULE",
                      help="skip one rule by name (repeatable); see "
                           "--list-rules")
    lint.add_argument("--workload", default="all",
                      choices=["all", "cooking", "tpcds", "source"],
                      help="which bundled workload(s) to analyze; "
                           "'source' runs the static concurrency rules "
                           "over the repro source tree itself")
    lint.add_argument("--seed", type=int, default=7)
    lint.add_argument("--scale-rows", type=int, default=500,
                      help="TPC-DS synthetic row count")
    lint.add_argument("--source-root", default=None, metavar="DIR",
                      help="root directory for the 'source' workload "
                           "(default: the installed repro package)")
    lint.add_argument("--fail-on", default="error",
                      choices=["info", "warn", "error"],
                      help="lowest severity that makes the exit code "
                           "non-zero (default: error)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")

    chaos = sub.add_parser(
        "chaos",
        help="chaos campaign: run the cooking workload under seeded "
             "fault plans and assert every job completes, results stay "
             "byte-identical to a fault-free run, and the catalog "
             "recovers to a consistent digest")
    chaos.add_argument("--seed", default="0..4", metavar="SPEC",
                       help="campaign seeds: one int, a comma list "
                            "('0,3,9'), or an inclusive range ('0..4'); "
                            "default 0..4")
    chaos.add_argument("--backend", default="memory",
                       choices=sorted(backend_names()) + ["all"],
                       help="execution backend under test, or 'all'")
    chaos.add_argument("--days", type=int, default=3,
                       help="cooking-workload days per run")
    chaos.add_argument("--shards", type=int, default=0, metavar="N",
                       help="run each campaign seed against N insights "
                            "shard processes; adds shard-seam faults "
                            "(RPC drops/delays, real SIGKILLs) to the "
                            "menu and checks merged per-shard WAL "
                            "recovery (default 0: in-process service)")
    chaos.add_argument("--plan", action="store_true",
                       help="print each seed's fault plan and exit "
                            "without running anything")

    gc = sub.add_parser(
        "gc", help="view lifecycle operations against a catalog journal "
                   "(sweep, GDPR forget, epoch bump, stats)")
    gc.add_argument("--journal-dir", default="repro-journal", metavar="DIR",
                    help="catalog journal directory "
                         "(default: repro-journal)")
    gc.add_argument("--sweep", action="store_true",
                    help="run one GC sweep (expiry + purged-entry "
                         "collection + budget eviction)")
    gc.add_argument("--forget", default=None, metavar="STREAM",
                    help="apply a GDPR forget to STREAM: new GUID and a "
                         "cascade purge of every dependent view")
    gc.add_argument("--bump-epoch", action="store_true",
                    help="roll the runtime epoch: all signatures change, "
                         "every view and annotation is invalidated")
    gc.add_argument("--stats", action="store_true",
                    help="print the lifecycle summary")
    gc.add_argument("--now", type=float, default=None,
                    help="simulated time for sweep/forget "
                         "(default: wall clock)")
    gc.add_argument("--storage-budget", type=int, default=None,
                    metavar="BYTES",
                    help="byte budget enforced by --sweep's eviction pass")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "simulate": _cmd_simulate,
        "diff-backends": _cmd_diff_backends,
        "tpcds": _cmd_tpcds,
        "capture": _cmd_capture,
        "analyze": _cmd_analyze,
        "explain": _cmd_explain,
        "obs": _cmd_obs,
        "lint": _cmd_lint,
        "gc": _cmd_gc,
        "chaos": _cmd_chaos,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        sys.stderr.close()
        return 0


# --------------------------------------------------------------------- #
# commands


def _workload(args):
    return generate_workload(seed=args.seed,
                             virtual_clusters=args.virtual_clusters,
                             templates_per_vc=args.templates_per_vc)


def _cmd_simulate(args) -> int:
    if args.shards and args.workers is None:
        # Sharding only exists on the concurrent path; give it the
        # scheduler default rather than failing.
        args.workers = 4
    if args.workers is not None:
        return _cmd_simulate_concurrent(args)
    reports = {}
    recorder = FlightRecorder()
    simulations = {}
    for enabled in (True, False):
        label = "cloudviews" if enabled else "baseline"
        print(f"simulating {args.days} days ({label}) ...")
        config = SimulationConfig(days=args.days, cloudviews_enabled=enabled,
                                  selection_algorithm=args.selection,
                                  view_ttl_seconds=args.view_ttl,
                                  backend=args.backend)
        # The flight recorder rides on the CloudViews-enabled run; the
        # baseline stays uninstrumented, as in the paper's A/B harness.
        simulation = WorkloadSimulation(
            _workload(args), config,
            recorder=recorder if enabled else None)
        simulations[label] = simulation
        reports[label] = simulation.run()
    enabled, baseline = reports["cloudviews"], reports["baseline"]
    comparison = compare_telemetry(baseline.telemetry, enabled.telemetry)
    summary = pipeline_summary(enabled.repository)

    print(f"\n{'Jobs':<42}{summary['jobs']:>12,}")
    print(f"{'Views Created':<42}{enabled.views_created:>12,}")
    print(f"{'Views Used':<42}{enabled.views_reused:>12,}")
    for label, value in comparison.rows():
        print(f"{label:<42}{value:>11.2f}%")

    usage = simulations["cloudviews"].engine.insights.metrics
    lookups = usage.cache_hits + usage.cache_misses
    hit_ratio = usage.cache_hits / max(1, lookups)
    print("\nInsights service usage")
    print(f"{'Annotation Fetches':<42}{usage.fetches:>12,}")
    print(f"{'Serving-Cache Hit Ratio':<42}{hit_ratio:>11.1%}")
    print(f"{'Annotations Served':<42}{usage.annotations_served:>12,}")
    print(f"{'View Locks Acquired':<42}{usage.locks_acquired:>12,}")
    print(f"{'View Lock Denials':<42}{usage.locks_denied:>12,}")
    print(f"{'Views Early-Sealed':<42}"
          f"{usage.views_reported_available:>12,}")

    print()
    print(recorder.render_summary())
    if args.obs_dir:
        paths = recorder.dump(args.obs_dir)
        print(f"flight-recorder capture -> {args.obs_dir} "
              f"({', '.join(sorted(paths))})")
    return 0


def _cmd_simulate_concurrent(args) -> int:
    """Wave-parallel simulation on the concurrent scheduler.

    The reported catalog digest and reuse counts are invariant in the
    worker count: ``--workers 8`` must print the same digest as
    ``--workers 1`` (only the throughput line changes).
    """
    recorder = FlightRecorder()
    config = ConcurrentSimulationConfig(
        days=args.days, workers=args.workers,
        selection_algorithm=args.selection,
        view_ttl_seconds=args.view_ttl,
        backend=args.backend,
        shards=args.shards)
    sharding = (f", {args.shards} shards" if args.shards else "")
    print(f"simulating {args.days} days "
          f"(cloudviews, {args.workers} workers{sharding}) ...")
    simulation = ConcurrentSimulation(_workload(args), config,
                                      recorder=recorder)
    report = simulation.run()

    print(f"\n{'Jobs':<42}{report.jobs:>12,}")
    print(f"{'Job Failures':<42}{report.failures:>12,}")
    print(f"{'Degraded Jobs (reuse disabled)':<42}"
          f"{report.degraded_jobs:>12,}")
    print(f"{'Views Created':<42}{report.views_created:>12,}")
    print(f"{'Views Used':<42}{report.views_reused:>12,}")
    print(f"{'Throughput (jobs/s)':<42}{report.jobs_per_second:>12,.1f}")
    if report.shard_stats:
        busy = report.shard_busy_seconds
        print(f"{'Shard Busy Seconds (makespan/total)':<42}"
              f"{max(busy):>6.3f}/{sum(busy):.3f}")
    print(f"View Catalog Digest  {report.catalog_digest}")

    usage = simulation.engine.insights.metrics
    client = simulation.engine.insights
    print("\nInsights client")
    print(f"{'Annotation Fetches':<42}{usage.fetches:>12,}")
    print(f"{'Client-Cache Hits':<42}{client.cache_hits:>12,}")
    print(f"{'Batched Fetches':<42}{client.batched_fetches:>12,}")
    print(f"{'Degraded Fetches':<42}{client.degraded_fetches:>12,}")
    print(f"{'View Locks Acquired':<42}{usage.locks_acquired:>12,}")
    print(f"{'View Lock Denials':<42}{usage.locks_denied:>12,}")

    if args.obs_dir:
        paths = recorder.dump(args.obs_dir)
        print(f"flight-recorder capture -> {args.obs_dir} "
              f"({', '.join(sorted(paths))})")
    return 0


def _cmd_diff_backends(args) -> int:
    """Cross-backend differential check; non-zero exit on any mismatch."""
    from repro.backends.differential import (
        run_cooking_differential,
        run_tpcds_differential,
    )

    reports = []
    if args.workload in ("all", "tpcds"):
        reports.append(run_tpcds_differential(scale_rows=args.scale_rows))
    if args.workload in ("all", "cooking"):
        reports.append(run_cooking_differential(days=args.days))
    failed = False
    for report in reports:
        print(report.summary())
        for mismatch in report.mismatches:
            print(f"  - {mismatch}")
        failed = failed or not report.ok
    return 1 if failed else 0


def _cmd_obs(args) -> int:
    capture = load_capture(args.capture)
    if not capture:
        print(f"no flight-recorder capture found in {args.capture!r} "
              "(run `repro simulate --obs-dir <dir>` first)")
        return 1
    if args.obs_command == "metrics":
        print(MetricsRegistry.render_dict(capture.get("metrics", {})))
    elif args.obs_command == "trace":
        spans = [s for s in capture.get("spans", [])
                 if s.trace_id == args.job_id]
        print(render_flamegraph(spans, args.job_id))
        if not spans:
            return 1
    elif args.obs_command == "events":
        events = capture.get("events", [])
        if args.since is not None:
            events = [e for e in events if e.at >= args.since * 86400.0]
        if args.kind is not None:
            events = [e for e in events if e.kind == args.kind]
        print(render_events(events, limit=args.limit))
    return 0


def _cmd_gc(args) -> int:
    """View lifecycle operations against a durable catalog journal."""
    import time as _time

    from repro.lifecycle import LifecycleConfig, LifecycleManager

    engine = ScopeEngine()
    manager = LifecycleManager(engine, LifecycleConfig(
        journal_dir=args.journal_dir,
        storage_budget_bytes=args.storage_budget))
    now = _time.time() if args.now is None else args.now
    acted = False
    try:
        report = manager.last_recovery
        if report is not None and report.recovered_anything:
            print(f"recovered {report.views_restored} view(s) from "
                  f"{args.journal_dir} (snapshot: {report.snapshot_views}, "
                  f"wal ops: {report.wal_ops}, epoch: {report.epoch})")
        if args.forget:
            purged = manager.forget_stream(args.forget, at=now)
            print(f"gdpr forget {args.forget!r}: "
                  f"purged {purged} dependent view(s)")
            acted = True
        if args.bump_epoch:
            version = manager.bump_epoch(at=now)
            print(f"runtime epoch bumped -> {version} "
                  f"(epoch {manager.epoch}; all views invalidated)")
            acted = True
        if args.sweep:
            result = manager.janitor.run_once(now)
            print(f"sweep: expired {result.expired}, "
                  f"collected {result.removed}, "
                  f"budget-evicted {result.budget_evicted}, "
                  f"pinned-skipped {result.pinned_skipped}, "
                  f"reclaimed {result.reclaimed_bytes:,} bytes "
                  f"in {result.duration_seconds * 1000:.2f} ms")
            acted = True
        if args.stats or not acted:
            for key, value in manager.stats(now).items():
                print(f"{key:<28} {value}")
    finally:
        manager.close()
    return 0


def _cmd_tpcds(args) -> int:
    from repro.extensions.sparkcruise import (
        QueryEventListener,
        run_workload_analysis,
    )
    from repro.workload.tpcds import (
        TPCDS_QUERIES,
        install_tpcds,
        run_tpcds_suite,
    )

    baseline_engine = ScopeEngine()
    install_tpcds(baseline_engine, scale_rows=args.scale_rows)
    baseline = run_tpcds_suite(baseline_engine, reuse_enabled=False)

    engine = ScopeEngine()
    install_tpcds(engine, scale_rows=args.scale_rows)
    listener = QueryEventListener(engine)
    for _, sql in TPCDS_QUERIES:
        run = engine.run_sql(sql, reuse_enabled=False, now=0.0)
        listener.on_query_end(run, now=0.0)
    run_workload_analysis(listener, SelectionPolicy(min_reuses_per_epoch=0.0))
    enabled = run_tpcds_suite(engine, reuse_enabled=True, now=100.0)

    reduction = (baseline["work"] - enabled["work"]) / baseline["work"] * 100
    print(f"queries:                {len(TPCDS_QUERIES)}")
    print(f"baseline work:          {baseline['work']:,.0f}")
    print(f"with reuse:             {enabled['work']:,.0f}")
    print(f"running-time reduction: {reduction:.1f}% (paper: ~30%)")
    return 0


def _cmd_capture(args) -> int:
    repository = compile_only_repository(_workload(args), days=args.days)
    lines = save_repository(repository, args.output)
    print(f"captured {repository.total_jobs()} jobs / "
          f"{repository.total_subexpressions()} subexpressions "
          f"({lines} lines) -> {args.output}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.extensions.generalized import join_set_opportunities
    from repro.selection.candidates import build_candidates
    from repro.workload.patterns import discover_patterns

    repository = merge_captures(args.captures)
    summary = pipeline_summary(repository)
    print(f"jobs:                   {summary['jobs']:,}")
    print(f"subexpressions:         {summary['subexpressions']:,}")
    print(f"virtual clusters:       {summary['virtual_clusters']}")
    print(f"repeated fraction:      {repository.repeated_fraction():.1%}")
    print(f"avg repeat frequency:   "
          f"{repository.average_repeat_frequency():.2f}")
    candidates = build_candidates(repository)
    print(f"reuse candidates:       {len(candidates)}")
    print("top join-sets (Figure 8):")
    for opportunity in join_set_opportunities(repository)[:5]:
        print(f"  {' JOIN '.join(opportunity.inputs):<40} "
              f"x{opportunity.occurrences} "
              f"({opportunity.distinct_variants} variants)")
    print("top query patterns (operator chains):")
    for pattern in discover_patterns(repository)[:5]:
        print(f"  {pattern.render():<50.50} x{pattern.occurrences}")
    return 0


def _cmd_explain(args) -> int:
    engine = ScopeEngine()
    workload = generate_workload(seed=7, virtual_clusters=1,
                                 templates_per_vc=1)
    workload.install(engine)
    compiled = engine.compile(args.sql, params={"runDate": args.run_date},
                              reuse_enabled=False)
    print(compiled.plan.explain())
    return 0


def _parse_seed_spec(spec: str) -> List[int]:
    """``'7'``, ``'0,3,9'``, or the inclusive range ``'0..4'``."""
    spec = spec.strip()
    if ".." in spec:
        low, high = spec.split("..", 1)
        start, stop = int(low), int(high)
        if stop < start:
            raise ValueError(f"empty seed range {spec!r}")
        return list(range(start, stop + 1))
    return [int(part) for part in spec.split(",") if part.strip()]


def _cmd_chaos(args) -> int:
    from repro.faults.chaos import (
        campaign_plan,
        check_ctas_crash_recovery,
        run_campaign,
    )

    # CI overrides the seed matrix without touching workflow args.
    spec = os.environ.get("REPRO_CHAOS_SEEDS", args.seed)
    try:
        seeds = _parse_seed_spec(spec)
    except ValueError as error:
        print(f"bad --seed spec: {error}", file=sys.stderr)
        return 2
    if args.plan:
        for seed in seeds:
            plan = campaign_plan(seed, shards=args.shards)
            print(f"seed {seed}: " + "; ".join(
                f"{s.point}:{s.kind}(p={s.probability},"
                f"max={s.max_fires})" for s in plan.specs))
        return 0
    backends = (sorted(backend_names()) if args.backend == "all"
                else [args.backend])
    failed = False
    for backend in backends:
        report = run_campaign(seeds, backend=backend, days=args.days,
                              shards=args.shards)
        print(report.summary())
        if not report.ok:
            failed = True
        if backend == "sqlite":
            # The restart-consistency probe only means something on a
            # backend with durable state.
            print(check_ctas_crash_recovery())
    return 1 if failed else 0


def _cmd_lint(args) -> int:
    from repro.analysis import AnalysisContext, Analyzer, Report, rule_catalog

    if args.list_rules:
        for name, severity, description in rule_catalog():
            print(f"{name:<24} {severity:<5} {description}")
        return 0

    analyzer = Analyzer(suppress=args.suppress)
    report = Report()
    if args.workload in ("all", "cooking"):
        report.extend(_lint_cooking(analyzer, args.seed))
    if args.workload in ("all", "tpcds"):
        report.extend(_lint_tpcds(analyzer, args.scale_rows))
    if args.workload in ("all", "source"):
        report.extend(_lint_source(analyzer, args.source_root))
    if args.output_format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code_at(args.fail_on)


def _lint_source(analyzer, source_root):
    """Static concurrency lint over the source tree (no imports)."""
    import repro
    from repro.analysis.concurrency import build_index

    root = source_root or os.path.dirname(repro.__file__)
    return analyzer.analyze_source(build_index(root))


def _lint_cooking(analyzer, seed: int):
    """Compile-only lint of one cooked day of the generated workload."""
    from repro.analysis import AnalysisContext

    engine = ScopeEngine()
    workload = generate_workload(seed=seed, virtual_clusters=2,
                                 templates_per_vc=8)
    workload.install(engine)
    plans = []
    last = 0.0
    for instance in workload.jobs_for_day(0):
        compiled = engine.compile(
            instance.template.sql, params=instance.params,
            virtual_cluster=instance.virtual_cluster,
            reuse_enabled=False, now=instance.submit_time,
            job_id=f"{instance.template.template_id}@d0")
        plans.append((compiled.job_id, compiled.plan))
        last = max(last, instance.submit_time)
    ctx = AnalysisContext(catalog=engine.catalog,
                          view_store=engine.view_store,
                          salt=engine.signature_salt, now=last)
    return analyzer.analyze_workload(plans, ctx)


def _lint_tpcds(analyzer, scale_rows: int):
    """Lint the TPC-DS flow end to end: the reuse round's plans carry
    real ViewScans and Spools, so the reuse-safety rules get exercised
    against a live view store."""
    from repro.analysis import AnalysisContext
    from repro.extensions.sparkcruise import (
        QueryEventListener,
        run_workload_analysis,
    )
    from repro.workload.tpcds import TPCDS_QUERIES, install_tpcds

    engine = ScopeEngine()
    install_tpcds(engine, scale_rows=scale_rows)
    listener = QueryEventListener(engine)
    for _, sql in TPCDS_QUERIES:
        run = engine.run_sql(sql, reuse_enabled=False, now=0.0)
        listener.on_query_end(run, now=0.0)
    run_workload_analysis(listener, SelectionPolicy(min_reuses_per_epoch=0.0))

    plans = []
    matches = []
    now = 100.0
    for offset, (name, sql) in enumerate(TPCDS_QUERIES):
        now = 100.0 + offset
        run = engine.run_sql(sql, reuse_enabled=True, now=now)
        plans.append((name, run.compiled.plan))
        matches.extend(run.compiled.optimized.matches)
    ctx = AnalysisContext(catalog=engine.catalog,
                          view_store=engine.view_store,
                          salt=engine.signature_salt, now=now)
    report = analyzer.analyze_workload(plans, ctx)
    return report.extend(analyzer.analyze_matches(matches, ctx))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
