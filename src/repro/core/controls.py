"""Multi-level CloudViews enablement controls.

Section 4 ("Multi-level control"): "We ended up placing several levels of
control to enable or disable CloudViews.  These include job-level control
for individual developers ..., VC-level control ..., cluster-level ...,
and insight service level control as the uber control."

Deployment follows the paper's rollout story (Section 4, "Opt-in vs
opt-out"): an *opt-in* phase where only bought-in customers are onboarded,
then an *opt-out* phase "where virtual clusters are grouped into tiers
(based on business importance) and they are automatically onboarded tier by
tier, starting with the lowest tier."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


class DeploymentMode(enum.Enum):
    OPT_IN = "opt-in"
    OPT_OUT = "opt-out"


@dataclass
class MultiLevelControls:
    """The four-level enable/disable hierarchy.

    The service-level kill switch lives on the
    :class:`~repro.insights.service.InsightsService` itself; this object is
    consulted together with it (see :meth:`enabled_for`).
    """

    cluster_enabled: bool = True
    mode: DeploymentMode = DeploymentMode.OPT_IN
    vc_overrides: Dict[str, bool] = field(default_factory=dict)
    vc_tiers: Dict[str, int] = field(default_factory=dict)
    onboarded_tiers: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # administration

    def enable_vc(self, virtual_cluster: str) -> None:
        """Customer opts a VC in (or back in after an opt-out)."""
        self.vc_overrides[virtual_cluster] = True

    def disable_vc(self, virtual_cluster: str) -> None:
        """Customer opts a VC out."""
        self.vc_overrides[virtual_cluster] = False

    def clear_vc(self, virtual_cluster: str) -> None:
        """Remove any explicit override; the deployment mode decides."""
        self.vc_overrides.pop(virtual_cluster, None)

    def assign_tier(self, virtual_cluster: str, tier: int) -> None:
        self.vc_tiers[virtual_cluster] = tier

    def onboard_tier(self, tier: int) -> None:
        """Opt-out rollout step: auto-onboard every VC of this tier."""
        self.onboarded_tiers.add(tier)

    def onboard_up_to_tier(self, tier: int) -> None:
        """Onboard tiers lowest-first, as in the paper's rollout."""
        known = set(self.vc_tiers.values())
        for candidate in sorted(known):
            if candidate <= tier:
                self.onboarded_tiers.add(candidate)

    # ------------------------------------------------------------------ #
    # decision

    def vc_enabled(self, virtual_cluster: str) -> bool:
        override = self.vc_overrides.get(virtual_cluster)
        if override is not None:
            return override
        if self.mode is DeploymentMode.OPT_IN:
            return False
        tier = self.vc_tiers.get(virtual_cluster)
        if tier is None:
            return True  # untiered VCs ride along in opt-out mode
        return tier in self.onboarded_tiers

    def enabled_for(self, virtual_cluster: str,
                    job_override: Optional[bool] = None,
                    service_enabled: bool = True) -> bool:
        """Resolve the full hierarchy for one job.

        A job-level override can only *disable* (a developer cannot force
        CloudViews on in a VC that has not been onboarded).
        """
        if not service_enabled:
            return False
        if not self.cluster_enabled:
            return False
        if not self.vc_enabled(virtual_cluster):
            return False
        return job_override is not False
