"""The CloudViews manager: the public entry point of the library.

Wraps a :class:`~repro.engine.engine.ScopeEngine` with the complete
feedback loop of Figure 5:

* every executed job is recorded into the workload repository;
* :meth:`analyze_and_publish` runs view selection over the recorded window
  and publishes the tagged signatures to the insights service;
* subsequent jobs transparently materialize and reuse the selected
  subexpressions -- "all completely automatic and transparent to the
  users" (Abstract);
* the multi-level controls decide, per job, whether CloudViews applies.

For full cluster-level experiments (latency, containers, queues) use
:class:`~repro.core.runner.WorkloadSimulation`; this class is the
light-weight interactive surface used by the examples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.controls import MultiLevelControls
from repro.core.runner import record_job_into
from repro.engine.engine import JobRun, ScopeEngine
from repro.selection.candidates import build_candidates
from repro.selection.policies import SelectionPolicy, SelectionResult
from repro.selection.registry import run_selection, validate_selection_algorithm
from repro.workload.repository import WorkloadRepository


class CloudViews:
    """Automatic computation reuse over a SCOPE-like engine."""

    def __init__(self,
                 engine: Optional[ScopeEngine] = None,
                 controls: Optional[MultiLevelControls] = None,
                 policy: Optional[SelectionPolicy] = None,
                 selection_algorithm: str = "greedy"):
        validate_selection_algorithm(selection_algorithm)
        self.engine = engine or ScopeEngine()
        self.controls = controls or MultiLevelControls()
        self.policy = policy or SelectionPolicy()
        self.selection_algorithm = selection_algorithm
        self.repository = WorkloadRepository()
        self.last_selection: Optional[SelectionResult] = None
        self._full_work: Dict[str, float] = {}
        self._template_counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    # running jobs

    def run(self, sql: str,
            params: Optional[Dict[str, object]] = None,
            virtual_cluster: str = "default",
            template_id: str = "",
            pipeline_id: str = "",
            job_reuse_override: Optional[bool] = None,
            now: float = 0.0) -> JobRun:
        """Compile and execute one job, honoring the control hierarchy."""
        reuse = self.controls.enabled_for(
            virtual_cluster,
            job_override=job_reuse_override,
            service_enabled=self.engine.insights.enabled)
        run = self.engine.run_sql(
            sql, params=params, virtual_cluster=virtual_cluster,
            reuse_enabled=reuse, now=now)
        record_job_into(
            self.repository, run, now,
            virtual_cluster=virtual_cluster,
            template_id=template_id or f"adhoc-{next(self._template_counter)}",
            pipeline_id=pipeline_id,
            salt=self.engine.signature_salt,
            full_work=self._full_work,
        )
        return run

    # ------------------------------------------------------------------ #
    # the feedback loop

    def analyze_and_publish(self,
                            window_start: Optional[float] = None,
                            window_end: Optional[float] = None
                            ) -> SelectionResult:
        """Workload analysis -> view selection -> insights publication.

        Analysis only considers jobs compiled under the *current* runtime
        version: signatures from older runtimes no longer match anything
        (Section 4, "Impact of changed signatures").
        """
        repository = self.repository.for_runtime(
            self.engine.runtime_version)
        if window_start is not None or window_end is not None:
            repository = repository.window(
                window_start if window_start is not None else float("-inf"),
                window_end if window_end is not None else float("inf"))
        candidates = build_candidates(repository)
        result = run_selection(
            self.selection_algorithm, repository, candidates, self.policy,
            recorder=self.engine.recorder)
        self.engine.insights.publish(result.annotations())
        self.last_selection = result
        return result

    def handle_runtime_upgrade(self, version: str) -> None:
        """Roll the engine to a new runtime version.

        All published annotations are withdrawn immediately (their salted
        signatures can no longer match), and the next
        :meth:`analyze_and_publish` re-runs the workload analysis over
        jobs observed under the new runtime -- the Section-4 recipe:
        "we need to keep track of changes that can affect signatures and
        re-run any prior workload analysis."
        """
        self.engine.set_runtime_version(version)
        self.engine.insights.publish([])
        self.last_selection = None

    # ------------------------------------------------------------------ #
    # operational surface

    def purge_view(self, strict_signature: str) -> None:
        """User-initiated purge of a view's files (Section 2.4).

        Purging only the catalog entry used to leave two things behind:
        the insights-service view lock (its builder will never come back
        to release it) and the published annotation (which would drive a
        pointless immediate rebuild of a view the user just deleted).
        Release the lock and retract the annotation along with the purge.
        """
        insights = self.engine.insights
        view = self.engine.view_store.get(strict_signature)
        if view is not None and view.recurring_signature:
            insights.retract([view.recurring_signature])
        insights.force_release_lock(strict_signature)
        self.engine.view_store.purge(strict_signature)

    def evict_expired(self, now: float) -> int:
        return len(self.engine.view_store.evict_expired(now))

    def storage_in_use(self, now: float) -> int:
        return self.engine.view_store.storage_in_use(now)

    @property
    def views_created(self) -> int:
        return self.engine.view_store.total_created

    @property
    def views_reused(self) -> int:
        return self.engine.view_store.total_reused
