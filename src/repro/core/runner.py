"""The co-simulation runner: engine + cluster + feedback loop.

This is the experiment harness behind the paper's production numbers
(Table 1, Figures 6-7).  One :class:`WorkloadSimulation` drives a
:class:`~repro.workload.generator.CookingWorkload` over N simulated days:

* at each day boundary the cooking pipelines regenerate the shared fact
  streams (bulk updates -> new GUIDs -> old views go stale) and expired
  views are evicted;
* periodically, the CloudViews feedback loop re-runs workload analysis and
  view selection over the trailing window and publishes fresh annotations
  to the insights service;
* every job submission compiles against the engine *at its simulated
  arrival time* (so view visibility is temporally honest), row-executes to
  obtain observed statistics, and is then scheduled on the cluster
  simulator; spool-writer stages early-seal their views at the simulated
  moment they complete.

Run it once with CloudViews enabled and once disabled to reproduce the
paper's baseline-vs-CloudViews comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.simulator import (
    ClusterSimulator,
    JobTelemetry,
    SimulatedJob,
)
from repro.cluster.stages import (
    build_stage_graph,
)
from repro.common.clock import SECONDS_PER_DAY
from repro.core.controls import MultiLevelControls
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.engine.engine import EngineConfig, JobRun, ScopeEngine
from repro.optimizer.stats import CardinalityEstimator
from repro.executor.executor import choose_join_algorithm
from repro.plan.logical import Join, LogicalPlan, Scan, Spool, ViewScan
from repro.selection.candidates import build_candidates
from repro.selection.policies import SelectionPolicy, SelectionResult
from repro.selection.registry import run_selection, validate_selection_algorithm
from repro.signatures.signature import (
    is_reuse_eligible,
    recurring_signature,
    signature_tag,
    strict_signature,
)
from repro.workload.generator import CookingWorkload, JobInstance
from repro.workload.repository import (
    JobRecord,
    SubexpressionRecord,
    WorkloadRepository,
)


@dataclass
class SimulationConfig:
    """Knobs for one simulated deployment window."""

    days: int = 7
    cloudviews_enabled: bool = True
    total_containers: int = 60
    vc_quota: int = 10
    work_rate: float = 30.0
    container_startup: float = 2.0
    selection_algorithm: str = "bigsubs"
    policy: SelectionPolicy = field(default_factory=lambda: SelectionPolicy(
        storage_budget_bytes=50_000_000,
        materialization_lag_seconds=150.0,
        min_reuses_per_epoch=2.0,
    ))
    warmup_days: int = 1          # observe before the first selection
    reselect_every_days: int = 1  # feedback-loop cadence
    selection_window_days: int = 3
    rows_per_partition: float = 15.0
    max_partitions: int = 96
    vc_job_slots: int = 3
    job_overhead_seconds: float = 45.0
    #: View TTL in simulated seconds (``repro simulate --view-ttl``);
    #: ``None`` keeps the engine default (one week, §3.1).
    view_ttl_seconds: Optional[float] = None
    #: Execution backend name (``repro simulate --backend``).
    backend: str = "memory"


@dataclass
class SimulationReport:
    """Everything the benchmarks read: telemetry plus workload records."""

    config: SimulationConfig
    telemetry: List[JobTelemetry]
    repository: WorkloadRepository
    views_created: int
    views_reused: int
    selections: List[SelectionResult] = field(default_factory=list)

    # ---- cumulative totals (Table 1 numerators) ----

    def total(self, metric: str) -> float:
        return sum(getattr(t, metric) for t in self.telemetry)

    def daily(self, metric: str) -> Dict[int, float]:
        """Metric summed per submission day (Figures 6-7 series)."""
        out: Dict[int, float] = {}
        for t in self.telemetry:
            day = int(t.submit_time // SECONDS_PER_DAY)
            out[day] = out.get(day, 0.0) + getattr(t, metric)
        return out

    def cumulative_daily(self, metric: str) -> List[Tuple[int, float]]:
        daily = self.daily(metric)
        series: List[Tuple[int, float]] = []
        running = 0.0
        for day in sorted(daily):
            running += daily[day]
            series.append((day, running))
        return series


class WorkloadSimulation:
    """Drives one workload through one configuration."""

    def __init__(self, workload: CookingWorkload, config: SimulationConfig,
                 engine: Optional[ScopeEngine] = None,
                 controls: Optional[MultiLevelControls] = None,
                 on_day_boundary=None,
                 monitor=None,
                 recorder=None):
        self.workload = workload
        self.config = config
        if engine is None:
            engine_config = EngineConfig()
            if config.view_ttl_seconds is not None:
                engine_config.view_ttl_seconds = config.view_ttl_seconds
            from repro.backends import create_backend
            engine = ScopeEngine(config=engine_config,
                                 backend=create_backend(config.backend))
        self.engine = engine
        self.controls = controls
        #: Flight recorder for the whole feedback loop.  Installing it
        #: here wires the engine, insights service, and view store; the
        #: cluster simulator drives its simulated clock.  ``None`` keeps
        #: the zero-overhead :data:`~repro.obs.recorder.NULL_RECORDER`.
        self.recorder = recorder or NULL_RECORDER
        if recorder is not None:
            recorder.install(self.engine)
        #: Optional hook called as ``on_day_boundary(day, simulation)`` at
        #: each simulated midnight, after cooking/eviction and before
        #: reselection -- used for deployment scenarios such as the
        #: paper's tier-by-tier opt-out rollout (Section 4).
        self.on_day_boundary = on_day_boundary
        #: Optional :class:`~repro.engine.monitoring.QueryMonitor`; when
        #: provided, every compiled job is surfaced to it (Figure 5's
        #: query-monitoring tool).
        self.monitor = monitor
        self.repository = WorkloadRepository()
        self.selections: List[SelectionResult] = []
        self._full_work: Dict[str, float] = {}
        validate_selection_algorithm(config.selection_algorithm)

    # ------------------------------------------------------------------ #
    # top level

    def run(self) -> SimulationReport:
        self.workload.install(self.engine, at=0.0)
        simulator = ClusterSimulator(
            total_containers=self.config.total_containers,
            vc_quotas={vc: self.config.vc_quota
                       for vc in self.workload.virtual_clusters},
            work_rate=self.config.work_rate,
            container_startup=self.config.container_startup,
            vc_job_slots=self.config.vc_job_slots,
            job_overhead_seconds=self.config.job_overhead_seconds,
            recorder=self.recorder,
        )
        for day in range(self.config.days):
            if day > 0:
                simulator.add_arrival(
                    day * SECONDS_PER_DAY,
                    lambda now, d=day: self._day_boundary(d, now))
            for instance in self.workload.jobs_for_day(day):
                simulator.add_arrival(
                    instance.submit_time,
                    lambda now, inst=instance: self._launch(inst, now))
        telemetry = simulator.run()
        return SimulationReport(
            config=self.config,
            telemetry=telemetry,
            repository=self.repository,
            views_created=self.engine.view_store.total_created,
            views_reused=self.engine.view_store.total_reused,
            selections=self.selections,
        )

    # ------------------------------------------------------------------ #
    # day boundary: cooking, eviction, feedback loop

    def _day_boundary(self, day: int, now: float) -> None:
        self.workload.cook(self.engine, day)
        self.engine.view_store.evict_expired(now)
        if self.on_day_boundary is not None:
            self.on_day_boundary(day, self)
        if not self.config.cloudviews_enabled:
            return None
        if day < self.config.warmup_days:
            return None
        if (day - self.config.warmup_days) % self.config.reselect_every_days:
            return None
        self._reselect(now)
        return None

    def _reselect(self, now: float) -> None:
        epoch_id = f"epoch-{len(self.selections) + 1}"
        epoch_span = self.recorder.start_span(
            "selection.epoch", trace_id=epoch_id, at=now,
            algorithm=self.config.selection_algorithm)
        window_start = now - self.config.selection_window_days * SECONDS_PER_DAY
        window = self.repository.window(window_start, now)
        candidates = build_candidates(window)
        result = run_selection(
            self.config.selection_algorithm, window, candidates,
            self.config.policy, recorder=self.recorder)
        published = self.engine.insights.publish(result.annotations())
        self.selections.append(result)
        epoch_span.annotate("selected", len(result.selected))
        epoch_span.annotate("published", published)
        epoch_span.finish(at=now)
        self.recorder.event(
            obs_events.SELECTION_EPOCH, at=now, job_id=epoch_id,
            algorithm=self.config.selection_algorithm,
            considered=result.considered,
            selected=len(result.selected),
            rejected_by_budget=result.rejected_by_budget,
            rejected_by_schedule=result.rejected_by_schedule,
            storage_used=result.storage_used,
            published=published,
        )

    # ------------------------------------------------------------------ #
    # per-job launch (compile at arrival time)

    def _launch(self, instance: JobInstance, now: float) -> Optional[SimulatedJob]:
        template = instance.template
        reuse = self.config.cloudviews_enabled
        if reuse and self.controls is not None:
            reuse = self.controls.enabled_for(
                template.virtual_cluster,
                service_enabled=self.engine.insights.enabled)
        compiled = self.engine.compile(
            template.sql,
            params=instance.params,
            virtual_cluster=template.virtual_cluster,
            reuse_enabled=reuse,
            now=now,
        )
        run = self.engine.execute(compiled, now=now, seal_views=False)
        if self.monitor is not None \
                and not getattr(self.monitor, "event_driven", False):
            # Event-driven monitors already saw the job.compiled and
            # view.sealed events through the flight recorder's log.
            self.monitor.observe_compile(compiled, at=now)
            self.monitor.observe_run(run)
        self._record(template, compiled.job_id, now, run)

        estimator = CardinalityEstimator(
            self.engine.catalog, history=None,
            overestimate=self.engine.config.overestimate,
            salt=self.engine.signature_salt)
        graph = build_stage_graph(
            compiled.plan, run.result, estimator,
            rows_per_partition=self.config.rows_per_partition,
            max_partitions=self.config.max_partitions)

        def seal(stage, at, job_run=run):
            self.engine.seal_spooled(job_run, stage.spool_signature, at)

        return SimulatedJob(
            job_id=compiled.job_id,
            virtual_cluster=template.virtual_cluster,
            submit_time=now,
            graph=graph,
            input_rows=run.result.input_rows,
            input_bytes=run.result.input_bytes,
            data_read_bytes=run.result.data_read_bytes,
            views_built=len(run.result.spooled),
            views_reused=compiled.reused_views,
            on_spool_sealed=seal,
        )

    # ------------------------------------------------------------------ #
    # repository ingestion

    def _record(self, template, job_id: str, now: float, run: JobRun) -> None:
        record_job_into(
            self.repository, run, now,
            virtual_cluster=template.virtual_cluster,
            template_id=template.template_id,
            pipeline_id=template.pipeline_id,
            salt=self.engine.signature_salt,
            full_work=self._full_work,
        )


def record_job_into(repository: WorkloadRepository, run: JobRun, now: float,
                    virtual_cluster: str, template_id: str, pipeline_id: str,
                    salt: str,
                    full_work: Optional[Dict[str, float]] = None) -> None:
    """Ingest one executed job into the denormalized subexpression table.

    ``full_work`` caches, per recurring signature, the compute a
    subexpression performs when evaluated from scratch; instances that
    merely scanned a materialized view inherit the cached number so view
    selection keeps seeing the compute the view *stands for*.
    """
    if full_work is None:
        full_work = {}
    stats = {id(node): s for node, s in run.result.node_stats}
    records: List[SubexpressionRecord] = []
    datasets = set()
    counter = [0]
    job_id = run.compiled.job_id

    def visit(node: LogicalPlan, parent_id: Optional[int],
              depth: int) -> Tuple[int, float, int]:
        """Returns (node_id, subtree_work, height)."""
        if isinstance(node, Spool):
            return visit(node.child, parent_id, depth)
        node_id = counter[0]
        counter[0] += 1
        child_work = 0.0
        heights = []
        for child in node.children():
            _, work, height = visit(child, node_id, depth + 1)
            child_work += work
            heights.append(height)
        node_stats = stats.get(id(node))
        rows = node_stats.rows_out if node_stats else 0
        size = node_stats.bytes_out if node_stats else 0
        own = ((node_stats.rows_in + node_stats.rows_out)
               if node_stats else 0.0)
        subtree_work = child_work + own
        height = 1 + max(heights) if heights else 0
        recurring = recurring_signature(node, salt)
        if isinstance(node, ViewScan):
            # The reused instance did almost no work; for selection we
            # keep the compute it *stands for* (last full observation).
            subtree_work = full_work.get(recurring, subtree_work)
            height = max(height, 1)
        else:
            full_work[recurring] = subtree_work
        if isinstance(node, Scan):
            datasets.add(node.dataset)
        detail = ""
        if isinstance(node, Join):
            left_stats = stats.get(id(node.left))
            right_stats = stats.get(id(node.right))
            detail = choose_join_algorithm(
                node,
                left_stats.rows_out if left_stats else 0,
                right_stats.rows_out if right_stats else 0)
        records.append(SubexpressionRecord(
            job_id=job_id,
            virtual_cluster=virtual_cluster,
            submit_time=now,
            template_id=template_id,
            pipeline_id=pipeline_id,
            strict=strict_signature(node, salt),
            recurring=recurring,
            tag=signature_tag(recurring),
            operator=node.op_label,
            height=height,
            eligible=is_reuse_eligible(node),
            rows=rows,
            size_bytes=size,
            work=subtree_work,
            input_datasets=tuple(sorted(
                n.dataset for n in node.walk() if isinstance(n, Scan))),
            node_id=node_id,
            parent_node_id=parent_id,
            detail=detail,
        ))
        return node_id, subtree_work, height

    visit(run.compiled.plan, None, 0)
    repository.add_job(JobRecord(
        job_id=job_id,
        virtual_cluster=virtual_cluster,
        submit_time=now,
        template_id=template_id,
        pipeline_id=pipeline_id,
        runtime_version=run.compiled.runtime_version,
        input_datasets=tuple(sorted(datasets)),
        subexpression_count=len(records),
    ), records)
