"""CloudViews core: the manager, controls, and the workload simulation."""

from repro.core.cloudviews import CloudViews
from repro.core.controls import DeploymentMode, MultiLevelControls
from repro.core.runner import (
    SimulationConfig,
    SimulationReport,
    WorkloadSimulation,
    record_job_into,
)

__all__ = [
    "CloudViews", "DeploymentMode", "MultiLevelControls",
    "SimulationConfig", "SimulationReport", "WorkloadSimulation",
    "record_job_into",
]
