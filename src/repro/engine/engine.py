"""The SCOPE-like query engine facade.

Ties the frontend, optimizer, executor, storage, and insights service into
the query-processing flow of Figure 5:

1. ``compile``: parse and bind the job, extract its signature tags, fetch
   annotations from the insights service into the optimizer context, run
   core search (view matching) and the follow-up optimization phase (view
   buildout, taking view locks).
2. ``execute``: run the physical plan; spools materialize views online; the
   job manager early-seals each view the moment its rows are written and
   notifies the insights service; observed per-subexpression statistics are
   recorded into the workload history.

The engine also owns the *runtime version*: bumping it changes the
signature salt, which invalidates every existing view -- the operational
hazard described in Section 4 ("Impact of changed signatures").
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.base import ExecutionBackend
from repro.backends.memory import InMemoryBackend
from repro.catalog.catalog import Catalog
from repro.catalog.schema import TableSchema
from repro.common.errors import (
    ReproError,
    StorageError,
    TransientBackendError,
)
from repro.executor.executor import ExecutionResult
from repro.executor.udo import UdoRegistry
from repro.insights.service import InsightsService
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.optimizer.context import OptimizerContext
from repro.optimizer.cost import CostModel
from repro.optimizer.pipeline import OptimizedPlan, optimize
from repro.optimizer.rules import apply_rewrites
from repro.optimizer.stats import StatisticsCatalog
from repro.plan.builder import PlanBuilder
from repro.plan.expressions import Row
from repro.plan.logical import LogicalPlan, Spool, ViewScan
from repro.plan.normalize import normalize
from repro.signatures.signature import (
    enumerate_subexpressions,
    recurring_signature,
    strict_signature,
)
from repro.sql.parser import parse
from repro.storage.store import DataStore
from repro.storage.views import DEFAULT_VIEW_TTL, ViewStore


def _debug_checks_default() -> bool:
    """Debug-mode pipeline assertions; opt in via REPRO_DEBUG_CHECKS=1."""
    return os.environ.get("REPRO_DEBUG_CHECKS", "") not in ("", "0", "false")


@dataclass(kw_only=True)
class EngineConfig:
    """Tunables of the engine and its CloudViews integration."""

    runtime_version: str = "scope-r1"
    max_views_per_job: int = 3
    overestimate: float = 2.0
    view_ttl_seconds: float = DEFAULT_VIEW_TTL
    cost_model: CostModel = field(default_factory=CostModel)
    #: Run the soundness analyzer on every compile's post-match and
    #: post-buildout plans, raising LintError on error findings.
    debug_checks: bool = field(default_factory=_debug_checks_default)
    #: Transient backend failures (busy database file, injected flaky
    #: I/O) are retried this many times before the job surfaces an
    #: error.  Crashes injected by the fault framework count as
    #: transient: everything in flight rolled back, so a retry is safe.
    execute_retries: int = 2
    #: Sleep ``backoff * 2**attempt`` (capped at 1s) between transient
    #: retries.  Zero -- the default, and what every test uses -- retries
    #: immediately; simulated time does not advance either way.
    retry_backoff_seconds: float = 0.0
    #: A view whose *read* has failed this many times is quarantined:
    #: purged from the catalog so the matcher stops routing jobs at it,
    #: and hard-removed by the next GC sweep.  Zero disables quarantine.
    quarantine_failures: int = 3


@dataclass
class CompiledJob:
    """Output of compilation: the optimized plan plus reuse bookkeeping."""

    job_id: str
    sql: str
    virtual_cluster: str
    optimized: OptimizedPlan
    tags: Tuple[str, ...]
    params: Dict[str, object] = field(default_factory=dict)
    reuse_enabled: bool = True
    compile_latency: float = 0.0
    #: True when the insights fetch fell back to the degradation path
    #: (circuit breaker open / retries exhausted) and the job therefore
    #: compiled with reuse disabled -- the paper's kill-switch behavior.
    degraded: bool = False
    runtime_version: str = ""
    #: Simulated time the job was compiled (its arrival time in the
    #: co-simulation); monitoring orders jobs by it.
    submitted_at: float = 0.0

    @property
    def plan(self) -> LogicalPlan:
        return self.optimized.plan

    @property
    def reused_views(self) -> int:
        return self.optimized.reused_views

    @property
    def built_views(self) -> int:
        return self.optimized.built_views


@dataclass
class JobRun:
    """Result of executing a compiled job."""

    compiled: CompiledJob
    result: ExecutionResult
    sealed_views: List[str] = field(default_factory=list)

    @property
    def rows(self) -> List[Row]:
        return self.result.rows


class ScopeEngine:
    """A miniature SCOPE: compile and execute SQL jobs with CloudViews."""

    def __init__(self,
                 catalog: Optional[Catalog] = None,
                 store: Optional[DataStore] = None,
                 insights: Optional[InsightsService] = None,
                 config: Optional[EngineConfig] = None,
                 udos: Optional[UdoRegistry] = None,
                 recorder=None,
                 backend: Optional[ExecutionBackend] = None):
        self.catalog = catalog or Catalog()
        if backend is None:
            backend = InMemoryBackend(store=store, udos=udos)
        self.backend = backend
        self.insights = insights or InsightsService()
        self.config = config or EngineConfig()
        self.view_store = ViewStore(self.config.view_ttl_seconds)
        self.history = StatisticsCatalog()
        self._job_counter = itertools.count(1)
        #: Consecutive read-failure counts per view signature, feeding
        #: the quarantine policy (``EngineConfig.quarantine_failures``).
        self._view_failures: Dict[str, int] = {}
        #: Flight recorder; installing one here also wires the insights
        #: service and view store so the whole feedback loop is recorded.
        self.recorder = NULL_RECORDER
        if recorder is not None:
            recorder.install(self)

    # ------------------------------------------------------------------ #
    # backend access

    @property
    def store(self) -> Optional[DataStore]:
        """The in-memory backend's blob store; ``None`` on external
        backends (extensions that reach for raw row storage are
        in-memory-only)."""
        return getattr(self.backend, "store", None)

    @property
    def executor(self):
        """The in-memory backend's interpreter; ``None`` on external
        backends."""
        return getattr(self.backend, "executor", None)

    # ------------------------------------------------------------------ #
    # data management

    def register_table(self, schema: TableSchema, rows: Sequence[Row],
                       at: float = 0.0) -> None:
        """Register a dataset and load its initial stream."""
        version = self.catalog.register(schema, len(rows), created_at=at)
        self.backend.load_table(schema, version.guid, list(rows))

    def bulk_update(self, dataset: str, rows: Sequence[Row],
                    at: float = 0.0, keep_versions: int = 3) -> None:
        """Periodic regeneration of a cooked dataset: new GUID, new rows.

        Older stream blobs are garbage-collected beyond ``keep_versions``
        (running jobs in the simulator compiled against recent versions;
        ancient ones are unreachable).
        """
        version = self.catalog.bulk_update(dataset, len(rows), at=at)
        self.backend.load_table(self.catalog.schema(dataset), version.guid,
                                list(rows))
        versions = self.catalog.entry(dataset).versions
        for stale in versions[:-keep_versions]:
            self.backend.drop_table(stale.guid)

    def gdpr_forget(self, dataset: str, keep_predicate, at: float = 0.0) -> None:
        """Right-to-erasure: drop rows failing ``keep_predicate``."""
        current = self.catalog.current_guid(dataset)
        kept = [row for row in self.backend.scan_table(current)
                if keep_predicate(row)]
        removed = self.catalog.current_version(dataset).row_count - len(kept)
        version = self.catalog.gdpr_forget(dataset, rows_removed=removed, at=at)
        self.backend.load_table(self.catalog.schema(dataset), version.guid,
                                kept)

    @property
    def runtime_version(self) -> str:
        return self.config.runtime_version

    def set_runtime_version(self, version: str) -> None:
        """Upgrade the runtime.  Signatures change; old views go dark."""
        self.config.runtime_version = version

    @property
    def signature_salt(self) -> str:
        return self.config.runtime_version

    def next_job_id(self) -> str:
        """Draw the next job id.

        The concurrent scheduler assigns ids at *submission* time (in
        deterministic submission order) rather than at compile time, so a
        parallel run labels jobs identically to a serial one.
        """
        return f"job-{next(self._job_counter)}"

    # ------------------------------------------------------------------ #
    # compilation

    def compile(self, sql: str,
                params: Optional[Dict[str, object]] = None,
                virtual_cluster: str = "default",
                reuse_enabled: bool = True,
                now: float = 0.0,
                job_id: Optional[str] = None) -> CompiledJob:
        """Parse, bind, and optimize one job (Figure 5, query processing)."""
        job_id = job_id or self.next_job_id()
        recorder = self.recorder
        recorder.advance_to(now)
        compile_span = recorder.start_span(
            "job.compile", trace_id=job_id, at=now,
            virtual_cluster=virtual_cluster)
        builder = PlanBuilder(self.catalog, params)
        plan = normalize(apply_rewrites(builder.build(parse(sql))))

        tags = tuple(sorted({
            sub.tag for sub in
            enumerate_subexpressions(plan, self.signature_salt)
            if sub.eligible}))

        annotations = {}
        compile_latency = 0.0
        degraded = False
        if reuse_enabled:
            fetch_span = recorder.start_span(
                "insights.fetch", trace_id=job_id, at=now,
                parent=compile_span, tags=len(tags))
            annotations = self.insights.fetch_annotations(tags, now=now)
            compile_latency = self.insights.last_fetch_latency
            degraded = getattr(self.insights, "last_fetch_degraded", False)
            fetch_span.annotate("annotations", len(annotations))
            if degraded:
                fetch_span.annotate("degraded", True)
            fetch_span.finish(at=now + compile_latency)

        acquired_locks: List[str] = []

        def _acquire_lock(signature: str) -> bool:
            ok = self.insights.acquire_view_lock(signature, holder=job_id)
            if ok:
                acquired_locks.append(signature)
            return ok

        def _release_lock(signature: str) -> None:
            self.insights.release_view_lock(signature, holder=job_id)
            if signature in acquired_locks:
                acquired_locks.remove(signature)

        ctx = OptimizerContext(
            catalog=self.catalog,
            view_store=self.view_store,
            history=self.history,
            cost_model=self.config.cost_model,
            annotations=annotations,
            salt=self.signature_salt,
            virtual_cluster=virtual_cluster,
            max_views_per_job=self.config.max_views_per_job,
            reuse_enabled=(reuse_enabled and self.insights.enabled
                           and not degraded),
            overestimate=self.config.overestimate,
            acquire_view_lock=_acquire_lock,
            release_view_lock=_release_lock,
            debug_checks=self.config.debug_checks,
            recorder=recorder,
            trace_id=job_id,
            compile_span=compile_span,
        )
        try:
            optimized = optimize(plan, ctx, now=now)
        except ReproError:
            # A failed compilation must not leave view locks (or unsealed
            # view slots) behind, or every later job would be locked out
            # of building those signatures.
            for signature in acquired_locks:
                self.view_store.abandon(signature)
                self.insights.release_view_lock(signature, holder=job_id)
            raise
        compile_span.annotate("views_reused", optimized.reused_views)
        compile_span.annotate("views_built", optimized.built_views)
        compile_span.finish(at=now + compile_latency)
        recorder.inc("engine.jobs.compiled")
        if recorder.enabled:
            from repro.engine.monitoring import render_plan
            recorder.event(
                obs_events.JOB_COMPILED, at=now, job_id=job_id,
                virtual_cluster=virtual_cluster,
                sql=sql,
                degraded=degraded,
                views_built=optimized.built_views,
                views_reused=optimized.reused_views,
                estimated_cost=optimized.estimated_cost,
                estimated_cost_without_reuse=(
                    optimized.estimated_cost_without_reuse),
                plan_text=render_plan(optimized.plan),
            )
        return CompiledJob(
            job_id=job_id,
            sql=sql,
            virtual_cluster=virtual_cluster,
            optimized=optimized,
            tags=tags,
            params=dict(params or {}),
            reuse_enabled=reuse_enabled,
            compile_latency=compile_latency,
            degraded=degraded,
            runtime_version=self.runtime_version,
            submitted_at=now,
        )

    # ------------------------------------------------------------------ #
    # execution

    def execute(self, compiled: CompiledJob, now: float = 0.0,
                record_history: bool = True,
                seal_views: bool = True) -> JobRun:
        """Run the job; seal views early; record observed statistics.

        The cluster simulator passes ``seal_views=False`` and calls
        :meth:`seal_spooled` when the spool-writer stage actually completes
        in simulated time, so early sealing happens at the right moment.

        Every ViewScan's backing view is *pinned* for the duration of the
        run: the lifecycle GC janitor sweeps concurrently, and a pinned
        view is never hard-removed mid-scan.  If a claimed view vanished
        in the window between the matcher's claim and this pin (a GC
        sweep or purge cascade won the race), the job falls back to a
        reuse-free recompile -- a lost claim is just a recompute.

        Failure hardening (the paper's "reuse must never fail a job"):

        * transient backend errors retry up to ``execute_retries`` times
          (:meth:`_execute_attempts`);
        * a :class:`StorageError` from a plan that touched views -- a
          view read failing, a spool that cannot write -- abandons the
          builds, notes the failure against every view the plan read
          (quarantining repeat offenders), and re-runs the job as a
          reuse-free recompile.  Only a plain plan's storage error (a
          missing stream, which no recompile can fix) propagates.
        """
        compiled, pinned = self._pin_view_scans(compiled, now)
        try:
            try:
                result = self._execute_attempts(compiled, now)
            except StorageError:
                self._abandon_builds(compiled)
                for signature in pinned:
                    self.view_store.unpin(signature)
                pinned = []
                fallback = self._storage_fallback(compiled, now)
                if fallback is None:
                    raise
                compiled = fallback
                result = self._execute_attempts(compiled, now)
            except ReproError:
                self._abandon_builds(compiled)
                raise
        finally:
            for signature in pinned:
                self.view_store.unpin(signature)
        run = JobRun(compiled=compiled, result=result)
        if seal_views:
            for spool in result.spooled:
                self.seal_spooled(run, spool.signature, at=now)
        if record_history:
            self._record_history(result)
        return run

    def _execute_attempts(self, compiled: CompiledJob,
                          now: float) -> ExecutionResult:
        """Run the plan, absorbing up to ``execute_retries`` transient
        failures (flaky I/O, injected crashes -- anything whose partial
        effects are guaranteed rolled back)."""
        retries = max(0, self.config.execute_retries)
        backoff = self.config.retry_backoff_seconds
        for attempt in range(retries + 1):
            try:
                return self.backend.execute(compiled.plan)
            except TransientBackendError as error:
                if attempt >= retries:
                    raise
                self.recorder.inc("execute.transient_retries")
                self.recorder.event(
                    obs_events.EXECUTE_RETRY, at=now,
                    job_id=compiled.job_id,
                    virtual_cluster=compiled.virtual_cluster,
                    attempt=attempt + 1, error=str(error))
                if backoff > 0:
                    time.sleep(min(backoff * (2 ** attempt), 1.0))
        raise AssertionError("unreachable")  # pragma: no cover

    def _storage_fallback(self, compiled: CompiledJob,
                          now: float) -> Optional[CompiledJob]:
        """After a storage failure: degrade to plain recompute, or None.

        Only meaningful when the failed plan actually involved reuse (a
        ViewScan that could not be read, a Spool that could not write);
        a plain plan's storage error is a real data problem and returns
        ``None`` so the caller re-raises.  Every view the failed plan
        read gets a strike; repeat offenders are quarantined.
        """
        touched = [node for node in compiled.plan.walk()
                   if isinstance(node, (Spool, ViewScan))]
        if not touched:
            return None
        self._note_view_failures(compiled, now)
        self.recorder.inc("execute.reuse_fallbacks")
        self.recorder.event(obs_events.REUSE_FALLBACK, at=now,
                            job_id=compiled.job_id,
                            virtual_cluster=compiled.virtual_cluster,
                            reason="view_read_failure")
        return self.compile(
            compiled.sql,
            params=compiled.params,
            virtual_cluster=compiled.virtual_cluster,
            reuse_enabled=False,
            now=now,
            job_id=compiled.job_id,
        )

    def _note_view_failures(self, compiled: CompiledJob, now: float) -> None:
        """One strike per view the failed plan read; quarantine at the
        configured threshold (purge -> excluded from matching -> GC)."""
        threshold = self.config.quarantine_failures
        for node in compiled.plan.walk():
            if not isinstance(node, ViewScan):
                continue
            count = self._view_failures.get(node.signature, 0) + 1
            self._view_failures[node.signature] = count
            if threshold <= 0 or count < threshold:
                continue
            if self.view_store.get(node.signature) is None:
                continue
            self.view_store.purge(node.signature, reason="quarantined")
            self.recorder.inc("engine.views.quarantined")
            self.recorder.event(obs_events.VIEW_QUARANTINED, at=now,
                                signature=node.signature,
                                failures=count,
                                job_id=compiled.job_id)

    def _pin_view_scans(self, compiled: CompiledJob,
                        now: float) -> Tuple[CompiledJob, List[str]]:
        """Pin every ViewScan's backing view; recompile on a lost view.

        A view claimed at compile time is only protected from the GC
        janitor once its reader holds a pin, so a sweep landing between
        compile and execute can evict the view (and delete its blobs)
        out from under the plan.  When any pin fails, the already-taken
        pins are released and the job is recompiled with reuse disabled,
        which produces a plan with no ViewScans at all.
        """
        pinned: List[str] = []
        lost = False
        for node in compiled.plan.walk():
            if not isinstance(node, ViewScan):
                continue
            if self.view_store.pin(node.signature):
                pinned.append(node.signature)
            else:
                lost = True
        if not lost:
            return compiled, pinned
        for signature in pinned:
            self.view_store.unpin(signature)
        self.recorder.inc("execute.reuse_fallbacks")
        self.recorder.event(obs_events.REUSE_FALLBACK, at=now,
                            job_id=compiled.job_id,
                            virtual_cluster=compiled.virtual_cluster)
        recompiled = self.compile(
            compiled.sql,
            params=compiled.params,
            virtual_cluster=compiled.virtual_cluster,
            reuse_enabled=False,
            now=now,
            job_id=compiled.job_id,
        )
        return recompiled, []

    def seal_spooled(self, run: JobRun, signature: str, at: float) -> None:
        """Early-seal one view produced by ``run`` at simulated time ``at``."""
        spool = next(s for s in run.result.spooled if s.signature == signature)
        seal_span = self.recorder.start_span(
            "spool.seal", trace_id=run.compiled.job_id, at=at,
            signature=spool.signature[:12])
        self.view_store.seal(spool.signature, at,
                             spool.row_count, spool.size_bytes,
                             sealed_by=run.compiled.job_id)
        self.insights.report_view_available(
            spool.signature, holder=run.compiled.job_id)
        run.sealed_views.append(spool.signature)
        seal_span.annotate("rows", spool.row_count).finish(at=at)

    def run_sql(self, sql: str,
                params: Optional[Dict[str, object]] = None,
                virtual_cluster: str = "default",
                reuse_enabled: bool = True,
                now: float = 0.0) -> JobRun:
        """Convenience: compile then execute."""
        compiled = self.compile(sql, params, virtual_cluster,
                                reuse_enabled, now)
        return self.execute(compiled, now=now)

    def record_history(self, result: ExecutionResult) -> None:
        """Ingest one execution's observed per-subexpression statistics.

        Public so the concurrent scheduler can defer history recording to
        its deterministic collection phase (``execute`` is then called
        with ``record_history=False``).
        """
        self._record_history(result)

    # ------------------------------------------------------------------ #
    # internals

    def _abandon_builds(self, compiled: CompiledJob) -> None:
        """Failed producer: drop unsealed views and release their locks."""
        for proposal in compiled.optimized.proposals:
            self.view_store.abandon(proposal.strict_signature)
            self.insights.release_view_lock(
                proposal.strict_signature, holder=compiled.job_id)

    def _record_history(self, result: ExecutionResult) -> None:
        salt = self.signature_salt
        for node, stats in result.node_stats:
            if isinstance(node, Spool):
                continue  # transparent; the child already recorded
            self.history.record(
                strict_signature(node, salt),
                recurring_signature(node, salt),
                stats.rows_out,
                stats.bytes_out,
            )
