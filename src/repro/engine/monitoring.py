"""Query-monitoring surface for reuse decisions.

Figure 5: "the modified query plans are surfaced to the users in the
query monitoring tool and also logged into the telemetry for future
analyses."  Section 2.4 also notes the flip side: users have "no DDL
visibility" into CloudViews, so the monitoring view is their only window
into what reuse did to their jobs.

:class:`QueryMonitor` collects one :class:`MonitoredJob` per compiled job
and renders the operator-facing report: which jobs built or reused views,
the estimated cost delta, and the rewritten plan with CloudView markers.

The monitor is a *consumer of the flight recorder's structured event
log*: attach it to an :class:`~repro.obs.events.EventLog` and it builds
its state from ``job.compiled`` and ``view.sealed`` events — exactly the
Figure-5 arrangement where the monitoring tool reads the telemetry stream
rather than hooking the compiler.  The direct ``observe_*`` calls remain
for embedding the monitor without a recorder.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.engine import CompiledJob, JobRun
from repro.obs import events as obs_events
from repro.obs.events import Event, EventLog
from repro.plan.logical import LogicalPlan, Spool, ViewScan


@dataclass
class MonitoredJob:
    """One job's reuse story, as shown in the monitoring tool."""

    job_id: str
    virtual_cluster: str
    sql: str
    submitted_at: float
    views_built: int
    views_reused: int
    estimated_cost: float
    estimated_cost_without_reuse: float
    plan_text: str
    sealed_views: List[str] = field(default_factory=list)

    @property
    def cost_delta_percent(self) -> float:
        """Negative means reuse made the plan cheaper."""
        baseline = self.estimated_cost_without_reuse
        if baseline == 0:
            return 0.0
        return (self.estimated_cost - baseline) / baseline * 100.0

    @property
    def touched_by_cloudviews(self) -> bool:
        return self.views_built > 0 or self.views_reused > 0


class QueryMonitor:
    """Collects and renders per-job reuse telemetry.

    Pass ``events`` (a flight recorder's event log) to make the monitor
    event-driven: it subscribes and ingests ``job.compiled`` /
    ``view.sealed`` events as they are emitted, and the driver no longer
    needs to call :meth:`observe_compile` / :meth:`observe_run`.
    """

    def __init__(self, events: Optional[EventLog] = None) -> None:
        self._jobs: Dict[str, MonitoredJob] = {}
        self._arrival = itertools.count()  # ties broken by arrival order
        self._order: Dict[str, int] = {}
        self._events = events
        if events is not None:
            events.subscribe(self.ingest_event)

    @property
    def event_driven(self) -> bool:
        """True when fed by a structured event log subscription."""
        return self._events is not None

    # ------------------------------------------------------------------ #
    # ingestion

    def observe_compile(self, compiled: CompiledJob,
                        at: Optional[float] = None) -> MonitoredJob:
        """Record one compiled job.

        ``at`` defaults to the job's simulated arrival time (carried on
        :class:`~repro.engine.engine.CompiledJob`), so :meth:`jobs`
        ordering reflects the submission timeline without every caller
        having to thread the timestamp through.
        """
        return self._ingest_compiled(
            job_id=compiled.job_id,
            virtual_cluster=compiled.virtual_cluster,
            sql=compiled.sql,
            submitted_at=compiled.submitted_at if at is None else at,
            views_built=compiled.built_views,
            views_reused=compiled.reused_views,
            estimated_cost=compiled.optimized.estimated_cost,
            estimated_cost_without_reuse=(
                compiled.optimized.estimated_cost_without_reuse),
            plan_text=render_plan(compiled.plan),
        )

    def observe_run(self, run: JobRun) -> None:
        entry = self._jobs.get(run.compiled.job_id)
        if entry is not None:
            entry.sealed_views = list(run.sealed_views)

    def ingest_event(self, event: Event) -> None:
        """Consume one structured event from the flight recorder."""
        if event.kind == obs_events.JOB_COMPILED:
            attrs = event.attrs
            self._ingest_compiled(
                job_id=event.job_id,
                virtual_cluster=str(attrs.get("virtual_cluster", "")),
                sql=str(attrs.get("sql", "")),
                submitted_at=event.at,
                views_built=int(attrs.get("views_built", 0)),
                views_reused=int(attrs.get("views_reused", 0)),
                estimated_cost=float(attrs.get("estimated_cost", 0.0)),
                estimated_cost_without_reuse=float(
                    attrs.get("estimated_cost_without_reuse", 0.0)),
                plan_text=str(attrs.get("plan_text", "")),
            )
        elif event.kind == obs_events.VIEW_SEALED and event.job_id:
            entry = self._jobs.get(event.job_id)
            if entry is not None:
                entry.sealed_views.append(str(event.attrs.get("signature", "")))

    def _ingest_compiled(self, job_id: str, **fields) -> MonitoredJob:
        entry = MonitoredJob(job_id=job_id, **fields)
        if job_id not in self._order:
            self._order[job_id] = next(self._arrival)
        self._jobs[job_id] = entry
        return entry

    # ------------------------------------------------------------------ #
    # queries

    def job(self, job_id: str) -> Optional[MonitoredJob]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[MonitoredJob]:
        return sorted(self._jobs.values(),
                      key=lambda j: (j.submitted_at, self._order[j.job_id]))

    def touched_jobs(self) -> List[MonitoredJob]:
        return [j for j in self.jobs() if j.touched_by_cloudviews]

    def render_summary(self) -> str:
        """The monitoring tool's landing view."""
        lines = [
            "Query Monitor — CloudViews activity",
            f"{'job':<12} {'vc':<14} {'built':>5} {'reused':>6} "
            f"{'cost Δ':>8}",
        ]
        for job in self.jobs():
            marker = "*" if job.touched_by_cloudviews else " "
            lines.append(
                f"{job.job_id:<12} {job.virtual_cluster:<14} "
                f"{job.views_built:>5} {job.views_reused:>6} "
                f"{job.cost_delta_percent:>7.1f}%{marker}")
        return "\n".join(lines)

    def render_job(self, job_id: str) -> str:
        """The per-job drill-down: the plan with CloudView markers."""
        job = self._jobs.get(job_id)
        if job is None:
            return f"no monitored job {job_id!r}"
        header = (f"{job.job_id} on {job.virtual_cluster} — "
                  f"built {job.views_built}, reused {job.views_reused}, "
                  f"cost delta {job.cost_delta_percent:+.1f}%")
        return header + "\n" + job.plan_text


def render_plan(plan: LogicalPlan, indent: int = 0) -> str:
    """Explain with CloudView annotations on reuse/build sites."""
    label = plan.describe()
    if isinstance(plan, ViewScan):
        label += "   <-- reused CloudView"
    elif isinstance(plan, Spool):
        label += "   <-- materializes CloudView"
    lines = ["  " * indent + label]
    for child in plan.children():
        lines.append(render_plan(child, indent + 1))
    return "\n".join(lines)
