"""Query-monitoring surface for reuse decisions.

Figure 5: "the modified query plans are surfaced to the users in the
query monitoring tool and also logged into the telemetry for future
analyses."  Section 2.4 also notes the flip side: users have "no DDL
visibility" into CloudViews, so the monitoring view is their only window
into what reuse did to their jobs.

:class:`QueryMonitor` collects one :class:`MonitoredJob` per compiled job
and renders the operator-facing report: which jobs built or reused views,
the estimated cost delta, and the rewritten plan with CloudView markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.engine import CompiledJob, JobRun
from repro.plan.logical import LogicalPlan, Spool, ViewScan


@dataclass
class MonitoredJob:
    """One job's reuse story, as shown in the monitoring tool."""

    job_id: str
    virtual_cluster: str
    sql: str
    submitted_at: float
    views_built: int
    views_reused: int
    estimated_cost: float
    estimated_cost_without_reuse: float
    plan_text: str
    sealed_views: List[str] = field(default_factory=list)

    @property
    def cost_delta_percent(self) -> float:
        """Negative means reuse made the plan cheaper."""
        baseline = self.estimated_cost_without_reuse
        if baseline == 0:
            return 0.0
        return (self.estimated_cost - baseline) / baseline * 100.0

    @property
    def touched_by_cloudviews(self) -> bool:
        return self.views_built > 0 or self.views_reused > 0


class QueryMonitor:
    """Collects and renders per-job reuse telemetry."""

    def __init__(self) -> None:
        self._jobs: Dict[str, MonitoredJob] = {}

    # ------------------------------------------------------------------ #
    # ingestion

    def observe_compile(self, compiled: CompiledJob,
                        at: float = 0.0) -> MonitoredJob:
        entry = MonitoredJob(
            job_id=compiled.job_id,
            virtual_cluster=compiled.virtual_cluster,
            sql=compiled.sql,
            submitted_at=at,
            views_built=compiled.built_views,
            views_reused=compiled.reused_views,
            estimated_cost=compiled.optimized.estimated_cost,
            estimated_cost_without_reuse=(
                compiled.optimized.estimated_cost_without_reuse),
            plan_text=render_plan(compiled.plan),
        )
        self._jobs[compiled.job_id] = entry
        return entry

    def observe_run(self, run: JobRun) -> None:
        entry = self._jobs.get(run.compiled.job_id)
        if entry is not None:
            entry.sealed_views = list(run.sealed_views)

    # ------------------------------------------------------------------ #
    # queries

    def job(self, job_id: str) -> Optional[MonitoredJob]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[MonitoredJob]:
        return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def touched_jobs(self) -> List[MonitoredJob]:
        return [j for j in self.jobs() if j.touched_by_cloudviews]

    def render_summary(self) -> str:
        """The monitoring tool's landing view."""
        lines = [
            "Query Monitor — CloudViews activity",
            f"{'job':<12} {'vc':<14} {'built':>5} {'reused':>6} "
            f"{'cost Δ':>8}",
        ]
        for job in self.jobs():
            marker = "*" if job.touched_by_cloudviews else " "
            lines.append(
                f"{job.job_id:<12} {job.virtual_cluster:<14} "
                f"{job.views_built:>5} {job.views_reused:>6} "
                f"{job.cost_delta_percent:>7.1f}%{marker}")
        return "\n".join(lines)

    def render_job(self, job_id: str) -> str:
        """The per-job drill-down: the plan with CloudView markers."""
        job = self._jobs.get(job_id)
        if job is None:
            return f"no monitored job {job_id!r}"
        header = (f"{job.job_id} on {job.virtual_cluster} — "
                  f"built {job.views_built}, reused {job.views_reused}, "
                  f"cost delta {job.cost_delta_percent:+.1f}%")
        return header + "\n" + job.plan_text


def render_plan(plan: LogicalPlan, indent: int = 0) -> str:
    """Explain with CloudView annotations on reuse/build sites."""
    label = plan.describe()
    if isinstance(plan, ViewScan):
        label += "   <-- reused CloudView"
    elif isinstance(plan, Spool):
        label += "   <-- materializes CloudView"
    lines = ["  " * indent + label]
    for child in plan.children():
        lines.append(render_plan(child, indent + 1))
    return "\n".join(lines)
