"""SCOPE-like engine facade: compile and execute SQL jobs."""

from repro.engine.engine import CompiledJob, EngineConfig, JobRun, ScopeEngine
from repro.engine.monitoring import MonitoredJob, QueryMonitor, render_plan

__all__ = ["CompiledJob", "EngineConfig", "JobRun", "ScopeEngine",
           "MonitoredJob", "QueryMonitor", "render_plan"]
