"""Workload compression into a representative set (Section 5.2).

"The notion of signatures ... turned out to be very helpful not just for
computation reuse, but also for applications such as ... compressing
workloads into a representative set for pre-production evaluation."

A production window contains hundreds of thousands of jobs, most of them
recurring instances of a few hundred templates.  For pre-production
evaluation (replaying a workload against a new runtime or configuration),
one representative per *plan equivalence class* suffices -- weighted by
how many jobs it stands for.  Two jobs are plan-equivalent when their
recurring-signature multisets match: the same template compiled over
different days/parameters lands in the same class.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.hashing import stable_hash
from repro.workload.repository import JobRecord, WorkloadRepository


@dataclass(frozen=True)
class RepresentativeJob:
    """One equivalence class of the compressed workload."""

    job: JobRecord                 # the exemplar (earliest instance)
    weight: int                    # jobs this representative stands for
    class_signature: str           # hash of the recurring-signature multiset
    total_work: float              # observed work across the class


@dataclass
class CompressedWorkload:
    """The representative set plus compression accounting."""

    representatives: List[RepresentativeJob]
    original_jobs: int

    @property
    def compression_ratio(self) -> float:
        if not self.representatives:
            return 1.0
        return self.original_jobs / len(self.representatives)

    def coverage(self) -> int:
        return sum(r.weight for r in self.representatives)


def job_class_signature(repository: WorkloadRepository,
                        job_id: str) -> str:
    """Equivalence-class key: the job's recurring-signature multiset."""
    signatures = sorted(r.recurring for r in repository.subexpressions
                        if r.job_id == job_id)
    return stable_hash("job-class", signatures)


def compress_workload(repository: WorkloadRepository) -> CompressedWorkload:
    """Collapse the repository into one weighted exemplar per plan class."""
    signatures_by_job: Dict[str, List[str]] = defaultdict(list)
    work_by_job: Dict[str, float] = defaultdict(float)
    for record in repository.subexpressions:
        signatures_by_job[record.job_id].append(record.recurring)
        if record.parent_node_id is None:
            work_by_job[record.job_id] += record.work

    classes: Dict[str, List[JobRecord]] = defaultdict(list)
    for job in repository.jobs:
        key = stable_hash("job-class",
                          sorted(signatures_by_job.get(job.job_id, ())))
        classes[key].append(job)

    representatives = []
    for key, jobs in classes.items():
        exemplar = min(jobs, key=lambda j: (j.submit_time, j.job_id))
        representatives.append(RepresentativeJob(
            job=exemplar,
            weight=len(jobs),
            class_signature=key,
            total_work=sum(work_by_job.get(j.job_id, 0.0) for j in jobs),
        ))
    representatives.sort(key=lambda r: (-r.weight, r.class_signature))
    return CompressedWorkload(
        representatives=representatives,
        original_jobs=repository.total_jobs(),
    )


def replay_plan(compressed: CompressedWorkload,
                max_representatives: int = 0
                ) -> List[Tuple[JobRecord, int]]:
    """The pre-production replay list: (exemplar job, weight) pairs.

    ``max_representatives`` optionally truncates to the heaviest classes
    (the tail classes contribute little evaluated work).
    """
    representatives = compressed.representatives
    if max_representatives:
        representatives = representatives[:max_representatives]
    return [(r.job, r.weight) for r in representatives]
