"""The workload repository: a denormalized subexpression table.

"CloudViews ... extracts the query workload into a denormalized
subexpressions table that pre-joins the logical query subexpressions with
their runtime metrics as seen in the history." (Section 2.3)

Every compiled-and-executed job contributes one :class:`SubexpressionRecord`
per subexpression, carrying both identity (strict/recurring signatures,
tag, operator) and runtime features (rows, bytes, work, the job's virtual
cluster and submission time).  View selection and all of the paper's
workload analyses (Figures 2, 3, 8, 9) read from here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class SubexpressionRecord:
    """One row of the denormalized subexpression table."""

    job_id: str
    virtual_cluster: str
    submit_time: float
    template_id: str
    pipeline_id: str
    strict: str
    recurring: str
    tag: str
    operator: str
    height: int
    eligible: bool
    rows: int
    size_bytes: int
    work: float               # observed compute below and including the node
    input_datasets: Tuple[str, ...] = ()
    #: Per-job local operator ids preserving the plan tree, so selection can
    #: avoid double-counting nested candidates within one job.
    node_id: int = 0
    parent_node_id: Optional[int] = None
    #: Operator-specific detail; for joins, the physical algorithm chosen
    #: (hash / merge / loop), used by the Figure-9 concurrency analysis.
    detail: str = ""


@dataclass(frozen=True)
class JobRecord:
    """Per-job workload metadata."""

    job_id: str
    virtual_cluster: str
    submit_time: float
    template_id: str
    pipeline_id: str
    runtime_version: str
    input_datasets: Tuple[str, ...]
    subexpression_count: int


class WorkloadRepository:
    """Accumulates workload telemetry across jobs."""

    def __init__(self) -> None:
        self.subexpressions: List[SubexpressionRecord] = []
        self.jobs: List[JobRecord] = []
        self._by_recurring: Dict[str, List[int]] = defaultdict(list)

    # ------------------------------------------------------------------ #
    # ingestion

    def add_job(self, job: JobRecord,
                records: Iterable[SubexpressionRecord]) -> None:
        self.jobs.append(job)
        for record in records:
            self._by_recurring[record.recurring].append(
                len(self.subexpressions))
            self.subexpressions.append(record)

    # ------------------------------------------------------------------ #
    # basic statistics (Figure 3)

    def total_jobs(self) -> int:
        return len(self.jobs)

    def total_subexpressions(self) -> int:
        return len(self.subexpressions)

    def repeated_fraction(self, min_height: int = 0) -> float:
        """Fraction of subexpression *instances* whose recurring signature
        occurs more than once (the paper's "more than 75% ... repeated")."""
        eligible = [r for r in self.subexpressions if r.height >= min_height]
        if not eligible:
            return 0.0
        counts: Dict[str, int] = defaultdict(int)
        for record in eligible:
            counts[record.recurring] += 1
        repeated = sum(1 for r in eligible if counts[r.recurring] > 1)
        return repeated / len(eligible)

    def average_repeat_frequency(self, min_height: int = 0) -> float:
        """Mean occurrences per distinct recurring signature (~5 in Fig 3)."""
        counts: Dict[str, int] = defaultdict(int)
        for record in self.subexpressions:
            if record.height >= min_height:
                counts[record.recurring] += 1
        if not counts:
            return 0.0
        return sum(counts.values()) / len(counts)

    # ------------------------------------------------------------------ #
    # grouped views of the table

    def occurrences(self, recurring: str) -> List[SubexpressionRecord]:
        return [self.subexpressions[i]
                for i in self._by_recurring.get(recurring, ())]

    def distinct_recurring(self, min_height: int = 0,
                           eligible_only: bool = True) -> List[str]:
        seen: Set[str] = set()
        out: List[str] = []
        for record in self.subexpressions:
            if record.height < min_height:
                continue
            if eligible_only and not record.eligible:
                continue
            if record.recurring not in seen:
                seen.add(record.recurring)
                out.append(record.recurring)
        return out

    def dataset_consumers(self) -> Dict[str, Set[str]]:
        """Dataset -> distinct consuming templates (Figure 2's notion of
        distinct downstream consumers of a shared input stream)."""
        consumers: Dict[str, Set[str]] = defaultdict(set)
        for job in self.jobs:
            for dataset in job.input_datasets:
                consumers[dataset].add(job.template_id or job.job_id)
        return dict(consumers)

    def for_runtime(self, runtime_version: str) -> "WorkloadRepository":
        """Sub-repository of jobs compiled under one runtime version.

        Signatures evolve with new SCOPE runtimes (Section 4, "Impact of
        changed signatures"), so workload analysis must only mix records
        whose signatures share a runtime -- otherwise selection publishes
        annotations no future job can match.
        """
        result = WorkloadRepository()
        keep = {j.job_id for j in self.jobs
                if j.runtime_version == runtime_version}
        by_job: Dict[str, List[SubexpressionRecord]] = defaultdict(list)
        for record in self.subexpressions:
            if record.job_id in keep:
                by_job[record.job_id].append(record)
        for job in self.jobs:
            if job.job_id in keep:
                result.add_job(job, by_job.get(job.job_id, ()))
        return result

    def window(self, start: float, end: float) -> "WorkloadRepository":
        """Sub-repository restricted to jobs submitted in [start, end)."""
        result = WorkloadRepository()
        keep = {j.job_id for j in self.jobs if start <= j.submit_time < end}
        by_job: Dict[str, List[SubexpressionRecord]] = defaultdict(list)
        for record in self.subexpressions:
            if record.job_id in keep:
                by_job[record.job_id].append(record)
        for job in self.jobs:
            if job.job_id in keep:
                result.add_job(job, by_job.get(job.job_id, ()))
        return result
