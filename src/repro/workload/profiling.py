"""Lightweight workload profiling: repositories without cluster execution.

Figures 2 and 3 are *workload characterizations* -- they need signatures
and input-stream metadata, not simulated latencies.  These helpers build a
:class:`WorkloadRepository` orders of magnitude faster than the full
co-simulation:

* :func:`compile_only_repository` compiles every job of a window (binding,
  rewrites, signatures) without executing rows or scheduling containers --
  enough for the Figure-3 overlap series;
* :func:`synthesize_dataset_sharing` generates the dataset-consumer
  bipartite structure of a whole cluster (hundreds of shared streams with
  Zipf-distributed consumer counts) for the Figure-2 CDF, where the five
  production clusters have thousands of streams that our five cooked
  datasets alone cannot represent.
"""

from __future__ import annotations

from typing import Optional

from repro.common.clock import SECONDS_PER_DAY
from repro.common.rng import rng_for, zipf_weights
from repro.engine.engine import ScopeEngine
from repro.plan.builder import PlanBuilder
from repro.plan.logical import Scan
from repro.plan.normalize import normalize
from repro.optimizer.rules import apply_rewrites
from repro.signatures.signature import enumerate_subexpressions
from repro.sql.parser import parse
from repro.workload.generator import CookingWorkload
from repro.workload.repository import (
    JobRecord,
    SubexpressionRecord,
    WorkloadRepository,
)


def compile_only_repository(workload: CookingWorkload,
                            days: int,
                            engine: Optional[ScopeEngine] = None
                            ) -> WorkloadRepository:
    """Compile (never execute) every job in the window; record signatures."""
    engine = engine or ScopeEngine()
    workload.install(engine, at=0.0)
    repository = WorkloadRepository()
    job_counter = 0
    for day in range(days):
        if day > 0:
            workload.cook(engine, day)
        for instance in workload.jobs_for_day(day):
            job_counter += 1
            job_id = f"profile-{job_counter}"
            builder = PlanBuilder(engine.catalog, instance.params)
            plan = normalize(apply_rewrites(
                builder.build(parse(instance.template.sql))))
            sub_by_plan = {id(s.plan): s for s in enumerate_subexpressions(
                plan, engine.signature_salt)}
            records = []
            datasets = set()
            counter = [0]

            def visit(node, parent_id):
                node_id = counter[0]
                counter[0] += 1
                for child in node.children():
                    visit(child, node_id)
                sub = sub_by_plan[id(node)]
                if isinstance(node, Scan):
                    datasets.add(node.dataset)
                records.append(SubexpressionRecord(
                    job_id=job_id,
                    virtual_cluster=instance.template.virtual_cluster,
                    submit_time=instance.submit_time,
                    template_id=instance.template.template_id,
                    pipeline_id=instance.template.pipeline_id,
                    strict=sub.strict,
                    recurring=sub.recurring,
                    tag=sub.tag,
                    operator=sub.operator,
                    height=sub.height,
                    eligible=sub.eligible,
                    rows=0,
                    size_bytes=0,
                    work=0.0,
                    input_datasets=tuple(sorted(
                        n.dataset for n in node.walk()
                        if isinstance(n, Scan))),
                    node_id=node_id,
                    parent_node_id=parent_id,
                ))

            visit(plan, None)
            repository.add_job(JobRecord(
                job_id=job_id,
                virtual_cluster=instance.template.virtual_cluster,
                submit_time=instance.submit_time,
                template_id=instance.template.template_id,
                pipeline_id=instance.template.pipeline_id,
                runtime_version=engine.runtime_version,
                input_datasets=tuple(sorted(datasets)),
                subexpression_count=len(records),
            ), records)
    return repository


def synthesize_dataset_sharing(cluster: str,
                               seed: int,
                               streams: int = 400,
                               consumers: int = 900,
                               reads_per_consumer: int = 3,
                               skew: float = 1.05,
                               window_days: int = 7) -> WorkloadRepository:
    """Synthesize one cluster's dataset-consumer graph (Figure 2 substrate).

    ``consumers`` distinct downstream templates each read a handful of
    streams drawn from a Zipf popularity law, reproducing the paper's
    heavy tail where "several datasets are consumed tens to hundreds of
    times, with few getting reused thousands of times".  Higher ``skew``
    or ``reads_per_consumer`` models Cluster1's Asimov-fed sharing.
    """
    rng = rng_for(seed, cluster, "sharing")
    weights = zipf_weights(streams, skew=skew)
    stream_names = [f"{cluster}/stream-{i:04d}" for i in range(streams)]
    repository = WorkloadRepository()
    for consumer in range(consumers):
        count = max(1, min(streams,
                           int(rng.gauss(reads_per_consumer,
                                         reads_per_consumer / 2))))
        reads = set()
        for _ in range(count):
            reads.add(rng.choices(stream_names, weights=weights, k=1)[0])
        submit = rng.uniform(0.0, window_days * SECONDS_PER_DAY)
        repository.add_job(JobRecord(
            job_id=f"{cluster}-consumer-{consumer}",
            virtual_cluster=cluster,
            submit_time=submit,
            template_id=f"{cluster}-template-{consumer}",
            pipeline_id=f"{cluster}-pipe-{consumer % 60}",
            runtime_version="scope-r1",
            input_datasets=tuple(sorted(reads)),
            subexpression_count=0,
        ), [])
    return repository
