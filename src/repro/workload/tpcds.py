"""A miniature TPC-DS-style decision-support workload.

The paper evaluates SparkCruise on TPC-DS: "On TPC-DS benchmarks,
SparkCruise can reduce the running time by approximately 30%"
(Section 5.5), and the original CloudViews work used TPC-DS in
pre-production too.  This module provides a scaled-down star schema
(store_sales fact with date, item, customer, and store dimensions) and a
suite of simplified TPC-DS-inspired query templates.  Like the real
benchmark, many queries share the same date-filtered fact/dimension join
cores, which is exactly the redundancy computation reuse exploits.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.catalog.schema import TableSchema, schema_of
from repro.common.rng import rng_for
from repro.engine.engine import ScopeEngine
from repro.plan.expressions import Row

CATEGORIES = ["Books", "Electronics", "Home", "Music", "Shoes", "Sports"]
STATES = ["CA", "TX", "WA", "NY", "GA", "IL"]
EDUCATION = ["College", "HighSchool", "Advanced"]


def tpcds_schemas() -> List[TableSchema]:
    return [
        schema_of("store_sales", [
            ("ss_sold_date_sk", "int"), ("ss_item_sk", "int"),
            ("ss_customer_sk", "int"), ("ss_store_sk", "int"),
            ("ss_quantity", "int"), ("ss_sales_price", "float"),
            ("ss_net_profit", "float")]),
        schema_of("date_dim", [
            ("d_date_sk", "int"), ("d_year", "int"), ("d_moy", "int"),
            ("d_qoy", "int")]),
        schema_of("item", [
            ("i_item_sk", "int"), ("i_category", "str"),
            ("i_brand", "str"), ("i_current_price", "float")]),
        schema_of("customer", [
            ("c_customer_sk", "int"), ("c_state", "str"),
            ("c_education", "str"), ("c_birth_year", "int")]),
        schema_of("store", [
            ("s_store_sk", "int"), ("s_state", "str"),
            ("s_floor_space", "int")]),
    ]


def install_tpcds(engine: ScopeEngine, scale_rows: int = 2000,
                  seed: int = 42) -> None:
    """Register the star schema with synthetic data.

    ``scale_rows`` is the fact-table row count; dimensions scale with it.
    """
    rng = rng_for(seed, "tpcds")
    dates = max(12, scale_rows // 100)
    items = max(20, scale_rows // 40)
    customers = max(30, scale_rows // 20)
    stores = max(6, scale_rows // 300)

    tables: Dict[str, List[Row]] = {
        "date_dim": [
            dict(d_date_sk=i, d_year=1998 + i % 5, d_moy=1 + i % 12,
                 d_qoy=1 + (i % 12) // 3)
            for i in range(dates)],
        "item": [
            dict(i_item_sk=i, i_category=rng.choice(CATEGORIES),
                 i_brand=f"brand#{i % 10}",
                 i_current_price=round(rng.uniform(1.0, 300.0), 2))
            for i in range(items)],
        "customer": [
            dict(c_customer_sk=i, c_state=rng.choice(STATES),
                 c_education=rng.choice(EDUCATION),
                 c_birth_year=rng.randint(1940, 2000))
            for i in range(customers)],
        "store": [
            dict(s_store_sk=i, s_state=rng.choice(STATES),
                 s_floor_space=rng.randint(5_000, 9_000))
            for i in range(stores)],
        "store_sales": [
            dict(ss_sold_date_sk=rng.randrange(dates),
                 ss_item_sk=rng.randrange(items),
                 ss_customer_sk=rng.randrange(customers),
                 ss_store_sk=rng.randrange(stores),
                 ss_quantity=rng.randint(1, 20),
                 ss_sales_price=round(rng.uniform(1.0, 300.0), 2),
                 ss_net_profit=round(rng.uniform(-50.0, 120.0), 2))
            for _ in range(scale_rows)],
    }
    for schema in tpcds_schemas():
        engine.register_table(schema, tables[schema.name])


#: The shared core most queries build on: the 1998 Q1-Q2 slice of sales.
_SALES_IN_WINDOW = ("store_sales JOIN date_dim "
                    "ON ss_sold_date_sk = d_date_sk")
_WINDOW = "d_year = 1998 AND d_qoy <= 2"

#: Simplified TPC-DS-inspired templates.  Queries 1-8 share the
#: date-window core (as e.g. TPC-DS q3/q7/q19/q42/q52/q55 share the
#: date_dim x store_sales x item shape); 9-12 are distinct shapes.
TPCDS_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("q3_brand_revenue",
     f"SELECT i_brand, SUM(ss_sales_price) AS revenue "
     f"FROM {_SALES_IN_WINDOW} JOIN item ON ss_item_sk = i_item_sk "
     f"WHERE {_WINDOW} GROUP BY i_brand"),
    ("q42_category_revenue",
     f"SELECT i_category, SUM(ss_sales_price) AS revenue "
     f"FROM {_SALES_IN_WINDOW} JOIN item ON ss_item_sk = i_item_sk "
     f"WHERE {_WINDOW} GROUP BY i_category"),
    ("q52_brand_quantity",
     f"SELECT i_brand, SUM(ss_quantity) AS qty "
     f"FROM {_SALES_IN_WINDOW} JOIN item ON ss_item_sk = i_item_sk "
     f"WHERE {_WINDOW} GROUP BY i_brand"),
    ("q55_category_profit",
     f"SELECT i_category, SUM(ss_net_profit) AS profit "
     f"FROM {_SALES_IN_WINDOW} JOIN item ON ss_item_sk = i_item_sk "
     f"WHERE {_WINDOW} GROUP BY i_category"),
    ("q7_state_avg_price",
     f"SELECT c_state, AVG(ss_sales_price) AS avg_price "
     f"FROM {_SALES_IN_WINDOW} "
     f"JOIN customer ON ss_customer_sk = c_customer_sk "
     f"WHERE {_WINDOW} GROUP BY c_state"),
    ("q7_education_quantity",
     f"SELECT c_education, SUM(ss_quantity) AS qty "
     f"FROM {_SALES_IN_WINDOW} "
     f"JOIN customer ON ss_customer_sk = c_customer_sk "
     f"WHERE {_WINDOW} GROUP BY c_education"),
    ("q19_store_profit",
     f"SELECT s_state, SUM(ss_net_profit) AS profit "
     f"FROM {_SALES_IN_WINDOW} JOIN store ON ss_store_sk = s_store_sk "
     f"WHERE {_WINDOW} GROUP BY s_state"),
    ("q19_store_volume",
     f"SELECT s_state, COUNT(*) AS transactions "
     f"FROM {_SALES_IN_WINDOW} JOIN store ON ss_store_sk = s_store_sk "
     f"WHERE {_WINDOW} GROUP BY s_state"),
    ("q96_monthly_counts",
     "SELECT d_moy, COUNT(*) AS n FROM store_sales JOIN date_dim "
     "ON ss_sold_date_sk = d_date_sk WHERE d_year = 1999 GROUP BY d_moy"),
    ("q9_price_buckets",
     "SELECT ss_store_sk, COUNT(*) AS n FROM store_sales "
     "WHERE ss_sales_price > 150 GROUP BY ss_store_sk"),
    ("q26_pricey_items",
     "SELECT i_category, AVG(i_current_price) AS avg_price FROM item "
     "WHERE i_current_price > 50 GROUP BY i_category"),
    ("q1_profitable_customers",
     "SELECT c_state, COUNT(*) AS n "
     "FROM store_sales JOIN customer ON ss_customer_sk = c_customer_sk "
     "WHERE ss_net_profit > 0 GROUP BY c_state"),
)


def run_tpcds_suite(engine: ScopeEngine, reuse_enabled: bool,
                    now: float = 0.0) -> Dict[str, object]:
    """Run every query once; return observed work and reuse counters.

    "Running time" at this scale is the observed operator work (rows in +
    rows out across all operators), the same currency the cluster
    simulator charges.
    """
    total_work = 0.0
    built = reused = 0
    results = {}
    for offset, (name, sql) in enumerate(TPCDS_QUERIES):
        run = engine.run_sql(sql, reuse_enabled=reuse_enabled,
                             now=now + offset)
        total_work += sum(s.rows_in + s.rows_out
                          for _, s in run.result.node_stats)
        built += run.compiled.built_views
        reused += run.compiled.reused_views
        results[name] = run.rows
    return {"work": total_work, "built": built, "reused": reused,
            "results": results}
