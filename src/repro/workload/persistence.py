"""Workload-repository persistence (JSON Lines).

The production workload repository lives in telemetry stores and is
consumed by offline analysis jobs (Figure 5's "Workload Repository ...
query plans, subexpression signatures, compile-time statistics, runtime
statistics, metadata").  This module serializes a
:class:`~repro.workload.repository.WorkloadRepository` to JSONL so that
analyses (Figures 2/3/8/9, view selection) can run offline, across
processes, or on merged multi-cluster captures.

Format: one JSON object per line; ``{"kind": "job", ...}`` records carry
job metadata, ``{"kind": "subexpression", ...}`` records the denormalized
table rows, linked by ``job_id``.  Jobs precede their subexpressions.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.common.errors import ReproError
from repro.workload.repository import (
    JobRecord,
    SubexpressionRecord,
    WorkloadRepository,
)

FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """Raised when a repository capture cannot be read."""


def save_repository(repository: WorkloadRepository,
                    path: Union[str, Path]) -> int:
    """Write the repository to ``path``; returns the line count."""
    path = Path(path)
    by_job: Dict[str, List[SubexpressionRecord]] = {}
    for record in repository.subexpressions:
        by_job.setdefault(record.job_id, []).append(record)
    lines = [json.dumps({"kind": "header",
                         "format_version": FORMAT_VERSION})]
    for job in repository.jobs:
        lines.append(json.dumps(
            {"kind": "job", **dataclasses.asdict(job)}))
        for record in by_job.get(job.job_id, ()):
            lines.append(json.dumps(
                {"kind": "subexpression", **dataclasses.asdict(record)}))
    path.write_text("\n".join(lines) + "\n")
    return len(lines)


def load_repository(path: Union[str, Path]) -> WorkloadRepository:
    """Read a repository capture written by :func:`save_repository`."""
    path = Path(path)
    repository = WorkloadRepository()
    pending_job: JobRecord = None
    pending_records: List[SubexpressionRecord] = []

    def flush() -> None:
        if pending_job is not None:
            repository.add_job(pending_job, pending_records)

    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise PersistenceError(f"cannot read capture {path}: {exc}")
    if not lines:
        raise PersistenceError(f"capture {path} is empty")
    header = _parse_line(lines[0], 1)
    if header.get("kind") != "header" \
            or header.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"capture {path} has an unsupported header: {header}")

    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        payload = _parse_line(line, number)
        kind = payload.pop("kind", None)
        if kind == "job":
            flush()
            pending_records = []
            payload["input_datasets"] = tuple(payload["input_datasets"])
            pending_job = JobRecord(**payload)
        elif kind == "subexpression":
            if pending_job is None:
                raise PersistenceError(
                    f"line {number}: subexpression before any job record")
            payload["input_datasets"] = tuple(payload["input_datasets"])
            pending_records.append(SubexpressionRecord(**payload))
        else:
            raise PersistenceError(f"line {number}: unknown kind {kind!r}")
    flush()
    return repository


def merge_captures(paths: Iterable[Union[str, Path]]) -> WorkloadRepository:
    """Union several captures (e.g. one per cluster) into one repository."""
    merged = WorkloadRepository()
    by_job: Dict[str, List[SubexpressionRecord]] = {}
    for path in paths:
        repository = load_repository(path)
        grouped: Dict[str, List[SubexpressionRecord]] = {}
        for record in repository.subexpressions:
            grouped.setdefault(record.job_id, []).append(record)
        for job in repository.jobs:
            merged.add_job(job, grouped.get(job.job_id, ()))
    return merged


def _parse_line(line: str, number: int) -> dict:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"line {number}: invalid JSON ({exc})")
    if not isinstance(payload, dict):
        raise PersistenceError(f"line {number}: expected an object")
    return payload
