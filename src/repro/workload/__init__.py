"""Workload infrastructure: generator, repository, analysis."""

from repro.workload.generator import (
    CookingWorkload,
    JobInstance,
    JobTemplate,
    day_string,
    generate_workload,
)
from repro.workload.analysis import (
    OverlapPoint,
    SharingPoint,
    consumer_distribution,
    overlap_series,
    pipeline_summary,
    sharing_summary,
)
from repro.workload.compression import (
    CompressedWorkload,
    RepresentativeJob,
    compress_workload,
    replay_plan,
)
from repro.workload.patterns import (
    QueryPattern,
    discover_patterns,
    render_patterns,
)
from repro.workload.persistence import (
    load_repository,
    merge_captures,
    save_repository,
)
from repro.workload.profiling import (
    compile_only_repository,
    synthesize_dataset_sharing,
)
from repro.workload.repository import (
    JobRecord,
    SubexpressionRecord,
    WorkloadRepository,
)

__all__ = [
    "CookingWorkload", "JobInstance", "JobTemplate", "day_string",
    "generate_workload", "JobRecord", "SubexpressionRecord",
    "WorkloadRepository", "OverlapPoint", "SharingPoint",
    "consumer_distribution", "overlap_series", "pipeline_summary",
    "sharing_summary", "CompressedWorkload", "RepresentativeJob",
    "compress_workload", "replay_plan", "load_repository",
    "merge_captures", "save_repository", "compile_only_repository",
    "synthesize_dataset_sharing", "QueryPattern", "discover_patterns",
    "render_patterns",
]
