"""Query-pattern discovery over the workload (Section 5.2).

"The notion of signatures to uniquely identify query subexpressions
turned out to be very helpful not just for computation reuse, but also
for applications such as discovering interesting query patterns in the
workload."

A *pattern* here is an operator chain (a root-to-leaf path of operator
labels through the recorded plan trees, e.g. ``Project > GroupBy > Filter
> Scan``).  Frequent chains characterize what a workload actually does --
which shapes dominate, which teams run which archetypes -- without
exposing any query text.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.workload.repository import SubexpressionRecord, WorkloadRepository


@dataclass(frozen=True)
class QueryPattern:
    """One operator chain with its workload footprint."""

    chain: Tuple[str, ...]
    occurrences: int               # jobs containing the chain
    distinct_templates: int
    virtual_clusters: Tuple[str, ...]

    def render(self) -> str:
        return " > ".join(self.chain)


def operator_chains(records: List[SubexpressionRecord]
                    ) -> List[Tuple[str, ...]]:
    """Root-to-leaf operator chains of one job's recorded plan tree."""
    children: Dict[Optional[int], List[SubexpressionRecord]] = defaultdict(list)
    for record in records:
        children[record.parent_node_id].append(record)
    roots = children.get(None, [])
    chains: List[Tuple[str, ...]] = []

    def walk(record: SubexpressionRecord, prefix: Tuple[str, ...]) -> None:
        chain = prefix + (record.operator,)
        kids = children.get(record.node_id, [])
        if not kids:
            chains.append(chain)
            return
        for kid in kids:
            walk(kid, chain)

    for root in roots:
        walk(root, ())
    return chains


def discover_patterns(repository: WorkloadRepository,
                      min_occurrences: int = 2,
                      max_patterns: int = 50) -> List[QueryPattern]:
    """Frequent operator chains across the workload, heaviest first."""
    by_job: Dict[str, List[SubexpressionRecord]] = defaultdict(list)
    for record in repository.subexpressions:
        by_job[record.job_id].append(record)

    jobs_with: Dict[Tuple[str, ...], set] = defaultdict(set)
    templates_with: Dict[Tuple[str, ...], set] = defaultdict(set)
    vcs_with: Dict[Tuple[str, ...], set] = defaultdict(set)
    for job in repository.jobs:
        records = by_job.get(job.job_id, [])
        for chain in set(operator_chains(records)):
            jobs_with[chain].add(job.job_id)
            templates_with[chain].add(job.template_id)
            vcs_with[chain].add(job.virtual_cluster)

    patterns = [
        QueryPattern(
            chain=chain,
            occurrences=len(jobs),
            distinct_templates=len(templates_with[chain]),
            virtual_clusters=tuple(sorted(vcs_with[chain])),
        )
        for chain, jobs in jobs_with.items()
        if len(jobs) >= min_occurrences
    ]
    patterns.sort(key=lambda p: (-p.occurrences, p.chain))
    return patterns[:max_patterns]


def render_patterns(patterns: List[QueryPattern]) -> str:
    """Operator-chain report for workload owners."""
    lines = ["Workload query patterns (operator chains)",
             f"{'chain':<52} {'jobs':>6} {'templates':>10} {'vcs':>4}"]
    for pattern in patterns:
        lines.append(f"{pattern.render():<52.52} {pattern.occurrences:>6} "
                     f"{pattern.distinct_templates:>10} "
                     f"{len(pattern.virtual_clusters):>4}")
    return "\n".join(lines)
