"""Synthetic "data cooking" workload generator.

Models the enterprise pattern of Section 2.1 (Figure 1): raw telemetry is
cooked into *shared datasets* which many downstream recurring analytics
consume.  The generator is calibrated to reproduce the paper's workload
shape at laptop scale:

* a star schema of shared datasets per cluster (one fact stream regenerated
  daily plus slowly-changing dimensions), consumed by many templates --
  Figure 2's heavy-tailed consumer distribution comes from Zipf-distributed
  template-to-fragment assignment;
* ~80% of templates recur daily on new data and parameters (Section 2:
  "almost 80% of the SCOPE workloads are recurring in nature");
* templates are built from a pool of shared *fragments* (filter+join cores
  over the shared datasets) so that a large fraction of subexpressions
  repeat across jobs (Figure 3: >75% repeated, mean repeat frequency ~5);
* some pipelines trigger all jobs at the start of the period, creating the
  concurrent submissions behind the paper's schedule-aware selection
  (Section 4) and concurrent-join opportunities (Figure 9).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.catalog.schema import TableSchema, schema_of
from repro.common.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.common.rng import rng_for, zipf_weights
from repro.engine.engine import ScopeEngine
from repro.plan.expressions import Row

SEGMENTS = ["Asia", "Europe", "Americas", "Africa"]
PLATFORMS = ["Windows", "Xbox", "Office", "Bing"]
COUNTRIES = ["CN", "IN", "DE", "US", "BR", "ZA"]
ZONES = ["east", "west", "north", "south"]


@dataclass(frozen=True)
class JobTemplate:
    """One recurring analytic job (the paper's "similar job templates
    executed periodically at regular intervals over new data sets and
    parameters")."""

    template_id: str
    pipeline_id: str
    virtual_cluster: str
    sql: str
    daily_offset_seconds: float
    uses_run_date: bool = True
    recurring: bool = True
    fragment_id: str = ""


@dataclass(frozen=True)
class JobInstance:
    """A concrete submission of a template on a given day."""

    template: JobTemplate
    submit_time: float
    params: Dict[str, object]

    @property
    def virtual_cluster(self) -> str:
        return self.template.virtual_cluster


@dataclass
class CookingWorkload:
    """A generated workload: shared datasets plus recurring templates."""

    name: str
    seed: int
    templates: List[JobTemplate]
    virtual_clusters: List[str]
    fact_rows_per_day: int = 1200
    users: int = 60
    devices: int = 24
    regions: int = 8
    #: One-off exploratory queries per day (unique predicates, never
    #: repeated) -- the non-recurring ~20% of the workload.
    adhoc_per_day: int = 4

    # ------------------------------------------------------------------ #
    # datasets (the data-cooking side of Figure 1)

    def install(self, engine: ScopeEngine, at: float = 0.0) -> None:
        """Register the shared datasets with their initial streams."""
        rng = rng_for(self.seed, self.name, "install")
        engine.register_table(self._users_schema(),
                              self._users_rows(rng), at=at)
        engine.register_table(self._devices_schema(),
                              self._devices_rows(rng), at=at)
        engine.register_table(self._regions_schema(),
                              self._regions_rows(rng), at=at)
        engine.register_table(self._events_schema(),
                              self._events_rows(day=0), at=at)
        engine.register_table(self._sessions_schema(),
                              self._sessions_rows(day=0), at=at)

    def cook(self, engine: ScopeEngine, day: int) -> None:
        """Daily cooking run: regenerate the fact streams (bulk update).

        Dimensions change rarely; facts are rewritten with the new day's
        telemetry, which rolls their stream GUIDs and thereby invalidates
        all views built over the previous day's streams.
        """
        at = day * SECONDS_PER_DAY
        engine.bulk_update("Events", self._events_rows(day), at=at)
        engine.bulk_update("Sessions", self._sessions_rows(day), at=at)

    # ------------------------------------------------------------------ #
    # job schedule

    def jobs_for_day(self, day: int) -> List[JobInstance]:
        """All submissions for one simulated day, ordered by time."""
        run_date = day_string(day)
        instances: List[JobInstance] = []
        for template in self.templates:
            if not template.recurring and day > 0:
                continue
            submit = day * SECONDS_PER_DAY + template.daily_offset_seconds
            params = {"runDate": run_date} if template.uses_run_date else {}
            instances.append(JobInstance(template, submit, params))
        instances.extend(self._adhoc_jobs(day))
        instances.sort(key=lambda i: (i.submit_time, i.template.template_id))
        return instances

    def _adhoc_jobs(self, day: int) -> List[JobInstance]:
        """Unique exploratory queries: never repeated, never reusable."""
        rng = rng_for(self.seed, self.name, "adhoc", day)
        instances: List[JobInstance] = []
        for index in range(self.adhoc_per_day):
            threshold = round(rng.uniform(1.0, 180.0), 3)
            key = rng.choice(["RegionId", "DeviceId", "ErrorCode"])
            agg = rng.choice(["SUM", "AVG", "MAX"])
            sql = (f"SELECT {key}, {agg}(Value) AS metric FROM Events "
                   f"WHERE Day = @runDate AND Value > {threshold} "
                   f"GROUP BY {key}")
            template = JobTemplate(
                template_id=f"{self.name}-adhoc-{day}-{index}",
                pipeline_id="",
                virtual_cluster=rng.choice(self.virtual_clusters),
                sql=sql,
                daily_offset_seconds=rng.uniform(1.0, 23.0) * 3600.0,
                uses_run_date=True,
                recurring=False,
            )
            submit = day * SECONDS_PER_DAY + template.daily_offset_seconds
            instances.append(JobInstance(
                template, submit, {"runDate": day_string(day)}))
        return instances

    def datasets(self) -> List[str]:
        return ["Events", "Sessions", "Users", "Devices", "Regions"]

    # ------------------------------------------------------------------ #
    # schemas and synthetic rows

    def _users_schema(self) -> TableSchema:
        return schema_of("Users", [
            ("UserId", "int"), ("Segment", "str"),
            ("Country", "str"), ("SignupYear", "int")])

    def _devices_schema(self) -> TableSchema:
        return schema_of("Devices", [
            ("DeviceId", "int"), ("Platform", "str"), ("OsVersion", "int")])

    def _regions_schema(self) -> TableSchema:
        return schema_of("Regions", [
            ("RegionId", "int"), ("RegionName", "str"), ("Zone", "str")])

    def _events_schema(self) -> TableSchema:
        return schema_of("Events", [
            ("UserId", "int"), ("DeviceId", "int"), ("RegionId", "int"),
            ("Day", "str"), ("Value", "float"), ("Duration", "float"),
            ("ErrorCode", "int")])

    def _sessions_schema(self) -> TableSchema:
        return schema_of("Sessions", [
            ("UserId", "int"), ("DeviceId", "int"), ("Day", "str"),
            ("Clicks", "int"), ("Seconds", "float")])

    def _users_rows(self, rng: random.Random) -> List[Row]:
        return [dict(UserId=i,
                     Segment=rng.choice(SEGMENTS),
                     Country=rng.choice(COUNTRIES),
                     SignupYear=rng.randint(2012, 2019))
                for i in range(self.users)]

    def _devices_rows(self, rng: random.Random) -> List[Row]:
        return [dict(DeviceId=i,
                     Platform=rng.choice(PLATFORMS),
                     OsVersion=rng.randint(7, 11))
                for i in range(self.devices)]

    def _regions_rows(self, rng: random.Random) -> List[Row]:
        return [dict(RegionId=i,
                     RegionName=f"region-{i}",
                     Zone=ZONES[i % len(ZONES)])
                for i in range(self.regions)]

    def _events_rows(self, day: int) -> List[Row]:
        rng = rng_for(self.seed, self.name, "events", day)
        run_date = day_string(day)
        count = max(1, int(self.fact_rows_per_day
                           * rng.uniform(0.85, 1.15)))
        return [dict(UserId=rng.randrange(self.users),
                     DeviceId=rng.randrange(self.devices),
                     RegionId=rng.randrange(self.regions),
                     Day=run_date,
                     Value=rng.uniform(0.5, 200.0),
                     Duration=rng.uniform(0.1, 30.0),
                     ErrorCode=rng.choice([0, 0, 0, 0, 1, 2]))
                for _ in range(count)]

    def _sessions_rows(self, day: int) -> List[Row]:
        rng = rng_for(self.seed, self.name, "sessions", day)
        run_date = day_string(day)
        count = max(1, self.fact_rows_per_day // 2)
        return [dict(UserId=rng.randrange(self.users),
                     DeviceId=rng.randrange(self.devices),
                     Day=run_date,
                     Clicks=rng.randint(1, 40),
                     Seconds=rng.uniform(5.0, 600.0))
                for _ in range(count)]


def day_string(day: int) -> str:
    """Stable date-like string for day indexes ('d0001')."""
    return f"d{day:04d}"


# --------------------------------------------------------------------- #
# workload construction


@dataclass(frozen=True)
class _Fragment:
    """A shared filter+join core over the cooked datasets."""

    fragment_id: str
    from_clause: str
    where: List[str]
    group_keys: List[str]
    agg_columns: List[str]
    datasets: Tuple[str, ...]


def _fragment_pool(rng: random.Random, count: int) -> List[_Fragment]:
    """A pool of distinct fragments; templates share draws from it."""
    pool: List[_Fragment] = []
    archetypes = ["seg", "plat", "day", "country", "triple", "sessions",
                  "activity"]
    for index in range(count):
        archetype = archetypes[index % len(archetypes)]
        if archetype == "seg":
            seg = rng.choice(SEGMENTS)
            pool.append(_Fragment(
                f"frag-{index}", "Events JOIN Users",
                [f"Segment = '{seg}'", "Day = @runDate"],
                ["Country", "SignupYear", "RegionId"],
                ["Value", "Duration"],
                ("Events", "Users")))
        elif archetype == "plat":
            plat = rng.choice(PLATFORMS)
            pool.append(_Fragment(
                f"frag-{index}", "Events JOIN Devices",
                [f"Platform = '{plat}'", "Day = @runDate"],
                ["OsVersion", "RegionId", "ErrorCode"],
                ["Value", "Duration"],
                ("Events", "Devices")))
        elif archetype == "day":
            pool.append(_Fragment(
                f"frag-{index}", "Events",
                ["Day = @runDate", f"ErrorCode = {rng.choice([0, 1, 2])}"],
                ["RegionId", "DeviceId"],
                ["Value", "Duration"],
                ("Events",)))
        elif archetype == "country":
            country = rng.choice(COUNTRIES)
            pool.append(_Fragment(
                f"frag-{index}", "Sessions JOIN Users",
                [f"Country = '{country}'", "Day = @runDate"],
                ["Segment", "SignupYear"],
                ["Clicks", "Seconds"],
                ("Sessions", "Users")))
        elif archetype == "triple":
            seg = rng.choice(SEGMENTS)
            pool.append(_Fragment(
                f"frag-{index}", "Events JOIN Users JOIN Devices",
                [f"Segment = '{seg}'", "Day = @runDate"],
                ["Platform", "Country", "OsVersion"],
                ["Value", "Duration"],
                ("Events", "Users", "Devices")))
        elif archetype == "sessions":
            pool.append(_Fragment(
                f"frag-{index}", "Sessions",
                ["Day = @runDate", f"Clicks > {rng.randint(2, 6)}"],
                ["UserId", "DeviceId"],
                ["Clicks", "Seconds"],
                ("Sessions",)))
        else:  # activity: correlate the two fact streams.  The natural
            # join equates UserId, DeviceId, and Day -- a multi-key join
            # the engine executes as a sort-merge join.
            pool.append(_Fragment(
                f"frag-{index}", "Events JOIN Sessions",
                ["Day = @runDate", f"Clicks > {rng.randint(1, 4)}"],
                ["UserId", "RegionId"],
                ["Value", "Seconds"],
                ("Events", "Sessions")))
    return pool


_AGGS = ["SUM", "AVG", "MAX", "COUNT"]


def generate_workload(name: str = "cluster1",
                      seed: int = 7,
                      virtual_clusters: int = 3,
                      templates_per_vc: int = 10,
                      fragment_pool_size: Optional[int] = None,
                      burst_fraction: float = 0.3,
                      fact_rows_per_day: int = 1200,
                      adhoc_per_day: int = 6,
                      union_fraction: float = 0.6,
                      private_fraction: float = 0.5,
                      fragment_skew: float = 1.2) -> CookingWorkload:
    """Build a workload whose subexpression overlap matches the paper.

    ``fragment_pool_size`` controls sharing: fewer fragments for the same
    number of templates means higher repeat frequency.  The default sizes
    the pool so the mean repeat frequency lands near the paper's ~5.
    ``burst_fraction`` of pipelines submit all their jobs at the start of
    the period (concurrent submissions).
    """
    rng = rng_for(seed, name, "workload")
    vcs = [f"{name}-vc{i}" for i in range(virtual_clusters)]
    total_templates = templates_per_vc * virtual_clusters
    pool_size = fragment_pool_size or max(2, round(total_templates / 6))
    pool = _fragment_pool(rng, pool_size)
    weights = zipf_weights(len(pool), skew=fragment_skew)

    def select_over(fragment: _Fragment, unique_tag: str = "") -> str:
        key = rng.choice(fragment.group_keys)
        agg = rng.choice(_AGGS)
        measure = rng.choice(fragment.agg_columns)
        agg_sql = "COUNT(*)" if agg == "COUNT" else f"{agg}({measure})"
        where = " AND ".join(fragment.where)
        if unique_tag:
            # A template-private conjunct: this arm's whole subtree is
            # unique to the template (it repeats across days but is never
            # shared with another job, so it cannot be reused -- reuse
            # only covers *portions* of each job's DAG, as in production).
            where += f" AND {fragment.agg_columns[0]} > {unique_tag}"
        return (f"SELECT {key} AS k, {agg_sql} AS metric "
                f"FROM {fragment.from_clause} "
                f"WHERE {where} GROUP BY {key}")

    templates: List[JobTemplate] = []
    pipelines = max(1, total_templates // 8)
    for index in range(total_templates):
        # A pipeline belongs to one team, hence one virtual cluster.
        vc = vcs[(index % pipelines) % len(vcs)]
        fragment = rng.choices(pool, weights=weights, k=1)[0]
        if rng.random() < union_fraction:
            # Dashboard-style job: one report over two cores.  The second
            # core is sometimes private to this template (a unique
            # conjunct), so reuse covers only *portions* of such jobs --
            # their private arm keeps part of the input, processing, and
            # critical path untouched, as in production DAGs.
            second = rng.choices(pool, weights=weights, k=1)[0]
            if rng.random() < private_fraction:
                private = str(round(0.01 + (index * 0.77) % 5.0, 3))
                sql = (select_over(fragment)
                       + " UNION ALL "
                       + select_over(second, unique_tag=private))
                fragment_label = f"{fragment.fragment_id}+{second.fragment_id}!"
            else:
                sql = (select_over(fragment)
                       + " UNION ALL "
                       + select_over(second))
                fragment_label = f"{fragment.fragment_id}+{second.fragment_id}"
        else:
            sql = select_over(fragment)
            fragment_label = fragment.fragment_id
        pipeline_index = index % pipelines
        pipeline = f"{name}-pipe{pipeline_index}"
        burst = pipeline_index < pipelines * burst_fraction
        if burst:
            # Workflow tools "trigger all jobs at the start of every
            # period" (Section 4): the whole pipeline fires together, with
            # only a small trigger jitter between its jobs.
            # Half the periodic pipelines fire right at the period start
            # (before any views exist for the day); the rest mid-day, when
            # the day's views are already materialized.
            if pipeline_index % 3 == 1:
                # Mid-day pipeline: the day's views already exist, and its
                # jobs are spaced widely enough for early sealing to help.
                burst_hour, stagger = 9.0, 30.0
            else:
                # Period-start pipeline: fires before any of the day's
                # views can be materialized; reuse cannot help it.
                burst_hour, stagger = 1.0, 5.0
            offset = (burst_hour * SECONDS_PER_HOUR
                      + (index // pipelines) * stagger)
        else:
            offset = rng.uniform(0.5, 22.0) * SECONDS_PER_HOUR
        templates.append(JobTemplate(
            template_id=f"{name}-t{index}",
            pipeline_id=pipeline,
            virtual_cluster=vc,
            sql=sql,
            daily_offset_seconds=offset,
            uses_run_date=True,
            recurring=rng.random() < 0.8 or burst,
            fragment_id=fragment_label,
        ))
    return CookingWorkload(
        name=name,
        seed=seed,
        templates=templates,
        virtual_clusters=vcs,
        fact_rows_per_day=fact_rows_per_day,
        adhoc_per_day=adhoc_per_day,
    )
