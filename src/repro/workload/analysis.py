"""Workload analyses behind the paper's Figures 2 and 3.

* Figure 2: cumulative distribution of *distinct consumers per shared
  input stream* across production clusters ("more than half of the
  datasets are shared across multiple distinct consumers ... few getting
  reused thousands of times").
* Figure 3: the fraction of repeated query subexpressions (>75%,
  stable over a 10-month window) and the average repeat frequency (~5).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.common.clock import SECONDS_PER_DAY
from repro.workload.repository import WorkloadRepository


@dataclass(frozen=True)
class SharingPoint:
    """One point of the Figure-2 CDF."""

    fraction_of_streams: float     # x-axis (0..1]
    distinct_consumers: int        # y-axis (log scale in the paper)


def consumer_distribution(repository: WorkloadRepository) -> List[SharingPoint]:
    """Distinct-consumer counts per input dataset, as a CDF.

    Streams are ordered by ascending consumer count, matching the paper's
    presentation where the right edge holds the heavily shared streams.
    """
    consumers = repository.dataset_consumers()
    counts = sorted(len(c) for c in consumers.values())
    total = len(counts)
    return [SharingPoint((i + 1) / total, count)
            for i, count in enumerate(counts)]


def sharing_summary(repository: WorkloadRepository) -> Dict[str, float]:
    """Headline Figure-2 statistics."""
    consumers = repository.dataset_consumers()
    counts = sorted((len(c) for c in consumers.values()), reverse=True)
    if not counts:
        return {"datasets": 0, "shared_fraction": 0.0,
                "p90_consumers": 0.0, "max_consumers": 0.0}
    shared = sum(1 for c in counts if c > 1)
    p90_index = max(0, int(len(counts) * 0.1) - 1)
    return {
        "datasets": float(len(counts)),
        "shared_fraction": shared / len(counts),
        # "10% of the inputs on this cluster get reused by more than 16
        # downstream consumers"
        "p90_consumers": float(counts[p90_index]),
        "max_consumers": float(counts[0]),
    }


@dataclass(frozen=True)
class OverlapPoint:
    """One time-bucket of the Figure-3 series."""

    day: int
    repeated_fraction: float
    average_repeat_frequency: float
    subexpressions: int


def overlap_series(repository: WorkloadRepository,
                   bucket_days: int = 1) -> List[OverlapPoint]:
    """Figure 3: per-bucket repeated fraction and mean repeat frequency.

    Repetition is measured *within* each bucket, mirroring the paper's
    periodic re-analysis of trailing workload windows.
    """
    if not repository.jobs:
        return []
    first = min(j.submit_time for j in repository.jobs)
    last = max(j.submit_time for j in repository.jobs)
    bucket_seconds = bucket_days * SECONDS_PER_DAY
    points: List[OverlapPoint] = []
    start = first - (first % bucket_seconds)
    while start <= last:
        window = repository.window(start, start + bucket_seconds)
        if window.total_subexpressions():
            points.append(OverlapPoint(
                day=int(start // SECONDS_PER_DAY),
                repeated_fraction=window.repeated_fraction(),
                average_repeat_frequency=window.average_repeat_frequency(),
                subexpressions=window.total_subexpressions(),
            ))
        start += bucket_seconds
    return points


def pipeline_summary(repository: WorkloadRepository) -> Dict[str, int]:
    """The Table-1 workload shape counters (jobs, pipelines, VCs)."""
    pipelines = {j.pipeline_id for j in repository.jobs if j.pipeline_id}
    vcs = {j.virtual_cluster for j in repository.jobs}
    versions = {j.runtime_version for j in repository.jobs}
    return {
        "jobs": repository.total_jobs(),
        "pipelines": len(pipelines),
        "virtual_clusters": len(vcs),
        "runtime_versions": len(versions),
        "subexpressions": repository.total_subexpressions(),
    }
