"""Exception hierarchy for the CloudViews reproduction.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
distinguish library failures from programming errors.  Parsing, binding,
planning, execution, storage, and service failures each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Carries the position of the offending token so error messages can point
    at the exact spot in the query text.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)


class BindError(ReproError):
    """Raised when names in a query cannot be resolved against the catalog."""


class PlanError(ReproError):
    """Raised when a logical plan is malformed or cannot be lowered."""


class ExecutionError(ReproError):
    """Raised when a physical operator fails at run time."""


class TransientBackendError(ExecutionError):
    """A retryable backend failure (flaky I/O, a busy database file).

    The engine's bounded retry loop (:class:`~repro.engine.engine.
    EngineConfig` ``execute_retries``) absorbs these before they can
    surface to a caller; only exhaustion propagates.
    """


class InjectedCrash(TransientBackendError):
    """Simulated process/worker death from the fault-injection framework.

    Raised by :meth:`repro.faults.runtime.FaultRuntime.fire` for
    ``crash``-kind specs.  Everything in flight is torn down exactly as
    an OS kill would leave it (open transactions roll back), and both
    the engine's transient retry and the scheduler's worker-retry loop
    treat it as retryable.
    """


class CatalogError(ReproError):
    """Raised for unknown datasets, duplicate registrations, and the like."""


class StorageError(ReproError):
    """Raised by the simulated store (missing streams, sealed-view misuse)."""


class ConfigError(ReproError, ValueError):
    """Raised for invalid configuration or argument values.

    Subclasses :class:`ValueError` as well, so call sites that predate the
    unified hierarchy (and external code catching ``ValueError``) keep
    working while everything raised by the library remains a
    :class:`ReproError`.
    """


class InsightsError(ReproError):
    """Raised by the insights service (lock conflicts, unknown tags)."""


class InsightsTimeout(InsightsError):
    """Raised when a serving-layer round trip exceeds the client timeout.

    Only ever raised *internally* by :class:`repro.insights.client.
    InsightsClient` attempts; after retries are exhausted the client
    degrades the job to reuse-disabled compilation instead of
    propagating, matching the paper's kill-switch behavior during
    incidents (Section 4).
    """


class ShardError(ReproError):
    """Raised by the sharded insights deployment (:mod:`repro.shard`):
    protocol framing violations, supervisor spawn failures, and RPC
    plumbing errors that are not the serving layer's own fault surface
    (those map onto :class:`InsightsError` so the client's retry /
    circuit-breaker ladder treats a dead shard like a dead service)."""


class ConcurrencyError(ReproError):
    """Base class for violations caught by the runtime lock sanitizer."""


class LockOrderError(ConcurrencyError):
    """Raised when a tracked lock is acquired against the documented
    hierarchy (a rank not strictly below the most recently acquired
    lock's rank) while ``REPRO_DEBUG_CHECKS`` is on."""


class DeadlockError(ConcurrencyError):
    """Raised when the sanitizer's wait-for graph closes a cycle: the
    acquire being attempted would deadlock the process.  Raising here
    turns a hung test into a stack trace naming every lock involved."""


class SchedulerError(ReproError):
    """Raised by the concurrent job scheduler (misuse, shutdown races)."""


class AdmissionError(SchedulerError):
    """Raised when a job is rejected by the scheduler's admission limit."""


class SelectionError(ReproError):
    """Raised when view selection is given inconsistent constraints."""


class SchedulingError(ReproError):
    """Raised by the cluster simulator for impossible schedules."""


class SignatureError(ReproError):
    """Raised when a signature cannot be computed (e.g. unbound parameters)."""


class LintError(ReproError):
    """Raised when a debug-mode soundness check finds an error finding.

    Carries the findings so callers (tests, the simulation harness) can
    inspect exactly which invariant broke.
    """

    def __init__(self, message: str, findings=()):
        self.findings = list(findings)
        super().__init__(message)
