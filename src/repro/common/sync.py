"""Tracked locking primitives and the runtime lock sanitizer.

The concurrent subsystems (scheduler workers, the GC janitor, invalidation
cascades) share one process and a dozen locks; the paper's Section-4
lesson is that *silently* broken invariants are the expensive kind.  This
module makes the locking discipline explicit and checkable:

* :class:`TrackedLock` / :class:`TrackedRLock` wrap the stdlib primitives
  with a **name** and a **hierarchy rank**.  When nothing is watching
  (no sanitizer, null recorder) an acquire is a single extra attribute
  check over the raw lock -- measured by ``benchmarks/bench_lock_overhead``.
* With a real flight recorder attached, every lock records wait-time and
  hold-time histograms (``lock.wait_seconds.<name>`` /
  ``lock.hold_seconds.<name>``) so contention is visible in captures.
* With ``REPRO_DEBUG_CHECKS`` on (or :func:`enable_sanitizer` called), a
  process-wide :class:`LockSanitizer` checks every acquire against the
  documented hierarchy and maintains a wait-for graph that reports actual
  deadlock cycles *at acquire time* instead of hanging the test run.

The documented hierarchy (see DESIGN "Concurrency model") is::

    catalog < storage < insights < scheduler < lifecycle

with rank values ascending in that order.  The acquisition rule is
**descending**: a thread holding a lock may only acquire locks of
*strictly lower* rank.  Outermost coordination locks (the invalidation
bus, which holds its lock across a whole purge cascade) therefore carry
the highest ranks, and terminal bookkeeping locks (the journal's WAL
handle, the lineage table) sit in the ``RANK_LEAF`` band at the bottom --
they guard leaf resources and never acquire anything themselves.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, DeadlockError, LockOrderError
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER

# ---------------------------------------------------------------------- #
# the documented hierarchy: catalog < storage < insights < scheduler
# < lifecycle, plus a leaf band for terminal bookkeeping locks.

RANK_LEAF = 50
RANK_CATALOG = 100
RANK_STORAGE = 200
RANK_INSIGHTS = 300
RANK_SCHEDULER = 400
RANK_LIFECYCLE = 500

#: Tier boundaries, ascending; used to render a rank as a band name.
_TIERS = (
    (RANK_LEAF, "leaf"),
    (RANK_CATALOG, "catalog"),
    (RANK_STORAGE, "storage"),
    (RANK_INSIGHTS, "insights"),
    (RANK_SCHEDULER, "scheduler"),
    (RANK_LIFECYCLE, "lifecycle"),
)


def rank_tier(rank: int) -> str:
    """The hierarchy band a numeric rank falls in (for messages)."""
    name = "leaf"
    for floor, tier in _TIERS:
        if rank >= floor:
            name = tier
    return name


def debug_checks_enabled() -> bool:
    """Mirror of the engine's ``REPRO_DEBUG_CHECKS`` switch."""
    return os.environ.get("REPRO_DEBUG_CHECKS", "") not in ("", "0", "false")


class LockSanitizer:
    """Process-wide hierarchy checker and wait-for-graph deadlock detector.

    Tracks, per thread, the stack of tracked locks currently held, and,
    globally, which thread holds which lock and which lock each blocked
    thread is waiting for.  Both checks run *before* the real acquire:

    * **hierarchy** -- the incoming lock's rank must be strictly below the
      rank of the thread's most recently acquired lock (re-acquiring a
      reentrant lock already held is always allowed);
    * **deadlock** -- if the lock is held elsewhere, walk holder ->
      waited-for-lock -> holder ... in the wait-for graph; closing the
      cycle back to the requesting thread means the acquire can never
      succeed, so the sanitizer raises instead of blocking.

    Violations are appended to :attr:`violations`, emitted as
    ``sanitizer.violation`` flight-recorder events, and (by default)
    raised as :class:`LockOrderError` / :class:`DeadlockError` so tests
    fail loudly.  The checks themselves run under one internal meta-lock;
    the sanitizer is a debug tool, not a fast path.
    """

    def __init__(self, recorder=NULL_RECORDER,
                 raise_on_violation: bool = True,
                 check_hierarchy: bool = True,
                 detect_deadlocks: bool = True) -> None:
        self.recorder = recorder
        self.raise_on_violation = raise_on_violation
        self.check_hierarchy = check_hierarchy
        self.detect_deadlocks = detect_deadlocks
        #: Every violation seen, raised or not (tests and operators).
        self.violations: List[Dict[str, object]] = []
        self._meta = threading.Lock()
        #: id(lock) -> ident of the thread holding it.
        self._holders: Dict[int, int] = {}
        #: thread ident -> the TrackedLock it is currently blocked on.
        self._waiting: Dict[int, "TrackedLock"] = {}
        self._held = threading.local()

    # ------------------------------------------------------------------ #
    # per-thread held stack

    def _stack(self) -> List["TrackedLock"]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def held_names(self) -> List[str]:
        """Names of the locks the calling thread holds, outermost first."""
        return [lock.name for lock in self._stack()]

    # ------------------------------------------------------------------ #
    # acquire/release hooks (called by TrackedLock's slow path)

    def before_acquire(self, lock: "TrackedLock") -> None:
        stack = self._stack()
        if stack and not any(held is lock for held in stack):
            innermost = stack[-1]
            if self.check_hierarchy and lock.rank >= innermost.rank:
                self._violation(
                    "hierarchy", lock,
                    f"acquiring {lock.name!r} (rank {lock.rank}, "
                    f"{rank_tier(lock.rank)}) while holding "
                    f"{innermost.name!r} (rank {innermost.rank}, "
                    f"{rank_tier(innermost.rank)}); held: "
                    f"{self.held_names()}",
                    held=self.held_names())
        elif stack and not lock.reentrant \
                and any(held is lock for held in stack):
            # A plain lock re-acquired by its owner deadlocks for real.
            self._violation(
                "self-deadlock", lock,
                f"thread already holds non-reentrant lock {lock.name!r}",
                held=self.held_names())
        if self.detect_deadlocks:
            me = threading.get_ident()
            with self._meta:
                holder = self._holders.get(id(lock))
                if holder is not None and holder != me:
                    cycle = self._find_cycle(me, holder)
                    if cycle is not None:
                        self._violation(
                            "deadlock", lock,
                            f"acquiring {lock.name!r} closes a wait-for "
                            f"cycle: {' -> '.join(cycle)}",
                            cycle=cycle)
                        return
                    self._waiting[me] = lock

    def _find_cycle(self, me: int, holder: int) -> Optional[List[str]]:
        """Walk holder -> waited-lock -> holder...; meta-lock held."""
        chain: List[str] = []
        seen = set()
        current = holder
        while current is not None and current not in seen:
            seen.add(current)
            waited = self._waiting.get(current)
            if waited is None:
                return None
            chain.append(waited.name)
            if current == me:
                return chain
            current = self._holders.get(id(waited))
            if current == me:
                return chain
        return None

    def after_acquire(self, lock: "TrackedLock", acquired: bool) -> None:
        me = threading.get_ident()
        with self._meta:
            self._waiting.pop(me, None)
            if acquired:
                self._holders[id(lock)] = me
        if acquired:
            self._stack().append(lock)

    def on_release(self, lock: "TrackedLock") -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                break
        if not any(held is lock for held in stack):
            with self._meta:
                holder = self._holders.get(id(lock))
                if holder == threading.get_ident():
                    del self._holders[id(lock)]

    # ------------------------------------------------------------------ #
    # violations

    def _violation(self, kind: str, lock: "TrackedLock", message: str,
                   **attrs: object) -> None:
        record: Dict[str, object] = {
            "kind": kind,
            "lock": lock.name,
            "rank": lock.rank,
            "thread": threading.current_thread().name,
            "message": message,
        }
        record.update(attrs)
        self.violations.append(record)
        recorder = lock.recorder if lock.recorder.enabled else self.recorder
        recorder.event(obs_events.SANITIZER_VIOLATION, violation=kind,
                       lock=lock.name, rank=lock.rank,
                       thread=threading.current_thread().name,
                       message=message)
        if self.raise_on_violation:
            if kind == "deadlock":
                raise DeadlockError(message)
            raise LockOrderError(message)


#: The active sanitizer, if any.  Reads are a single global lookup, which
#: is what keeps :meth:`TrackedLock.acquire`'s fast path cheap.
_SANITIZER: Optional[LockSanitizer] = None


def enable_sanitizer(recorder=NULL_RECORDER,
                     raise_on_violation: bool = True,
                     check_hierarchy: bool = True,
                     detect_deadlocks: bool = True) -> LockSanitizer:
    """Install (and return) a fresh process-wide :class:`LockSanitizer`."""
    global _SANITIZER
    _SANITIZER = LockSanitizer(recorder=recorder,
                               raise_on_violation=raise_on_violation,
                               check_hierarchy=check_hierarchy,
                               detect_deadlocks=detect_deadlocks)
    return _SANITIZER


def disable_sanitizer() -> None:
    """Remove the active sanitizer; tracked locks revert to the fast path."""
    global _SANITIZER
    _SANITIZER = None


def sanitizer() -> Optional[LockSanitizer]:
    """The active sanitizer, or ``None``."""
    return _SANITIZER


class TrackedLock:
    """A named, ranked ``threading.Lock`` with optional instrumentation.

    Drop-in for the stdlib lock (``acquire``/``release``/``locked``,
    context manager).  When no sanitizer is installed and the recorder is
    the null recorder, ``acquire`` costs one global read and one attribute
    check over the raw primitive; otherwise the slow path checks the
    hierarchy, maintains the wait-for graph, and records wait/hold
    histograms through the flight recorder.
    """

    reentrant = False
    __slots__ = ("name", "rank", "recorder", "_lock", "_depth",
                 "_held_since")

    def __init__(self, name: str, rank: int,
                 recorder=NULL_RECORDER) -> None:
        if not name:
            raise ConfigError("tracked locks must be named")
        self.name = name
        self.rank = int(rank)
        self.recorder = recorder
        self._lock = self._make()
        # Reentrancy depth, mutated only while the lock is held (so only
        # ever by the owning thread); drives hold-time measurement.
        self._depth = 0
        self._held_since = 0.0

    def _make(self):
        return threading.Lock()

    # ------------------------------------------------------------------ #
    # the lock surface

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if _SANITIZER is None and not self.recorder.enabled:
            return self._lock.acquire(blocking, timeout)
        return self._slow_acquire(blocking, timeout)

    def release(self) -> None:
        san = _SANITIZER
        if san is None and not self.recorder.enabled:
            self._lock.release()
            return
        if self._depth > 0:
            self._depth -= 1
            if self._depth == 0:
                recorder = self._pick_recorder(san)
                if recorder.enabled:
                    recorder.observe(f"lock.hold_seconds.{self.name}",
                                     time.perf_counter() - self._held_since)
        if san is not None:
            san.on_release(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}({self.name!r}, rank={self.rank}, "
                f"tier={rank_tier(self.rank)})")

    # ------------------------------------------------------------------ #
    # slow path

    def _pick_recorder(self, san: Optional[LockSanitizer]):
        """The lock's own recorder, else the sanitizer's (if any)."""
        if self.recorder.enabled or san is None:
            return self.recorder
        return san.recorder

    def _slow_acquire(self, blocking: bool, timeout: float) -> bool:
        san = _SANITIZER
        if san is not None:
            san.before_acquire(self)
        started = time.perf_counter()
        acquired = self._lock.acquire(blocking, timeout)
        waited = time.perf_counter() - started
        if san is not None:
            san.after_acquire(self, acquired)
        if acquired:
            self._depth += 1
            if self._depth == 1:
                self._held_since = started + waited
            recorder = self._pick_recorder(san)
            if recorder.enabled:
                recorder.observe(f"lock.wait_seconds.{self.name}", waited)
        return acquired


class TrackedRLock(TrackedLock):
    """A named, ranked ``threading.RLock``.

    Re-acquisition by the owning thread is always legal (the sanitizer
    skips the hierarchy check for a lock the thread already holds);
    hold-time measures the outermost hold.
    """

    reentrant = True
    __slots__ = ()

    def _make(self):
        return threading.RLock()

    def locked(self) -> bool:
        """Whether the *calling thread* owns the lock.

        The C ``RLock`` grew ``locked()`` only in Python 3.12; owner
        introspection is the portable (and for a reentrant lock, the
        more useful) signal.
        """
        return self._lock._is_owned()  # noqa: SLF001 - stdlib debug API


# Honor the environment at import time so every tracked lock in the
# process is sanitized when the test/CI run asks for debug checks.
if debug_checks_enabled():  # pragma: no cover - exercised via CI env
    enable_sanitizer()
