"""Deterministic hashing helpers used for subexpression signatures.

CloudViews identifies common computations with a *signature*: a hash that
"uniquely captures a subexpression instance including its inputs used"
(paper, Section 2.3).  Everything here is deterministic across processes and
runs -- we never rely on Python's salted ``hash()``.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


def stable_hash(*parts: object) -> str:
    """Return a 16-byte hex digest over the string forms of ``parts``.

    Parts are joined with an unambiguous separator so that
    ``stable_hash("ab", "c")`` differs from ``stable_hash("a", "bc")``.
    Nested lists/tuples are flattened with explicit brackets, again to keep
    the encoding prefix-free.
    """
    hasher = hashlib.sha256()
    _feed(hasher, parts)
    return hasher.hexdigest()[:32]


def _feed(hasher: "hashlib._Hash", value: object) -> None:
    if isinstance(value, (list, tuple)):
        hasher.update(b"[")
        for item in value:
            _feed(hasher, item)
            hasher.update(b"\x1f")
        hasher.update(b"]")
    elif isinstance(value, bytes):
        hasher.update(b"b:")
        hasher.update(value)
    elif isinstance(value, bool):
        hasher.update(b"B:1" if value else b"B:0")
    elif isinstance(value, int):
        hasher.update(b"i:" + str(value).encode())
    elif isinstance(value, float):
        hasher.update(b"f:" + repr(value).encode())
    elif value is None:
        hasher.update(b"N")
    else:
        hasher.update(b"s:" + str(value).encode("utf-8"))


def combine_unordered(digests: Iterable[str]) -> str:
    """Hash a multiset of digests, ignoring order.

    Used for commutative operators (inner joins, unions) so that logically
    identical plans with swapped children produce the same signature.
    """
    return stable_hash(sorted(digests))


def shard_for(key: str, shards: int) -> int:
    """Deterministic shard assignment for a signature-derived key.

    Re-hashes ``key`` (a tag or strict signature -- both are themselves
    hashes of the recurring computation) so the placement is uniform and
    stable across processes and runs; the same key always lands on the
    same shard for a given shard count.
    """
    if shards <= 1:
        return 0
    return int(stable_hash("shard", key), 16) % shards


def short_tag(digest: str, length: int = 8) -> str:
    """Return the short *tag* form of a signature.

    Tags "help fetch relevant signatures for a given SCOPE job and could
    also be used for access control" (Section 2.3).  They are a truncated,
    re-hashed form so that a tag does not reveal the full signature.
    """
    return hashlib.sha256(("tag:" + digest).encode()).hexdigest()[:length]
