"""A simulated clock for the cluster and insights-service simulations.

The reproduction never reads wall-clock time: all components share a
:class:`SimClock` so experiments are deterministic and can compress months of
"production" activity into seconds of real time.  Times are plain floats in
*simulated seconds* since the epoch of the experiment.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class SimClock:
    """Monotonically advancing simulated time source."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ConfigError(f"cannot advance clock by negative time {seconds!r}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (no-op if in the past)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def day(self) -> int:
        """The zero-based simulated day index (for daily telemetry buckets)."""
        return int(self._now // SECONDS_PER_DAY)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.1f}s, day={self.day()})"
