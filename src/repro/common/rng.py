"""Seeded randomness helpers for workload generation.

All stochastic choices in the reproduction flow through a named
:class:`random.Random` derived from a single experiment seed, so any figure
or table can be regenerated bit-for-bit.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

from repro.common.errors import ConfigError

T = TypeVar("T")


def rng_for(seed: int, *names: object) -> random.Random:
    """Return an independent RNG for a named sub-purpose of an experiment.

    ``rng_for(42, "cluster1", "arrivals")`` is stable across runs and
    independent of draws made by other names, so adding a new consumer of
    randomness never perturbs existing experiments.
    """
    key = ":".join(str(n) for n in (seed,) + names)
    return random.Random(key)


def zipf_weights(n: int, skew: float = 1.1) -> List[float]:
    """Weights of a Zipf-like distribution over ``n`` ranks.

    Shared-dataset popularity in Cosmos is heavy-tailed (Figure 2: a few
    streams have thousands of distinct consumers while most have a handful),
    which a Zipf law models well.
    """
    if n <= 0:
        raise ConfigError("n must be positive")
    weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item according to ``weights`` (need not sum to one)."""
    return rng.choices(list(items), weights=list(weights), k=1)[0]


def bounded_gauss(rng: random.Random, mean: float, stddev: float,
                  minimum: float, maximum: float) -> float:
    """A Gaussian draw clamped into ``[minimum, maximum]``.

    Used for run-to-run variation of job runtimes and input sizes.
    """
    value = rng.gauss(mean, stddev)
    return max(minimum, min(maximum, value))
