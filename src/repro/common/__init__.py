"""Shared utilities: errors, deterministic hashing, simulated clock, RNG."""

from repro.common.clock import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    SECONDS_PER_WEEK,
    SimClock,
)
from repro.common.errors import (
    BindError,
    CatalogError,
    ExecutionError,
    InsightsError,
    ParseError,
    PlanError,
    ReproError,
    SchedulingError,
    SelectionError,
    SignatureError,
    StorageError,
)
from repro.common.hashing import combine_unordered, short_tag, stable_hash
from repro.common.rng import bounded_gauss, rng_for, weighted_choice, zipf_weights

__all__ = [
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_WEEK",
    "SimClock",
    "BindError",
    "CatalogError",
    "ExecutionError",
    "InsightsError",
    "ParseError",
    "PlanError",
    "ReproError",
    "SchedulingError",
    "SelectionError",
    "SignatureError",
    "StorageError",
    "combine_unordered",
    "short_tag",
    "stable_hash",
    "bounded_gauss",
    "rng_for",
    "weighted_choice",
    "zipf_weights",
]
