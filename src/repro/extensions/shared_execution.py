"""Shared execution for concurrent queries (Section 5.4).

"Opportunities for reuse exist for concurrent queries, which does not
require pre-materialization since intermediate results may be directly
pipelined. ... Extending CloudViews to support concurrently executing
queries ... remains a ripe direction for future exploration."

This module explores that direction: a :class:`SharedBatchExecutor` runs a
batch of co-scheduled jobs with a cross-query memo keyed by strict
signatures.  The first job to evaluate a common subexpression computes it
(and, in passing, publishes every shareable interior fragment it
produced); each later job's plan is rewritten so its maximal memoized
subtrees read the in-memory result directly -- no storage round trip, no
materialization lock, no early-sealing delay.

Only reuse-eligible subexpressions participate (the Section-4 UDO rules
apply unchanged), and the memo lives strictly within one batch: nothing
persists, so the correctness story is the same as CloudViews' (identical
strict signatures compute identical results over identical inputs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.engine.engine import CompiledJob, ScopeEngine
from repro.executor.executor import Executor
from repro.plan.expressions import Row
from repro.plan.logical import LogicalPlan, Scan, Spool, ViewScan
from repro.signatures.signature import (
    is_reuse_eligible,
    recurring_signature,
    strict_signature,
)


@dataclass
class _MemoEntry:
    rows: List[Row]
    path: str           # synthetic store key backing the ViewScan
    work: float         # observed subtree work when first computed
    schema: Tuple[str, ...]


@dataclass
class BatchStats:
    """What sharing achieved across one batch."""

    jobs: int = 0
    fragments_published: int = 0
    fragments_shared: int = 0
    work_computed: float = 0.0
    work_avoided: float = 0.0

    @property
    def sharing_fraction(self) -> float:
        total = self.work_computed + self.work_avoided
        return self.work_avoided / total if total else 0.0


@dataclass
class BatchJobResult:
    """One job's outcome within a shared batch."""

    compiled: CompiledJob
    rows: List[Row]
    shared_hits: int = 0


class SharedBatchExecutor:
    """Executes concurrent jobs with cross-query result pipelining."""

    def __init__(self, engine: ScopeEngine, min_share_height: int = 1):
        self.engine = engine
        self.min_share_height = min_share_height
        self._memo: Dict[str, _MemoEntry] = {}
        self._path_counter = itertools.count(1)

    def execute_batch(self, compiled_jobs: Sequence[CompiledJob]
                      ) -> Tuple[List[BatchJobResult], BatchStats]:
        """Run the batch, sharing common subexpression results in memory."""
        stats = BatchStats(jobs=len(compiled_jobs))
        results = []
        for compiled in compiled_jobs:
            results.append(self._run_job(compiled, stats))
        self._memo.clear()
        return results, stats

    # ------------------------------------------------------------------ #

    def _run_job(self, compiled: CompiledJob,
                 stats: BatchStats) -> BatchJobResult:
        salt = self.engine.signature_salt
        rewritten, hits, avoided = self._substitute(compiled.plan, salt)
        stats.fragments_shared += hits
        stats.work_avoided += avoided

        executor = Executor(self.engine.store, self.engine.executor.udos,
                            capture_rows=True)
        result = executor.execute(rewritten)
        work = sum(s.rows_in + s.rows_out for _, s in result.node_stats)
        stats.work_computed += work

        # Publish every shareable fragment this job computed, with its
        # observed subtree work, so later jobs can pipeline from it.
        work_below = _subtree_work(rewritten, result)
        for node, _ in result.node_stats:
            if isinstance(node, (Scan, ViewScan, Spool)):
                continue
            if _height(node) < self.min_share_height:
                continue
            if not is_reuse_eligible(node):
                continue
            signature = strict_signature(node, salt)
            if signature in self._memo:
                continue
            rows = result.node_rows.get(id(node), [])
            path = f"__batch__/{next(self._path_counter)}"
            self.engine.store.put(path, rows)
            self._memo[signature] = _MemoEntry(
                rows=list(rows), path=path,
                work=work_below.get(id(node), 0.0),
                schema=node.schema)
            stats.fragments_published += 1
        return BatchJobResult(compiled=compiled, rows=result.rows,
                              shared_hits=hits)

    def _substitute(self, plan: LogicalPlan, salt: str
                    ) -> Tuple[LogicalPlan, int, float]:
        """Replace maximal memoized subtrees with in-memory ViewScans."""
        if not isinstance(plan, (Scan, ViewScan, Spool)) \
                and _height(plan) >= self.min_share_height \
                and is_reuse_eligible(plan):
            signature = strict_signature(plan, salt)
            entry = self._memo.get(signature)
            if entry is not None:
                scan = ViewScan(
                    signature=signature,
                    view_path=entry.path,
                    columns=entry.schema,
                    rows=len(entry.rows),
                    recurring=recurring_signature(plan, salt),
                )
                return scan, 1, entry.work
        children = plan.children()
        if not children:
            return plan, 0, 0.0
        hits = 0
        avoided = 0.0
        new_children = []
        for child in children:
            new_child, child_hits, child_avoided = self._substitute(
                child, salt)
            new_children.append(new_child)
            hits += child_hits
            avoided += child_avoided
        if any(n is not o for n, o in zip(new_children, children)):
            plan = plan.with_children(new_children)
        return plan, hits, avoided


def _height(plan: LogicalPlan) -> int:
    heights = [_height(child) for child in plan.children()]
    return 1 + max(heights) if heights else 0


def _subtree_work(plan: LogicalPlan, result) -> Dict[int, float]:
    """Observed (rows_in + rows_out) summed per subtree, keyed by id()."""
    stats = {id(node): s for node, s in result.node_stats}
    memo: Dict[int, float] = {}

    def visit(node: LogicalPlan) -> float:
        own = 0.0
        node_stats = stats.get(id(node))
        if node_stats is not None:
            own = node_stats.rows_in + node_stats.rows_out
        total = own + sum(visit(child) for child in node.children())
        memo[id(node)] = total
        return total

    visit(plan)
    return memo
