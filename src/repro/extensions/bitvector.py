"""Bit-vector (Bloom) filter reuse (Section 5.6).

"Bit-vector filters such as bitmap filters, Bloom filters and similar
variants ... help filter rows which do not qualify the join condition
early-on in the query execution plan. ... CloudViews style computation
reuse can be applied for generating bit-vectors during query execution as
well: during query execution, a spool operator could be used for
generating the bit-vector filter from the right child of a hash join and
reuse it in subsequent queries."

The :class:`BloomFilter` is deterministic (double hashing over SHA-256)
so reuse across simulated jobs is reproducible; it guarantees no false
negatives, which is what makes semi-join reduction safe.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.plan.expressions import Expr, Row
from repro.common.errors import ConfigError


class BloomFilter:
    """Classic Bloom filter with double hashing."""

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01):
        if expected_items <= 0:
            raise ConfigError("expected_items must be positive")
        if not 0.0 < false_positive_rate < 1.0:
            raise ConfigError("false_positive_rate must be in (0, 1)")
        ln2 = math.log(2.0)
        self.size = max(8, int(-expected_items
                               * math.log(false_positive_rate) / (ln2 * ln2)))
        self.hash_count = max(1, round((self.size / expected_items) * ln2))
        self._bits = bytearray((self.size + 7) // 8)
        self.items_added = 0

    # ------------------------------------------------------------------ #

    def add(self, item: object) -> None:
        for position in self._positions(item):
            self._bits[position // 8] |= 1 << (position % 8)
        self.items_added += 1

    def __contains__(self, item: object) -> bool:
        return all(self._bits[p // 8] & (1 << (p % 8))
                   for p in self._positions(item))

    def _positions(self, item: object) -> Iterable[int]:
        digest = hashlib.sha256(repr(item).encode()).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        for i in range(self.hash_count):
            yield (h1 + i * h2) % self.size

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    def fill_ratio(self) -> float:
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.size


def build_join_filter(build_rows: Iterable[Row],
                      key_exprs: Tuple[Expr, ...],
                      false_positive_rate: float = 0.01) -> BloomFilter:
    """Build the semi-join filter from a hash join's build side."""
    rows = list(build_rows)
    bloom = BloomFilter(max(1, len(rows)), false_positive_rate)
    for row in rows:
        bloom.add(tuple(expr.evaluate(row) for expr in key_exprs))
    return bloom


def semi_join_reduce(probe_rows: Iterable[Row],
                     key_exprs: Tuple[Expr, ...],
                     bloom: BloomFilter) -> List[Row]:
    """Drop probe rows that cannot possibly join (no false negatives)."""
    return [row for row in probe_rows
            if tuple(expr.evaluate(row) for expr in key_exprs) in bloom]


@dataclass
class BitVectorCatalog:
    """Per-signature store of reusable join filters.

    Keyed by the *strict signature of the build-side subexpression*, so a
    filter goes stale exactly when the underlying view would (input GUID
    changes roll the signature).
    """

    filters: Dict[str, BloomFilter] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def publish(self, build_signature: str, bloom: BloomFilter) -> None:
        self.filters[build_signature] = bloom

    def lookup(self, build_signature: str) -> Optional[BloomFilter]:
        bloom = self.filters.get(build_signature)
        if bloom is None:
            self.misses += 1
        else:
            self.hits += 1
        return bloom

    def lookup_quiet(self, build_signature: str) -> Optional[BloomFilter]:
        """Existence probe that does not perturb hit/miss accounting."""
        return self.filters.get(build_signature)

    def invalidate_all(self) -> None:
        self.filters.clear()


# --------------------------------------------------------------------- #
# CloudViews-style generation and reuse of join filters


def publish_filters_from_run(run, catalog: "BitVectorCatalog", store,
                             salt: str = "",
                             false_positive_rate: float = 0.01) -> int:
    """Build and publish Bloom filters from a job's executed hash joins.

    "During query execution, a spool operator could be used for generating
    the bit-vector filter from the right child of a hash join and reuse it
    in subsequent queries" (Section 5.6).  We key each filter by the
    *strict signature of the build-side subexpression*, so the filter goes
    stale exactly when its inputs change.  ``store`` is the engine's data
    store the run executed against.  Returns the number published.
    """
    from repro.executor.executor import Executor
    from repro.plan.logical import Join
    from repro.signatures.signature import strict_signature

    executor = Executor(store)
    published = 0
    for node, _ in run.result.node_stats:
        if not isinstance(node, Join) or not node.right_keys:
            continue
        build_signature = strict_signature(node.right, salt)
        if catalog.lookup_quiet(build_signature) is not None:
            continue
        build_rows = executor.execute(node.right).rows
        if not build_rows:
            continue
        bloom = build_join_filter(build_rows, node.right_keys,
                                  false_positive_rate)
        catalog.publish(build_signature, bloom)
        published += 1
    return published


def plan_semi_join_reductions(plan, catalog: "BitVectorCatalog",
                              store, salt: str = "") -> List[dict]:
    """Estimate savings from reusing published filters in ``plan``.

    For every equi-join whose build side has a published filter, measure
    how many probe-side rows the filter would eliminate before the join.
    Returns one record per applicable join.
    """
    from repro.executor.executor import Executor
    from repro.plan.logical import Join
    from repro.signatures.signature import strict_signature

    executor = Executor(store)
    reductions = []
    for node in plan.walk():
        if not isinstance(node, Join) or not node.left_keys:
            continue
        build_signature = strict_signature(node.right, salt)
        bloom = catalog.lookup(build_signature)
        if bloom is None:
            continue
        probe_rows = executor.execute(node.left).rows
        kept = semi_join_reduce(probe_rows, node.left_keys, bloom)
        reductions.append({
            "build_signature": build_signature,
            "probe_rows": len(probe_rows),
            "rows_after_filter": len(kept),
            "rows_eliminated": len(probe_rows) - len(kept),
            "filter_bytes": bloom.size_bytes,
        })
    return reductions
