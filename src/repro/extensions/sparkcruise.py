"""SparkCruise-style integration surface (Section 5.5).

SparkCruise brought CloudViews' ideas to Spark *without modifying the
engine*: "we use the optimizer extensions API in Spark to add two
additional rules to the query optimizer -- first for online
materialization, and second for computation reuse.  We also implemented an
event listener for Spark SQL that can log query plans and compute
signature annotations".  Users drive their own feedback loop and can
inspect a *Workload Insights Notebook* before enabling the feature.

This module mirrors that deployment shape over our engine:

* :class:`QueryEventListener` -- passive plan/signature logging attached
  to an engine, building a workload repository from the outside;
* :func:`extension_rules` -- the two optimizer rules, packaged as plain
  callables the way Spark extensions are;
* :func:`workload_insights_report` -- the notebook's aggregate statistics
  and redundancy summary that "can convince the users to enable the
  computation reuse feature on their workloads".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.runner import record_job_into
from repro.engine.engine import JobRun, ScopeEngine
from repro.optimizer.context import OptimizerContext
from repro.optimizer.view_buildout import insert_spools
from repro.optimizer.view_matching import match_views
from repro.plan.logical import LogicalPlan
from repro.selection.candidates import build_candidates
from repro.selection.greedy import greedy_select
from repro.selection.policies import SelectionPolicy, SelectionResult
from repro.workload.analysis import pipeline_summary
from repro.workload.repository import WorkloadRepository


@dataclass
class QueryEventListener:
    """Logs executed jobs into an application-level workload repository.

    Attach it to user code around :meth:`ScopeEngine.run_sql`; nothing in
    the engine needs to change -- the SparkCruise deployment constraint.
    """

    engine: ScopeEngine
    repository: WorkloadRepository = field(default_factory=WorkloadRepository)
    _full_work: Dict[str, float] = field(default_factory=dict)

    def on_query_end(self, run: JobRun, now: float = 0.0,
                     application_id: str = "spark-app") -> None:
        record_job_into(
            self.repository, run, now,
            virtual_cluster=application_id,
            template_id=run.compiled.sql.strip()[:64],
            pipeline_id=application_id,
            salt=self.engine.signature_salt,
            full_work=self._full_work,
        )


def extension_rules(ctx: OptimizerContext
                    ) -> Tuple[Callable[[LogicalPlan, float], LogicalPlan],
                               Callable[[LogicalPlan, float], LogicalPlan]]:
    """The two injected optimizer rules: reuse, then online materialize.

    Returned as plain plan-to-plan callables so they can be chained into
    any optimizer pipeline, mirroring Spark's ``injectOptimizerRule``.
    """

    def computation_reuse_rule(plan: LogicalPlan, now: float) -> LogicalPlan:
        outcome = match_views(plan, ctx, now)
        # The rewritten plan is handed straight to the caller's pipeline;
        # the compile-time pins the claims took are released here and
        # execution re-pins around the scan.
        outcome.release_claims(ctx.view_store)
        return outcome.plan

    def online_materialization_rule(plan: LogicalPlan, now: float) -> LogicalPlan:
        return insert_spools(plan, ctx, now).plan

    return computation_reuse_rule, online_materialization_rule


def run_workload_analysis(listener: QueryEventListener,
                          policy: Optional[SelectionPolicy] = None
                          ) -> SelectionResult:
    """The user-scheduled analysis + selection job.

    "We gave the control of the workflow to the end users or the data
    engineers.  The users can schedule the workload analysis and view
    selection job periodically."
    """
    policy = policy or SelectionPolicy()
    candidates = build_candidates(listener.repository)
    result = greedy_select(candidates, policy)
    listener.engine.insights.publish(result.annotations())
    return result


def workload_insights_report(repository: WorkloadRepository) -> Dict[str, object]:
    """The Workload Insights Notebook's headline numbers.

    Redundant work is attributed only to *maximal* candidate occurrences
    (no selected ancestor in the same job), so nested common
    subexpressions are not double-counted.
    """
    from repro.selection.bigsubs import _attribute_utility, _records_by_job

    summary = pipeline_summary(repository)
    candidates = build_candidates(repository)
    total_work = sum(r.work for r in repository.subexpressions
                     if r.parent_node_id is None)
    candidate_set = {c.recurring for c in candidates}
    utility, occurrences, epochs = _attribute_utility(
        _records_by_job(repository), candidate_set, candidate_set)
    redundant_work = 0.0
    for recurring in candidate_set:
        count = occurrences.get(recurring, 0)
        instances = len(epochs.get(recurring, ()))
        if count > instances:
            redundant_work += (utility.get(recurring, 0.0)
                               * (count - instances) / count)
    redundant_work = min(redundant_work, total_work)
    return {
        "jobs": summary["jobs"],
        "subexpressions": summary["subexpressions"],
        "repeated_subexpression_fraction": repository.repeated_fraction(),
        "average_repeat_frequency": repository.average_repeat_frequency(),
        "reuse_candidates": len(candidates),
        "estimated_redundant_work": redundant_work,
        "estimated_total_work": total_work,
        "estimated_savings_fraction": (
            redundant_work / total_work if total_work else 0.0),
    }


def format_insights(report: Dict[str, object]) -> str:
    """Human-readable rendering of the insights report."""
    lines = [
        "Workload Insights",
        "=================",
        f"jobs analyzed:               {report['jobs']}",
        f"query subexpressions:        {report['subexpressions']}",
        f"repeated subexpressions:     "
        f"{report['repeated_subexpression_fraction']:.1%}",
        f"average repeat frequency:    "
        f"{report['average_repeat_frequency']:.1f}",
        f"reuse candidates:            {report['reuse_candidates']}",
        f"estimated redundant work:    "
        f"{report['estimated_redundant_work']:.0f} units "
        f"({report['estimated_savings_fraction']:.1%} of workload)",
    ]
    return "\n".join(lines)
