"""Section-5 extensions: generalized reuse, concurrency, checkpointing,
sampling, bit-vector filters, and the SparkCruise-style surface."""

from repro.extensions.bitvector import (
    BitVectorCatalog,
    BloomFilter,
    build_join_filter,
    plan_semi_join_reductions,
    publish_filters_from_run,
    semi_join_reduce,
)
from repro.extensions.checkpoint import (
    DEFAULT_RISKY_OPERATORS,
    CheckpointManager,
    FailureModel,
)
from repro.extensions.concurrent import (
    ConcurrentJoin,
    concurrency_histogram,
    concurrent_joins,
    estimate_pipelined_sharing,
)
from repro.extensions.generalized import (
    ContainmentChecker,
    JoinSetOpportunity,
    generalized_match,
    join_set_opportunities,
)
from repro.extensions.pipeline_opt import (
    PhysicalDesignSuggestion,
    suggest_physical_designs,
)
from repro.extensions.sampling import SampledView, SampledViewCatalog
from repro.extensions.shared_execution import (
    BatchJobResult,
    BatchStats,
    SharedBatchExecutor,
)
from repro.extensions.view_stats import (
    ColumnStatistics,
    ViewStatistics,
    compute_view_statistics,
    render_statistics,
)
from repro.extensions.sparkcruise import (
    QueryEventListener,
    extension_rules,
    format_insights,
    run_workload_analysis,
    workload_insights_report,
)

__all__ = [
    "BitVectorCatalog", "BloomFilter", "build_join_filter",
    "semi_join_reduce", "DEFAULT_RISKY_OPERATORS", "CheckpointManager",
    "FailureModel", "ConcurrentJoin", "concurrency_histogram",
    "concurrent_joins", "estimate_pipelined_sharing", "ContainmentChecker",
    "JoinSetOpportunity", "generalized_match", "join_set_opportunities",
    "plan_semi_join_reductions", "publish_filters_from_run",
    "PhysicalDesignSuggestion", "suggest_physical_designs",
    "BatchJobResult", "BatchStats", "SharedBatchExecutor",
    "ColumnStatistics", "ViewStatistics", "compute_view_statistics",
    "render_statistics",
    "SampledView", "SampledViewCatalog", "QueryEventListener",
    "extension_rules", "format_insights", "run_workload_analysis",
    "workload_insights_report",
]
