"""Sampled views for approximate query execution (Section 5.6).

"CloudViews style computation reuse can be applied for reducing the cost
of approximate query execution even further.  This can be achieved by
sampling the views created by CloudViews.  Sampled views will particularly
help reduce query latency and cost in queries where substantial work
happens after the sampler.  Likewise, we could create statistics on the
common subexpressions."

A sampled view is derived from an existing materialized view: a
deterministic Bernoulli sample of its rows, stored under a sibling path.
Aggregates over the sample are scaled back by known estimators (COUNT and
SUM scale by 1/rate; AVG/MIN/MAX are used as-is).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, StorageError
from repro.plan.expressions import Row
from repro.storage.store import DataStore
from repro.storage.views import ViewStore


@dataclass(frozen=True)
class SampledView:
    """Metadata for one sampled derivative of a materialized view."""

    base_signature: str
    path: str
    rate: float
    rows: int
    base_rows: int

    @property
    def scale(self) -> float:
        """Multiplier for count/sum style aggregates over the sample."""
        if self.rows == 0:
            return 0.0
        return self.base_rows / self.rows


class SampledViewCatalog:
    """Creates and serves sampled views on top of the view store."""

    def __init__(self, store: DataStore, views: ViewStore):
        self.store = store
        self.views = views
        self._samples: Dict[Tuple[str, float], SampledView] = {}

    def create(self, signature: str, rate: float, now: float,
               seed: int = 0) -> SampledView:
        """Materialize a Bernoulli sample of an available view."""
        if not 0.0 < rate <= 1.0:
            raise ConfigError(f"sample rate {rate!r} not in (0, 1]")
        view = self.views.lookup(signature, now)
        if view is None:
            raise StorageError(
                f"view {signature[:8]} is not available for sampling")
        rows = self.store.get(view.path)
        sampled = [row for index, row in enumerate(rows)
                   if _keep(signature, seed, index, rate)]
        path = f"{view.path}/sample-{rate:g}-{seed}"
        self.store.put(path, sampled)
        record = SampledView(
            base_signature=signature,
            path=path,
            rate=rate,
            rows=len(sampled),
            base_rows=len(rows),
        )
        self._samples[(signature, rate)] = record
        return record

    def lookup(self, signature: str, rate: float) -> Optional[SampledView]:
        return self._samples.get((signature, rate))

    def rows(self, sample: SampledView) -> List[Row]:
        return self.store.get(sample.path)

    # ------------------------------------------------------------------ #
    # approximate aggregates

    def approximate_count(self, sample: SampledView) -> float:
        return sample.rows * sample.scale

    def approximate_sum(self, sample: SampledView, column: str) -> float:
        total = sum(row.get(column) or 0 for row in self.rows(sample))
        return total * sample.scale

    def approximate_avg(self, sample: SampledView, column: str) -> Optional[float]:
        values = [row[column] for row in self.rows(sample)
                  if row.get(column) is not None]
        if not values:
            return None
        return sum(values) / len(values)


def _keep(signature: str, seed: int, index: int, rate: float) -> bool:
    """Deterministic Bernoulli draw for row ``index``."""
    digest = hashlib.sha256(
        f"{signature}:{seed}:{index}".encode()).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return draw < rate
