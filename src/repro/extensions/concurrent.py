"""Concurrent-query reuse analysis (Figure 9) and pipelined-sharing sketch.

Section 5.4: "opportunities for reuse exist for concurrent queries, which
does not require pre-materialization since intermediate results may be
directly pipelined. ... we observed thousands of such opportunities per
day".  Figure 9 histograms, for a single day, how many times each join
subexpression executed concurrently, broken down by physical join kind
(merge / loop / hash).

Two jobs execute a join *concurrently* when they run the identical join
instance (same strict signature) within overlapping execution windows; we
approximate the window by a configurable overlap horizon around each
submission, matching how the paper counts "join instances that are found
to be concurrent hundreds to thousands of times".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.workload.repository import SubexpressionRecord, WorkloadRepository


@dataclass(frozen=True)
class ConcurrentJoin:
    """One join instance with its peak daily concurrency."""

    strict: str
    algorithm: str           # hash | merge | loop
    concurrency: int         # co-executing instances within the horizon
    day: int


def concurrent_joins(repository: WorkloadRepository,
                     overlap_horizon_seconds: float = 300.0
                     ) -> List[ConcurrentJoin]:
    """Concurrency count per (join strict signature, day)."""
    by_join: Dict[Tuple[str, int], List[SubexpressionRecord]] = defaultdict(list)
    for record in repository.subexpressions:
        if record.operator != "Join":
            continue
        day = int(record.submit_time // 86400.0)
        by_join[(record.strict, day)].append(record)

    result: List[ConcurrentJoin] = []
    for (strict, day), records in by_join.items():
        times = sorted(r.submit_time for r in records)
        peak = _peak_concurrency(times, overlap_horizon_seconds)
        if peak < 2:
            continue
        algorithm = records[0].detail or "hash"
        result.append(ConcurrentJoin(strict, algorithm, peak, day))
    result.sort(key=lambda c: (-c.concurrency, c.strict))
    return result


def _peak_concurrency(times: Sequence[float], horizon: float) -> int:
    """Maximum number of instances within any sliding horizon window."""
    peak = 0
    start = 0
    for end, t in enumerate(times):
        while times[start] < t - horizon:
            start += 1
        peak = max(peak, end - start + 1)
    return peak


def concurrency_histogram(joins: Sequence[ConcurrentJoin],
                          bucket_size: int = 200
                          ) -> Dict[str, Dict[int, int]]:
    """Figure 9's histogram: frequency per concurrency bucket per kind.

    Bucket key is the bucket's lower edge (0, 200, 400, ...).
    """
    histogram: Dict[str, Dict[int, int]] = {
        "hash": defaultdict(int), "merge": defaultdict(int),
        "loop": defaultdict(int)}
    for join in joins:
        bucket = (join.concurrency // bucket_size) * bucket_size
        histogram.setdefault(join.algorithm, defaultdict(int))[bucket] += 1
    return {kind: dict(buckets) for kind, buckets in histogram.items()}


@dataclass
class PipelinedSharingPlan:
    """Sketch of direct pipelining between concurrent identical joins.

    Rather than materializing, the first executing instance streams its
    join output to the co-scheduled consumers.  We report the estimated
    processing time avoided: each concurrent duplicate beyond the first
    would skip the join's subtree work.
    """

    shared_instances: int = 0
    duplicates_avoided: int = 0
    work_avoided: float = 0.0


def estimate_pipelined_sharing(repository: WorkloadRepository,
                               overlap_horizon_seconds: float = 300.0
                               ) -> PipelinedSharingPlan:
    """Aggregate upper-bound benefit of concurrent-join pipelining."""
    plan = PipelinedSharingPlan()
    by_join: Dict[Tuple[str, int], List[SubexpressionRecord]] = defaultdict(list)
    for record in repository.subexpressions:
        if record.operator == "Join":
            day = int(record.submit_time // 86400.0)
            by_join[(record.strict, day)].append(record)
    for records in by_join.values():
        times = sorted(r.submit_time for r in records)
        peak = _peak_concurrency(times, overlap_horizon_seconds)
        if peak < 2:
            continue
        plan.shared_instances += 1
        duplicates = peak - 1
        plan.duplicates_avoided += duplicates
        average_work = sum(r.work for r in records) / len(records)
        plan.work_avoided += duplicates * average_work
    return plan
