"""Pipeline optimization: physical designs for downstream consumers.

Section 5.6: "the output of each producer query in the pipeline is
typically consumed by multiple downstream queries.  Unfortunately, the
producers are not aware of the right data representations, or physical
designs, required by their consumers. ... This can be done by producing
the right physical design as part of query execution of producer job."

This prototype analyzes a set of compiled consumer plans and recommends,
per dataset, the physical design (partition/sort key) that would serve the
most downstream work: the column most frequently used as that dataset's
join key, weighted by how often each consumer recurs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.plan.expressions import ColumnRef
from repro.plan.logical import Join, LogicalPlan, Scan


@dataclass(frozen=True)
class PhysicalDesignSuggestion:
    """Recommended producer-side layout for one shared dataset."""

    dataset: str
    partition_key: str
    consumers_served: int       # joins that would avoid a re-shuffle
    total_consumers: int        # joins over the dataset in the workload

    @property
    def coverage(self) -> float:
        if self.total_consumers == 0:
            return 0.0
        return self.consumers_served / self.total_consumers


def _scan_datasets(plan: LogicalPlan) -> Dict[str, List[str]]:
    """Dataset -> column names for every scan below ``plan``."""
    return {node.dataset: list(node.columns)
            for node in plan.walk() if isinstance(node, Scan)}


def _key_columns(exprs, side_plan: LogicalPlan) -> List[Tuple[str, str]]:
    """(dataset, column) pairs a join-side key expression resolves to."""
    datasets = _scan_datasets(side_plan)
    out: List[Tuple[str, str]] = []
    for expr in exprs:
        for ref in expr.walk():
            if not isinstance(ref, ColumnRef):
                continue
            # A qualified key like ``Users.UserId`` names the original
            # column after the binder's rename; strip the qualifier.
            column = ref.name.split(".")[-1]
            for dataset, columns in datasets.items():
                if column in columns:
                    out.append((dataset, column))
    return out


def suggest_physical_designs(plans: Iterable[LogicalPlan],
                             weights: Optional[Iterable[float]] = None
                             ) -> List[PhysicalDesignSuggestion]:
    """Recommend partition/sort keys for shared datasets.

    ``weights`` (optional, aligned with ``plans``) lets callers weight each
    consumer by its recurrence frequency.
    """
    plans = list(plans)
    weight_list = list(weights) if weights is not None else [1.0] * len(plans)
    usage: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    totals: Dict[str, float] = defaultdict(float)
    for plan, weight in zip(plans, weight_list):
        for node in plan.walk():
            if not isinstance(node, Join):
                continue
            for exprs, side in ((node.left_keys, node.left),
                                (node.right_keys, node.right)):
                for dataset, column in _key_columns(exprs, side):
                    usage[dataset][column] += weight
                    totals[dataset] += weight
    suggestions = []
    for dataset in sorted(usage):
        best_column, served = max(usage[dataset].items(),
                                  key=lambda item: (item[1], item[0]))
        suggestions.append(PhysicalDesignSuggestion(
            dataset=dataset,
            partition_key=best_column,
            consumers_served=int(served),
            total_consumers=int(totals[dataset]),
        ))
    suggestions.sort(key=lambda s: (-s.consumers_served, s.dataset))
    return suggestions
