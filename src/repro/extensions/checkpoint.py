"""Checkpoint/restart via CloudViews materialization (Section 5.6).

"Computation reuse can be applied for automatic checkpoint and restart in
large analytical queries.  The idea is to select intermediate
subexpressions in a job's query plan to materialize and reuse them in case
the job is restarted after a failure. ... During the compilation phase, we
use query history to find which operators are more likely to fail and add
a checkpoint just before them.  Then, during the resubmission, CloudViews
can load the last available checkpoint thereby avoiding re-computation."

The implementation deliberately reuses the ordinary CloudViews machinery:
a checkpoint *is* a spooled view, and a resubmitted job finds it through
normal strict-signature view matching -- no new recovery path exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.engine import CompiledJob, JobRun, ScopeEngine
from repro.optimizer.context import Annotation
from repro.plan.logical import LogicalPlan, Scan, Spool, ViewScan
from repro.signatures.signature import (
    is_reuse_eligible,
    recurring_signature,
    signature_tag,
)

#: Operators whose input we checkpoint by default: the expensive,
#: shuffle-heavy spots where production failures concentrate.
DEFAULT_RISKY_OPERATORS: Tuple[str, ...] = ("GroupBy", "Join")


@dataclass
class FailureModel:
    """Per-operator failure likelihoods learned from query history."""

    risk_by_operator: Dict[str, float] = field(default_factory=dict)
    threshold: float = 0.05

    def is_risky(self, operator: str) -> bool:
        if not self.risk_by_operator:
            return operator in DEFAULT_RISKY_OPERATORS
        return self.risk_by_operator.get(operator, 0.0) >= self.threshold

    def record_failure(self, operator: str, weight: float = 0.1) -> None:
        current = self.risk_by_operator.get(operator, 0.0)
        self.risk_by_operator[operator] = min(1.0, current + weight)


class CheckpointManager:
    """Compile jobs with checkpoints; recover resubmissions through reuse."""

    def __init__(self, engine: ScopeEngine,
                 failure_model: Optional[FailureModel] = None,
                 max_checkpoints_per_job: int = 2):
        self.engine = engine
        self.failure_model = failure_model or FailureModel()
        self.max_checkpoints_per_job = max_checkpoints_per_job

    # ------------------------------------------------------------------ #

    def checkpoint_candidates(self, plan: LogicalPlan) -> List[LogicalPlan]:
        """Subexpressions feeding risky operators, largest first."""
        candidates: List[Tuple[int, LogicalPlan]] = []

        def visit(node: LogicalPlan, depth: int) -> int:
            heights = [visit(child, depth + 1) for child in node.children()]
            height = 1 + max(heights) if heights else 0
            if self.failure_model.is_risky(node.op_label):
                for child in node.children():
                    if isinstance(child, (Scan, ViewScan, Spool)):
                        continue  # inputs are already durable
                    if not is_reuse_eligible(child):
                        continue
                    candidates.append((height, child))
            return height

        visit(plan, 0)
        candidates.sort(key=lambda item: -item[0])
        seen: Set[int] = set()
        unique: List[LogicalPlan] = []
        for _, child in candidates:
            if id(child) not in seen:
                seen.add(id(child))
                unique.append(child)
        return unique[:self.max_checkpoints_per_job]

    def compile_with_checkpoints(self, sql: str,
                                 params: Optional[Dict[str, object]] = None,
                                 virtual_cluster: str = "default",
                                 now: float = 0.0) -> CompiledJob:
        """Compile so that checkpoint subexpressions spool to storage.

        Publishes temporary annotations for the checkpoint positions and
        lets the ordinary buildout phase insert the spools; pre-existing
        annotations are restored afterwards.
        """
        probe = self.engine.compile(sql, params, virtual_cluster,
                                    reuse_enabled=True, now=now)
        salt = self.engine.signature_salt
        annotations = []
        for node in self.checkpoint_candidates(probe.optimized.logical):
            recurring = recurring_signature(node, salt)
            annotations.append(Annotation(
                recurring_signature=recurring,
                tag=signature_tag(recurring),
                virtual_cluster=virtual_cluster,
            ))
        # The engine may talk to insights directly or through an
        # InsightsClient; the saved-annotation snapshot needs the service.
        insights = self.engine.insights
        service = getattr(insights, "service", insights)
        saved = list(service._by_recurring.values())
        self.engine.insights.publish(annotations)
        try:
            compiled = self.engine.compile(sql, params, virtual_cluster,
                                           reuse_enabled=True, now=now)
        finally:
            self.engine.insights.publish(saved)
        return compiled

    def run_with_failure(self, compiled: CompiledJob, now: float = 0.0,
                         fail_after_checkpoint: bool = True
                         ) -> Tuple[Optional[JobRun], List[str]]:
        """Simulate a job that fails after its checkpoints are sealed.

        Executes the job, seals its checkpoints (early sealing happens
        before job completion in production), then reports the failure:
        the job's own result is discarded but the checkpoints survive.
        Returns (None, sealed signatures).
        """
        run = self.engine.execute(compiled, now=now, seal_views=True)
        if not fail_after_checkpoint:
            return run, list(run.sealed_views)
        # The job "failed towards the end": its output is lost, but the
        # early-sealed checkpoints remain in the view store.
        return None, list(run.sealed_views)

    def resubmit(self, sql: str,
                 params: Optional[Dict[str, object]] = None,
                 virtual_cluster: str = "default",
                 now: float = 0.0) -> JobRun:
        """Re-run the failed job; view matching loads the checkpoints."""
        compiled = self.engine.compile(sql, params, virtual_cluster,
                                       reuse_enabled=True, now=now)
        return self.engine.execute(compiled, now=now)
