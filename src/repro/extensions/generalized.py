"""Generalized reuse: join-set analysis (Figure 8) and containment.

Section 5.3: CloudViews' production path matches only syntactically
identical subexpressions.  Two generalizations are sketched by the paper
and prototyped here:

* **Join-set analysis** (:func:`join_set_opportunities`): "subexpressions
  that join the same sets of inputs ... could still have different
  projections, selections, or group by operations, which could be merged
  to create more general materialized views" -- Figure 8 plots the
  frequency of each such join-set.
* **Containment checking** (:class:`ContainmentChecker`): the paper's own
  example -- ``SELECT * FROM Sales WHERE CustomerId > 5`` can answer
  ``... WHERE CustomerId > 6`` with a compensating filter.  General
  containment is NP-complete; this prototype handles the tractable
  fragment of conjunctive range/equality predicates over the same
  relation, which already covers the recurring-filter patterns of cooked
  workloads.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workload.repository import WorkloadRepository


# --------------------------------------------------------------------- #
# Figure 8: same-input join sets


@dataclass(frozen=True)
class JoinSetOpportunity:
    """All subexpressions joining one particular set of inputs."""

    inputs: Tuple[str, ...]
    occurrences: int          # total instances in the window
    distinct_variants: int    # syntactically distinct subexpressions

    @property
    def generalization_gain(self) -> int:
        """Extra reuse a single generalized view could unlock: the
        occurrences beyond what each exact variant already captures."""
        return self.occurrences - self.distinct_variants


def join_set_opportunities(repository: WorkloadRepository,
                           min_inputs: int = 2) -> List[JoinSetOpportunity]:
    """Group Join subexpressions by their scanned input sets (Figure 8)."""
    occurrences: Dict[Tuple[str, ...], int] = defaultdict(int)
    variants: Dict[Tuple[str, ...], set] = defaultdict(set)
    for record in repository.subexpressions:
        if record.operator != "Join":
            continue
        if len(record.input_datasets) < min_inputs:
            continue
        occurrences[record.input_datasets] += 1
        variants[record.input_datasets].add(record.recurring)
    result = [JoinSetOpportunity(inputs, occurrences[inputs],
                                 len(variants[inputs]))
              for inputs in occurrences]
    result.sort(key=lambda o: (-o.occurrences, o.inputs))
    return result


# --------------------------------------------------------------------- #
# containment (implementation lives in the optimizer layer; re-exported
# here as part of the Section-5.3 extension surface)

from repro.optimizer.containment import (  # noqa: E402
    ContainmentChecker,
    generalized_match,
)
