"""Statistics on common subexpressions (Section 5.6, Sampling).

"Likewise, we could create statistics on the common subexpressions to
provide insights to data scientists and analysts."  Materialized views
are an ideal place to hang column statistics: they are already computed,
already small, and already keyed by signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import StorageError
from repro.engine.engine import ScopeEngine


@dataclass(frozen=True)
class ColumnStatistics:
    """Per-column summary over a materialized view."""

    column: str
    rows: int
    nulls: int
    distinct: int
    minimum: Optional[object] = None
    maximum: Optional[object] = None
    mean: Optional[float] = None

    @property
    def null_fraction(self) -> float:
        return self.nulls / self.rows if self.rows else 0.0


@dataclass(frozen=True)
class ViewStatistics:
    """Full statistics bundle for one view."""

    signature: str
    rows: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)


def compute_view_statistics(engine: ScopeEngine, signature: str,
                            now: float = 0.0) -> ViewStatistics:
    """Compute column statistics over an available materialized view."""
    view = engine.view_store.lookup(signature, now)
    if view is None:
        raise StorageError(
            f"view {signature[:8]} is not available for statistics")
    rows = engine.store.get(view.path)
    columns: Dict[str, ColumnStatistics] = {}
    for column in view.schema:
        values = [row.get(column) for row in rows]
        present = [v for v in values if v is not None]
        numeric = [v for v in present
                   if isinstance(v, (int, float)) and not isinstance(v, bool)]
        columns[column] = ColumnStatistics(
            column=column,
            rows=len(values),
            nulls=len(values) - len(present),
            distinct=len({repr(v) for v in present}),
            minimum=min(present) if present and _orderable(present) else None,
            maximum=max(present) if present and _orderable(present) else None,
            mean=(sum(numeric) / len(numeric)) if numeric else None,
        )
    return ViewStatistics(signature=signature, rows=len(rows),
                          columns=columns)


def _orderable(values: List[object]) -> bool:
    kinds = {type(v) for v in values}
    if len(kinds) > 1:
        # Mixed int/float is fine; anything else is not safely orderable.
        return kinds <= {int, float}
    return True


def render_statistics(stats: ViewStatistics) -> str:
    """Analyst-facing rendering of a view's statistics."""
    lines = [f"view {stats.signature[:12]}…  ({stats.rows} rows)"]
    lines.append(f"{'column':<20} {'nulls':>6} {'distinct':>9} "
                 f"{'min':>12} {'max':>12} {'mean':>10}")
    for column in stats.columns.values():
        mean = f"{column.mean:.2f}" if column.mean is not None else "-"
        lines.append(
            f"{column.column:<20} {column.nulls:>6} {column.distinct:>9} "
            f"{str(column.minimum):>12.12} {str(column.maximum):>12.12} "
            f"{mean:>10}")
    return "\n".join(lines)
