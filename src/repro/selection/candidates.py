"""Reuse-candidate construction from the workload repository.

A candidate is one distinct *recurring* signature with its aggregated
runtime features.  The considerations mirror Section 2.3: "storage cost for
materialization, processing time saved when reused, saving opportunities
per customer, and the presence of concurrent queries that may not benefit
from materialization-based reuse."
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.workload.repository import SubexpressionRecord, WorkloadRepository

#: Work-unit cost of reading back one materialized row at reuse time.
READ_COST_PER_ROW = 1.0
#: Work-unit cost of writing one row during online materialization.
WRITE_COST_PER_ROW = 2.0


@dataclass(frozen=True)
class ReuseCandidate:
    """One distinct recurring subexpression, scored for selection.

    A recurring subexpression occurs across multiple *input epochs*: each
    distinct strict signature (same logical template over one concrete set
    of input GUIDs) is one epoch.  Reuse is only possible **within** an
    epoch -- a view built over Monday's streams is useless on Tuesday after
    the cooking pipelines bulk-update the inputs.  Selection therefore
    scores on ``frequency - instances`` (the occurrences that can actually
    read a previously materialized sibling), not raw frequency.
    """

    recurring: str
    tag: str
    operator: str
    height: int
    frequency: int                      # total occurrences in the window
    instances: int                      # distinct strict signatures (epochs)
    distinct_jobs: int
    avg_rows: int
    avg_bytes: int                      # storage cost when materialized
    avg_work: float                     # compute below and incl. the node
    virtual_clusters: FrozenSet[str]
    #: Submission times grouped per epoch, for schedule-aware filtering.
    instance_times: Tuple[Tuple[float, ...], ...] = ()
    per_vc_frequency: Tuple[Tuple[str, int], ...] = ()

    @property
    def reusable_occurrences(self) -> int:
        """Occurrences that can consume a view built within their epoch."""
        return max(0, self.frequency - self.instances)

    @property
    def benefit(self) -> float:
        """Net processing saved across the window.

        Each epoch's first occurrence pays the materialization write and
        saves nothing; every later occurrence in the epoch saves the
        subtree work minus the view read-back.
        """
        saved = self.reusable_occurrences * (
            self.avg_work - self.avg_rows * READ_COST_PER_ROW)
        return saved - self.instances * self.avg_rows * WRITE_COST_PER_ROW

    @property
    def density(self) -> float:
        """Benefit per byte of storage (greedy packing key)."""
        return self.benefit / max(1, self.avg_bytes)

    def frequency_in(self, virtual_cluster: str) -> int:
        for vc, count in self.per_vc_frequency:
            if vc == virtual_cluster:
                return count
        return 0


def build_candidates(repository: WorkloadRepository,
                     min_height: int = 1,
                     min_reusable: int = 1) -> List[ReuseCandidate]:
    """Aggregate the subexpression table into scored candidates.

    ``min_height`` excludes bare scans (nothing to save re-reading a raw
    input); ``min_reusable`` excludes subexpressions that never co-occur
    within one input epoch (e.g. a daily job's private subplan, which
    repeats across days but can never reuse yesterday's view).
    """
    groups: Dict[str, List[SubexpressionRecord]] = defaultdict(list)
    for record in repository.subexpressions:
        if record.eligible and record.height >= min_height:
            groups[record.recurring].append(record)

    candidates: List[ReuseCandidate] = []
    for recurring, records in groups.items():
        epochs: Dict[str, List[float]] = defaultdict(list)
        for record in records:
            epochs[record.strict].append(record.submit_time)
        count = len(records)
        instances = len(epochs)
        if count - instances < min_reusable:
            continue
        vcs: Dict[str, int] = defaultdict(int)
        for record in records:
            vcs[record.virtual_cluster] += 1
        candidates.append(ReuseCandidate(
            recurring=recurring,
            tag=records[0].tag,
            operator=records[0].operator,
            height=records[0].height,
            frequency=count,
            instances=instances,
            distinct_jobs=len({r.job_id for r in records}),
            avg_rows=int(sum(r.rows for r in records) / count),
            avg_bytes=int(sum(r.size_bytes for r in records) / count),
            avg_work=sum(r.work for r in records) / count,
            virtual_clusters=frozenset(vcs),
            instance_times=tuple(
                tuple(sorted(times)) for _, times in sorted(epochs.items())),
            per_vc_frequency=tuple(sorted(vcs.items())),
        ))
    # Deterministic order: best density first, signature as tie-break.
    candidates.sort(key=lambda c: (-c.density, c.recurring))
    return candidates
