"""Schedule-aware candidate filtering.

Section 4 ("Schedule-aware views"): workflow tools "trigger all jobs at the
start of every period ... jobs that get scheduled (and thus compiled) at
the same time cannot benefit from such reuse. ... we modified our view
selection algorithms to account for concurrent job submissions;
specifically, we only consider subexpressions that could finish
materializing before the start of other consuming jobs."

Given a candidate's historical submission times, we drop occurrences that
arrive within the materialization lag of the period's first occurrence and
re-score the candidate on the surviving (actually reusable) frequency.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from repro.selection.candidates import ReuseCandidate


def effective_frequency(submit_times: Tuple[float, ...],
                        lag_seconds: float) -> int:
    """Occurrences that can actually reuse, given the materialization lag.

    The first occurrence of each burst materializes; occurrences closer
    than ``lag_seconds`` to an in-flight materialization neither reuse nor
    count.  Returns 1 (producer) + the number of benefiting consumers.
    """
    if not submit_times:
        return 0
    if lag_seconds <= 0:
        return len(submit_times)
    times = sorted(submit_times)
    available_at = times[0] + lag_seconds
    effective = 1
    for t in times[1:]:
        if t >= available_at:
            effective += 1
    return effective


def prefilter_candidates(candidates: List[ReuseCandidate],
                         policy) -> Tuple[List[ReuseCandidate], int]:
    """Apply the policy's schedule-awareness and reuse-rate thresholds.

    Returns (survivors, rejected_count).  Used by every selector so the
    operational constraints of Section 4 apply uniformly.
    """
    survivors, rejected = apply_schedule_awareness(
        candidates, policy.materialization_lag_seconds)
    if policy.min_reuses_per_epoch > 0:
        kept: List[ReuseCandidate] = []
        for candidate in survivors:
            rate = candidate.reusable_occurrences / max(1, candidate.instances)
            if rate < policy.min_reuses_per_epoch:
                rejected += 1
            else:
                kept.append(candidate)
        survivors = kept
    return survivors, rejected


def apply_schedule_awareness(candidates: List[ReuseCandidate],
                             lag_seconds: float) -> Tuple[List[ReuseCandidate], int]:
    """Re-score candidates on reusable frequency; drop the unreusable.

    The lag is applied *within each input epoch* (reuse is only possible
    there anyway).  Returns the surviving (re-scored) candidates and the
    rejected count.
    """
    if lag_seconds <= 0:
        return list(candidates), 0
    survivors: List[ReuseCandidate] = []
    rejected = 0
    for candidate in candidates:
        effective = sum(
            effective_frequency(times, lag_seconds)
            for times in candidate.instance_times)
        if effective - candidate.instances < 1:
            rejected += 1
            continue
        if effective != candidate.frequency:
            candidate = replace(candidate, frequency=effective)
        survivors.append(candidate)
    return survivors, rejected
