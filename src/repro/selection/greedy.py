"""Greedy density-ordered view selection under a storage budget.

The baseline selector: pack candidates by benefit-per-byte until the
storage budget (and optional view-count cap) is exhausted.  "CloudViews
uses these estimates to select the set of subexpressions to materialize
such that they provide the maximize reuse within a given storage budget."
(Section 1)

Per-VC variants apply individual budgets in a single pass over the
partitioned candidate set -- the paper's answer to running selection for
thousands of virtual clusters without one script per customer (Section 4,
"Per-customer view selection").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.obs.recorder import NULL_RECORDER
from repro.selection.candidates import ReuseCandidate
from repro.selection.policies import SelectionPolicy, SelectionResult
from repro.selection.schedule import prefilter_candidates


def record_selection(recorder, result: SelectionResult) -> SelectionResult:
    """Mirror one selection run's outcome into the flight recorder.

    Shared by every selector so an operator can watch the feedback loop
    (candidates considered, schedule/budget rejections, bytes committed)
    regardless of which algorithm a deployment runs.
    """
    recorder.inc("selection.runs")
    recorder.inc("selection.candidates.considered", result.considered)
    recorder.inc("selection.candidates.selected", len(result.selected))
    recorder.inc("selection.rejected.schedule", result.rejected_by_schedule)
    recorder.inc("selection.rejected.budget", result.rejected_by_budget)
    recorder.set_gauge("selection.storage_used", result.storage_used)
    recorder.observe("selection.expected_benefit", result.expected_benefit)
    return result


def greedy_select(candidates: List[ReuseCandidate],
                  policy: SelectionPolicy,
                  recorder=NULL_RECORDER) -> SelectionResult:
    """Global greedy packing under the policy's storage budget."""
    result = SelectionResult(considered=len(candidates))
    filtered, rejected = prefilter_candidates(candidates, policy)
    result.rejected_by_schedule = rejected

    ordered = sorted(filtered, key=lambda c: (-c.density, c.recurring))
    for candidate in ordered:
        if candidate.benefit <= policy.min_benefit:
            continue
        if policy.max_views is not None \
                and len(result.selected) >= policy.max_views:
            result.rejected_by_budget += 1
            continue
        if result.storage_used + candidate.avg_bytes \
                > policy.storage_budget_bytes:
            result.rejected_by_budget += 1
            continue
        result.selected.append(candidate)
        result.storage_used += candidate.avg_bytes
        result.expected_benefit += candidate.benefit
    return record_selection(recorder, result)


def per_vc_select(candidates: List[ReuseCandidate],
                  policy: SelectionPolicy,
                  recorder=NULL_RECORDER) -> SelectionResult:
    """Partition candidates by virtual cluster; apply per-VC budgets.

    A candidate shared across several VCs competes in each VC with its
    per-VC frequency, and is selected if it wins anywhere -- customers
    "want to benefit from better SLAs and do more processing on a per-VC
    basis" (Section 4).
    """
    result = SelectionResult(considered=len(candidates))
    filtered, rejected = prefilter_candidates(candidates, policy)
    result.rejected_by_schedule = rejected

    by_vc: Dict[str, List[ReuseCandidate]] = defaultdict(list)
    for candidate in filtered:
        for vc in candidate.virtual_clusters:
            by_vc[vc].append(candidate)

    chosen: Dict[str, ReuseCandidate] = {}
    storage_by_vc: Dict[str, int] = defaultdict(int)
    for vc in sorted(by_vc):
        budget = policy.per_vc_budgets.get(vc, policy.storage_budget_bytes)
        ordered = sorted(by_vc[vc], key=lambda c: (-c.density, c.recurring))
        for candidate in ordered:
            vc_frequency = candidate.frequency_in(vc)
            if vc_frequency < 2:
                continue
            if candidate.benefit <= policy.min_benefit:
                continue
            if policy.max_views is not None \
                    and len(chosen) >= policy.max_views \
                    and candidate.recurring not in chosen:
                result.rejected_by_budget += 1
                continue
            if storage_by_vc[vc] + candidate.avg_bytes > budget:
                result.rejected_by_budget += 1
                continue
            storage_by_vc[vc] += candidate.avg_bytes
            chosen.setdefault(candidate.recurring, candidate)

    result.selected = sorted(chosen.values(),
                             key=lambda c: (-c.density, c.recurring))
    result.storage_used = sum(c.avg_bytes for c in result.selected)
    result.expected_benefit = sum(c.benefit for c in result.selected)
    return record_selection(recorder, result)
