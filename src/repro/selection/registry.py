"""Selector registry: one place mapping algorithm names to entry points.

``CloudViews``, the workload simulations, and the ``repro.api`` facade all
accept a ``selection_algorithm`` string; this module owns the mapping so
they agree on the vocabulary and on the error raised for an unknown name.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigError
from repro.obs.recorder import NULL_RECORDER
from repro.selection.bigsubs import bigsubs_select
from repro.selection.candidates import ReuseCandidate
from repro.selection.greedy import greedy_select, per_vc_select
from repro.selection.policies import SelectionPolicy, SelectionResult
from repro.workload.repository import WorkloadRepository

_SELECTORS = {
    "greedy": lambda repo, candidates, policy, recorder:
        greedy_select(candidates, policy, recorder=recorder),
    "per_vc": lambda repo, candidates, policy, recorder:
        per_vc_select(candidates, policy, recorder=recorder),
    "bigsubs": lambda repo, candidates, policy, recorder:
        bigsubs_select(repo, candidates, policy, recorder=recorder),
}

SELECTION_ALGORITHMS = tuple(sorted(_SELECTORS))


def validate_selection_algorithm(name: str) -> str:
    """Return ``name`` or raise :class:`ConfigError` for unknown names."""
    if name not in _SELECTORS:
        raise ConfigError(f"unknown selection algorithm {name!r}")
    return name


def run_selection(name: str, repository: WorkloadRepository,
                  candidates: List[ReuseCandidate],
                  policy: SelectionPolicy,
                  recorder=NULL_RECORDER) -> SelectionResult:
    """Run one view-selection pass with the named algorithm."""
    validate_selection_algorithm(name)
    return _SELECTORS[name](repository, candidates, policy, recorder)
