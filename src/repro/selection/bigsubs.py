"""BigSubs-style interaction-aware view selection.

"By restricting to common subexpressions, CloudViews can run
subexpressions selection to Cosmos scale by running it as a label
propagation problem in a distributed manner" (Section 2.4, citing the
BigSubs algorithm of Jindal et al., VLDB 2018).

BigSubs models selection as a bipartite graph between queries and
candidate subexpressions and alternates between two label-propagation
steps: queries decide which *selected* candidates they would actually use,
and candidates keep or lose their selected label based on the utility the
queries just attributed to them.  The crucial interaction this captures --
and greedy packing does not -- is **nesting**: when a large subexpression
is materialized, the smaller subexpressions inside it stop saving anything
for the queries that reuse the large one.

This implementation is the same alternation, deterministic and
single-process:

1. start with every viable candidate selected;
2. **query step**: for each job, walk its recorded plan tree and attribute
   savings only to *maximal* selected candidates (those with no selected
   ancestor in that job);
3. **candidate step**: re-score candidates on attributed utility, then keep
   the best set under the storage budget;
4. repeat until the selected set stabilizes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set

from repro.obs.recorder import NULL_RECORDER
from repro.selection.candidates import (
    READ_COST_PER_ROW,
    WRITE_COST_PER_ROW,
    ReuseCandidate,
)
from repro.selection.greedy import record_selection
from repro.selection.policies import SelectionPolicy, SelectionResult
from repro.selection.schedule import prefilter_candidates
from repro.workload.repository import SubexpressionRecord, WorkloadRepository

MAX_ITERATIONS = 10


def bigsubs_select(repository: WorkloadRepository,
                   candidates: List[ReuseCandidate],
                   policy: SelectionPolicy,
                   recorder=NULL_RECORDER) -> SelectionResult:
    """Iterative bipartite label propagation over jobs x candidates."""
    result = SelectionResult(considered=len(candidates))
    filtered, rejected = prefilter_candidates(candidates, policy)
    result.rejected_by_schedule = rejected
    by_recurring = {c.recurring: c for c in filtered}

    jobs = _records_by_job(repository)
    selected: Set[str] = {c.recurring for c in filtered
                          if c.benefit > policy.min_benefit}

    candidate_set = set(by_recurring)
    for _ in range(MAX_ITERATIONS):
        # Score EVERY candidate against the current selection: selected
        # candidates see their realized utility, deselected ones their
        # potential utility if re-added (so they can win back a slot when
        # e.g. a larger candidate was evicted by the budget).
        utility, occurrences, epochs = _attribute_utility(
            jobs, candidate_set, selected)
        scored: List[tuple] = []
        for recurring in candidate_set:
            candidate = by_recurring[recurring]
            count = occurrences.get(recurring, 0)
            instances = len(epochs.get(recurring, ()))
            if count - instances < 1:
                continue  # never reusable as a maximal candidate
            # Each epoch's first maximal occurrence materializes (pays the
            # write, saves nothing); the rest realize the attributed savings.
            net = (utility.get(recurring, 0.0) * (count - instances) / count
                   - instances * candidate.avg_rows * WRITE_COST_PER_ROW)
            if net <= policy.min_benefit:
                continue
            density = net / max(1, candidate.avg_bytes)
            scored.append((-density, recurring, net, candidate))
        scored.sort(key=lambda item: (item[0], item[1]))

        new_selected: Set[str] = set()
        storage = 0
        budget_rejections = 0
        for _, recurring, net, candidate in scored:
            if policy.max_views is not None \
                    and len(new_selected) >= policy.max_views:
                budget_rejections += 1
                continue
            if storage + candidate.avg_bytes > policy.storage_budget_bytes:
                budget_rejections += 1
                continue
            new_selected.add(recurring)
            storage += candidate.avg_bytes
        if new_selected == selected:
            result.rejected_by_budget = budget_rejections
            break
        selected = new_selected

    utility, occurrences, epochs = _attribute_utility(
        jobs, candidate_set, selected)
    result.selected = sorted(
        (by_recurring[r] for r in selected),
        key=lambda c: (-c.density, c.recurring))
    result.storage_used = sum(c.avg_bytes for c in result.selected)
    result.expected_benefit = sum(
        utility.get(c.recurring, 0.0)
        * max(0, occurrences.get(c.recurring, 1)
              - len(epochs.get(c.recurring, ())))
        / max(1, occurrences.get(c.recurring, 1))
        - len(epochs.get(c.recurring, ())) * c.avg_rows * WRITE_COST_PER_ROW
        for c in result.selected)
    return record_selection(recorder, result)


# --------------------------------------------------------------------- #
# internals


def _records_by_job(repository: WorkloadRepository
                    ) -> List[List[SubexpressionRecord]]:
    grouped: Dict[str, List[SubexpressionRecord]] = defaultdict(list)
    for record in repository.subexpressions:
        grouped[record.job_id].append(record)
    return [grouped[job.job_id] for job in repository.jobs
            if job.job_id in grouped]


def _attribute_utility(jobs: List[List[SubexpressionRecord]],
                       candidates: Set[str],
                       selected: Set[str]):
    """Query step: savings go only to *maximal* candidate occurrences.

    An occurrence is maximal when no proper ancestor in the same job is
    currently selected -- those occurrences would read the ancestor's view
    instead, so the nested candidate saves nothing there.  Non-selected
    candidates are scored too (their potential utility if re-added).

    Tracks, per candidate, the total attributed utility, the occurrence
    count, and the distinct input epochs (strict signatures) among the
    maximal occurrences -- reuse only happens within an epoch.
    """
    utility: Dict[str, float] = defaultdict(float)
    occurrences: Dict[str, int] = defaultdict(int)
    epochs: Dict[str, Set[str]] = defaultdict(set)
    for records in jobs:
        by_node: Dict[int, SubexpressionRecord] = {
            r.node_id: r for r in records}
        for record in records:
            if record.recurring not in candidates or not record.eligible:
                continue
            if _has_selected_ancestor(record, by_node, selected):
                continue
            saving = record.work - record.rows * READ_COST_PER_ROW
            utility[record.recurring] += max(0.0, saving)
            occurrences[record.recurring] += 1
            epochs[record.recurring].add(record.strict)
    return utility, occurrences, epochs


def _has_selected_ancestor(record: SubexpressionRecord,
                           by_node: Dict[int, SubexpressionRecord],
                           selected: Set[str]) -> bool:
    parent_id: Optional[int] = record.parent_node_id
    while parent_id is not None:
        parent = by_node.get(parent_id)
        if parent is None:
            return False
        if parent.recurring in selected and parent.eligible:
            return True
        parent_id = parent.parent_node_id
    return False
