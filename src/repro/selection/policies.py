"""Selection policies: constraints and the published result.

"Users can provide storage and other constraints (e.g., maximum number of
views to create) for view selection.  The view selection output is also
made available to customers for insights and expected overall benefits."
(Section 2.3)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.optimizer.context import Annotation
from repro.selection.candidates import ReuseCandidate


@dataclass(frozen=True)
class SelectionPolicy:
    """Constraints for one view-selection run."""

    storage_budget_bytes: int = 10 * 1024 * 1024
    max_views: Optional[int] = None
    min_benefit: float = 0.0
    #: Per-virtual-cluster storage budgets (Section 4, "Per-customer view
    #: selection"); absent VCs fall back to the global budget.
    per_vc_budgets: Dict[str, int] = field(default_factory=dict)
    #: Schedule-awareness: estimated seconds to materialize a view; reuses
    #: arriving sooner than this after the first instance cannot benefit.
    materialization_lag_seconds: float = 0.0
    #: Minimum average reuses per input epoch.  Candidates reused fewer
    #: times per materialization waste writes on marginal views; the paper
    #: reports ~6 reuses per view in steady state.
    min_reuses_per_epoch: float = 1.0


@dataclass
class SelectionResult:
    """Outcome of a selection run, ready for insights publication."""

    selected: List[ReuseCandidate] = field(default_factory=list)
    storage_used: int = 0
    expected_benefit: float = 0.0
    considered: int = 0
    rejected_by_budget: int = 0
    rejected_by_schedule: int = 0

    def annotations(self) -> List[Annotation]:
        """The tagged signatures handed to the insights service."""
        return [
            Annotation(
                recurring_signature=c.recurring,
                tag=c.tag,
                expected_rows=c.avg_rows,
                expected_bytes=c.avg_bytes,
                virtual_cluster=next(iter(sorted(c.virtual_clusters)), ""),
            )
            for c in self.selected
        ]

    def summary(self) -> str:
        """Customer-facing insight line (expected overall benefits)."""
        return (f"{len(self.selected)} views selected "
                f"({self.storage_used} bytes, "
                f"expected saving {self.expected_benefit:.0f} work units; "
                f"considered {self.considered}, "
                f"budget-rejected {self.rejected_by_budget}, "
                f"schedule-rejected {self.rejected_by_schedule})")
