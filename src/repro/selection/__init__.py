"""View selection: candidates, greedy, per-VC, BigSubs, schedule-aware."""

from repro.selection.bigsubs import bigsubs_select
from repro.selection.candidates import (
    READ_COST_PER_ROW,
    WRITE_COST_PER_ROW,
    ReuseCandidate,
    build_candidates,
)
from repro.selection.greedy import greedy_select, per_vc_select
from repro.selection.policies import SelectionPolicy, SelectionResult
from repro.selection.registry import (
    SELECTION_ALGORITHMS,
    run_selection,
    validate_selection_algorithm,
)
from repro.selection.schedule import apply_schedule_awareness, effective_frequency

__all__ = [
    "bigsubs_select", "READ_COST_PER_ROW", "WRITE_COST_PER_ROW",
    "ReuseCandidate", "build_candidates", "greedy_select", "per_vc_select",
    "SelectionPolicy", "SelectionResult", "SELECTION_ALGORITHMS",
    "run_selection", "validate_selection_algorithm",
    "apply_schedule_awareness", "effective_frequency",
]
