"""Micro-models: per-template performance predictors (Section 5.2).

"The notion of signatures ... turned out to be very helpful ... for
applications such as ... learning high accuracy micro-models for specific
portions of the workload" (the Microlearner line of work the paper cites).

A :class:`MicroModel` is deliberately tiny: one model *per recurring
template*, fit on that template's own history.  Global models struggle on
heterogeneous cloud workloads; per-template models are near-trivial and
accurate because recurring instances are so similar.  We fit a robust
scale-with-input predictor: ``metric ≈ base + slope * input_rows``, with
median-based estimation so stragglers don't skew it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.simulator import JobTelemetry
from repro.telemetry.comparison import percentile


@dataclass(frozen=True)
class MicroModel:
    """Predictor for one (template, metric) pair."""

    template_id: str
    metric: str
    base: float
    slope: float
    observations: int

    def predict(self, input_rows: int) -> float:
        return max(0.0, self.base + self.slope * input_rows)


@dataclass
class MicroModelBank:
    """All fitted micro-models, keyed by template."""

    metric: str
    models: Dict[str, MicroModel] = field(default_factory=dict)

    def predict(self, template_id: str, input_rows: int) -> Optional[float]:
        model = self.models.get(template_id)
        if model is None:
            return None
        return model.predict(input_rows)

    def __len__(self) -> int:
        return len(self.models)


def fit_micromodels(telemetry: Sequence[JobTelemetry],
                    template_of: Dict[str, str],
                    metric: str = "processing_time",
                    min_observations: int = 3) -> MicroModelBank:
    """Fit one model per template from observed telemetry.

    Uses the median-slope (Theil-Sen-style over the extreme pairs) so a
    single outlier run does not corrupt the model.
    """
    samples: Dict[str, List[Tuple[int, float]]] = defaultdict(list)
    for t in telemetry:
        template = template_of.get(t.job_id)
        if template is None:
            continue
        samples[template].append((t.input_rows, float(getattr(t, metric))))

    bank = MicroModelBank(metric=metric)
    for template, points in samples.items():
        if len(points) < min_observations:
            continue
        bank.models[template] = _fit_one(template, metric, points)
    return bank


def _fit_one(template: str, metric: str,
             points: List[Tuple[int, float]]) -> MicroModel:
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_spread = max(xs) - min(xs)
    if x_spread == 0:
        return MicroModel(template, metric, base=percentile(ys, 50.0),
                          slope=0.0, observations=len(points))
    # Median of pairwise slopes over sorted-x pairs (robust).
    ordered = sorted(points)
    slopes = []
    for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
        if x1 != x0:
            slopes.append((y1 - y0) / (x1 - x0))
    slope = percentile(slopes, 50.0) if slopes else 0.0
    residuals = [y - slope * x for x, y in points]
    base = percentile(residuals, 50.0)
    return MicroModel(template, metric, base=base, slope=slope,
                      observations=len(points))


@dataclass
class PredictionQuality:
    """Accuracy of a model bank over held-out telemetry."""

    evaluated: int = 0
    median_relative_error: float = 0.0
    within_20_percent: float = 0.0


def evaluate_micromodels(bank: MicroModelBank,
                         telemetry: Sequence[JobTelemetry],
                         template_of: Dict[str, str]) -> PredictionQuality:
    """Relative-error statistics of the bank on ``telemetry``."""
    errors: List[float] = []
    for t in telemetry:
        template = template_of.get(t.job_id)
        if template is None:
            continue
        predicted = bank.predict(template, t.input_rows)
        if predicted is None:
            continue
        actual = float(getattr(t, bank.metric))
        if actual <= 0:
            continue
        errors.append(abs(predicted - actual) / actual)
    if not errors:
        return PredictionQuality()
    return PredictionQuality(
        evaluated=len(errors),
        median_relative_error=percentile(errors, 50.0),
        within_20_percent=sum(1 for e in errors if e <= 0.2) / len(errors),
    )
