"""Baseline-vs-CloudViews comparison harness.

Two methodologies, both from the paper:

* **Pre-production A/B** (:func:`compare_reports`): run the identical
  workload twice -- CloudViews enabled and disabled -- and compare the
  cumulative metrics.  "It is easy to measure performance improvements in
  a pre-production environment by re-running both the baseline and the
  modified version" (Section 4).
* **Production percentile baseline** (:func:`percentile_baseline`): the
  trick the team used once re-running everything became impossible: "we
  took previous instances of the queries that qualified for CloudView
  optimization and collected four weeks' worth of observations before
  enabling CloudViews ... took the 75th percentile value of each of the
  performance metrics ... and compared them with each of the newer
  instances of that query once CloudViews was enabled" (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.simulator import JobTelemetry
from repro.obs import events as obs_events
from repro.obs.events import Event
from repro.obs.metrics import percentile  # noqa: F401  (re-exported; the
# percentile math is shared with the flight recorder's histograms)

#: The Table-1 performance rows, in paper order.
TABLE1_METRICS: Tuple[Tuple[str, str], ...] = (
    ("latency", "Latency Improvement"),
    ("processing_time", "Processing Time Improvement"),
    ("bonus_processing_time", "Bonus Processing Time Improvement"),
    ("containers", "Containers Count Improvement"),
    ("input_bytes", "Input Size Improvement"),
    ("data_read_bytes", "Data Read Improvement"),
    ("queue_length_at_submit", "Queuing Length Improvement"),
)


@dataclass
class MetricComparison:
    """Cumulative improvement of one metric."""

    metric: str
    baseline_total: float
    cloudviews_total: float

    @property
    def improvement(self) -> float:
        """Fractional improvement; positive means CloudViews wins."""
        if self.baseline_total == 0:
            return 0.0
        return (self.baseline_total - self.cloudviews_total) / self.baseline_total

    @property
    def improvement_percent(self) -> float:
        return self.improvement * 100.0


@dataclass
class ComparisonReport:
    """All Table-1 comparisons plus per-job distributional statistics."""

    metrics: Dict[str, MetricComparison] = field(default_factory=dict)
    median_latency_improvement: float = 0.0
    jobs_baseline: int = 0
    jobs_cloudviews: int = 0

    def improvement_percent(self, metric: str) -> float:
        return self.metrics[metric].improvement_percent

    def rows(self) -> List[Tuple[str, float]]:
        return [(label, self.metrics[metric].improvement_percent)
                for metric, label in TABLE1_METRICS
                if metric in self.metrics]


def compare_telemetry(baseline: Sequence[JobTelemetry],
                      cloudviews: Sequence[JobTelemetry]) -> ComparisonReport:
    """Pre-production A/B comparison over two telemetry sets."""
    report = ComparisonReport(
        jobs_baseline=len(baseline),
        jobs_cloudviews=len(cloudviews),
    )
    for metric, _ in TABLE1_METRICS:
        report.metrics[metric] = MetricComparison(
            metric=metric,
            baseline_total=float(sum(getattr(t, metric) for t in baseline)),
            cloudviews_total=float(sum(getattr(t, metric) for t in cloudviews)),
        )
    report.median_latency_improvement = _median_improvement(
        baseline, cloudviews, "latency")
    return report


def _median_improvement(baseline: Sequence[JobTelemetry],
                        cloudviews: Sequence[JobTelemetry],
                        metric: str) -> float:
    """Median per-job improvement, matching jobs by (VC, submit time).

    The paper reports "a median per-job latency improvement of 15%"
    alongside the 34% cumulative number (Section 3.2).
    """
    base_by_key = {(t.virtual_cluster, round(t.submit_time, 3)): t
                   for t in baseline}
    improvements: List[float] = []
    for t in cloudviews:
        match = base_by_key.get((t.virtual_cluster, round(t.submit_time, 3)))
        if match is None:
            continue
        before = getattr(match, metric)
        after = getattr(t, metric)
        if before > 0:
            improvements.append((before - after) / before)
    if not improvements:
        return 0.0
    return percentile(improvements, 50.0)


#: Fields reconstructed from ``job.finished`` flight-recorder events.
_TELEMETRY_INT_FIELDS = ("containers", "input_rows", "input_bytes",
                         "data_read_bytes", "queue_length_at_submit",
                         "views_built", "views_reused")
_TELEMETRY_FLOAT_FIELDS = ("submit_time", "start_time", "finish_time",
                           "processing_time", "bonus_processing_time")


def telemetry_from_events(events: Iterable[Event]) -> List[JobTelemetry]:
    """Rebuild per-job telemetry from a structured event stream.

    The cluster simulator logs one ``job.finished`` event per completed
    job with every Table-1 field, so a comparison can run directly off a
    flight-recorder capture (live or loaded from JSONL) instead of the
    in-memory telemetry list.
    """
    out: List[JobTelemetry] = []
    for event in events:
        if event.kind != obs_events.JOB_FINISHED:
            continue
        attrs = event.attrs
        telemetry = JobTelemetry(
            job_id=event.job_id,
            virtual_cluster=str(attrs.get("virtual_cluster", "")),
            submit_time=0.0,
        )
        for name in _TELEMETRY_FLOAT_FIELDS:
            setattr(telemetry, name, float(attrs.get(name, 0.0)))
        for name in _TELEMETRY_INT_FIELDS:
            setattr(telemetry, name, int(attrs.get(name, 0)))
        out.append(telemetry)
    return out


def compare_event_logs(baseline_events: Iterable[Event],
                       cloudviews_events: Iterable[Event]) -> ComparisonReport:
    """Pre-production A/B comparison over two flight-recorder streams."""
    return compare_telemetry(telemetry_from_events(baseline_events),
                             telemetry_from_events(cloudviews_events))


@dataclass
class PercentileBaseline:
    """Per-template 75th-percentile baselines from pre-enable history."""

    metric: str
    pct: float
    thresholds: Dict[str, float] = field(default_factory=dict)

    def improvement_for(self, template_id: str, observed: float) -> Optional[float]:
        baseline = self.thresholds.get(template_id)
        if baseline is None or baseline <= 0:
            return None
        return (baseline - observed) / baseline


def percentile_baseline(history: Sequence[JobTelemetry],
                        template_of: Dict[str, str],
                        metric: str = "latency",
                        pct: float = 75.0) -> PercentileBaseline:
    """Build the Section-4 production baseline from pre-enable history.

    ``template_of`` maps job ids to their recurring template; jobs without
    a template are ignored (one-off jobs have no baseline).
    """
    per_template: Dict[str, List[float]] = {}
    for t in history:
        template = template_of.get(t.job_id)
        if not template:
            continue
        per_template.setdefault(template, []).append(float(getattr(t, metric)))
    baseline = PercentileBaseline(metric=metric, pct=pct)
    for template, values in per_template.items():
        baseline.thresholds[template] = percentile(values, pct)
    return baseline


def evaluate_against_baseline(baseline: PercentileBaseline,
                              enabled: Sequence[JobTelemetry],
                              template_of: Dict[str, str]) -> Dict[str, float]:
    """Median and mean improvement of post-enable jobs vs the baseline."""
    improvements: List[float] = []
    for t in enabled:
        template = template_of.get(t.job_id)
        if not template:
            continue
        improvement = baseline.improvement_for(
            template, float(getattr(t, baseline.metric)))
        if improvement is not None:
            improvements.append(improvement)
    if not improvements:
        return {"jobs": 0, "median": 0.0, "mean": 0.0}
    return {
        "jobs": float(len(improvements)),
        "median": percentile(improvements, 50.0),
        "mean": sum(improvements) / len(improvements),
    }
