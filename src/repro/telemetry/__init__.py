"""Telemetry: baseline-vs-CloudViews comparison harnesses."""

from repro.telemetry.micromodels import (
    MicroModel,
    MicroModelBank,
    PredictionQuality,
    evaluate_micromodels,
    fit_micromodels,
)
from repro.telemetry.comparison import (
    TABLE1_METRICS,
    ComparisonReport,
    MetricComparison,
    PercentileBaseline,
    compare_event_logs,
    compare_telemetry,
    evaluate_against_baseline,
    percentile,
    percentile_baseline,
    telemetry_from_events,
)

__all__ = [
    "TABLE1_METRICS", "ComparisonReport", "MetricComparison",
    "PercentileBaseline", "compare_event_logs", "compare_telemetry",
    "evaluate_against_baseline", "percentile", "percentile_baseline",
    "telemetry_from_events", "MicroModel", "MicroModelBank",
    "PredictionQuality", "evaluate_micromodels", "fit_micromodels",
]
