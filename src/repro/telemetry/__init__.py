"""Telemetry: baseline-vs-CloudViews comparison harnesses."""

from repro.telemetry.micromodels import (
    MicroModel,
    MicroModelBank,
    PredictionQuality,
    evaluate_micromodels,
    fit_micromodels,
)
from repro.telemetry.comparison import (
    TABLE1_METRICS,
    ComparisonReport,
    MetricComparison,
    PercentileBaseline,
    compare_telemetry,
    evaluate_against_baseline,
    percentile,
    percentile_baseline,
)

__all__ = [
    "TABLE1_METRICS", "ComparisonReport", "MetricComparison",
    "PercentileBaseline", "compare_telemetry", "evaluate_against_baseline",
    "percentile", "percentile_baseline", "MicroModel", "MicroModelBank",
    "PredictionQuality", "evaluate_micromodels", "fit_micromodels",
]
