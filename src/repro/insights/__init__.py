"""Insights service: annotation serving, view locks, usage metrics.

Two handles are available to the engine:

* :class:`InsightsService` -- the raw service (annotation index, serving
  cache, lock table);
* :class:`InsightsClient` -- the fault-tolerant client wrapping it with
  request batching, a TTL'd local cache, bounded retries, and a circuit
  breaker that degrades jobs to reuse-disabled compilation during
  incidents (Section 4's kill-switch posture).
"""

from repro.insights.annotations_file import (
    compile_with_annotations,
    dump_annotations,
    export_current_annotations,
    load_annotations,
)
from repro.insights.client import (
    CircuitBreaker,
    FaultInjector,
    InsightsClient,
    InsightsClientConfig,
)
from repro.insights.service import (
    CACHED_ROUND_TRIP_SECONDS,
    ROUND_TRIP_SECONDS,
    InsightsService,
    UsageMetrics,
)

__all__ = ["CACHED_ROUND_TRIP_SECONDS", "ROUND_TRIP_SECONDS",
           "CircuitBreaker", "FaultInjector", "InsightsClient",
           "InsightsClientConfig", "InsightsService", "UsageMetrics",
           "compile_with_annotations", "dump_annotations",
           "export_current_annotations", "load_annotations"]
