"""Insights service: annotation serving, view locks, usage metrics."""

from repro.insights.annotations_file import (
    compile_with_annotations,
    dump_annotations,
    export_current_annotations,
    load_annotations,
)
from repro.insights.service import (
    CACHED_ROUND_TRIP_SECONDS,
    ROUND_TRIP_SECONDS,
    InsightsService,
    UsageMetrics,
)

__all__ = ["CACHED_ROUND_TRIP_SECONDS", "ROUND_TRIP_SECONDS",
           "InsightsService", "UsageMetrics", "compile_with_annotations",
           "dump_annotations", "export_current_annotations",
           "load_annotations"]
