"""The insights service: annotation serving, view locks, usage metrics.

From Figure 5: tagged signatures produced by workload analysis are "polled
by insights service and stored using Azure SQL databases" behind a "cached
serving layer".  At query time the compiler extracts a job's tags and
fetches the matching annotations; during the follow-up optimization phase
it acquires an exclusive *view lock* before inserting a spool, and the job
manager releases the lock when the view is sealed early.

The paper reports "an end to round trip latency of around 15 milliseconds"
(Section 5.2); we simulate that latency so the cluster simulation can
charge it, with a serving-layer cache that makes repeated fetches cheap.

The service is also the uber kill switch: "insight service level control as
the uber control for gate keeping and toggling during customer incidents"
(Section 4, "Multi-level control").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.common.errors import InsightsError
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.optimizer.context import Annotation

#: Simulated round-trip to the serving layer, in seconds (~15 ms).
ROUND_TRIP_SECONDS = 0.015
#: A cache hit in the serving layer is an order of magnitude cheaper.
CACHED_ROUND_TRIP_SECONDS = 0.0015


@dataclass
class UsageMetrics:
    """Operational counters surfaced to the service owners.

    ``fetches`` counts per-job annotation requests; ``cache_hits`` /
    ``cache_misses`` count per-tag lookups inside those requests (one
    fetch touches one serving-layer entry per tag).
    """

    fetches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    annotations_served: int = 0
    locks_acquired: int = 0
    locks_denied: int = 0
    locks_released: int = 0
    views_reported_available: int = 0


class InsightsService:
    """Annotation index plus the exclusive view-creation lock table."""

    def __init__(self, recorder=NULL_RECORDER) -> None:
        self._enabled = True
        self._by_tag: Dict[str, List[Annotation]] = {}
        self._by_recurring: Dict[str, Annotation] = {}
        self._locks: Dict[str, str] = {}  # strict signature -> holder job id
        self._cache: Set[str] = set()
        self.metrics = UsageMetrics()
        self.last_fetch_latency = 0.0
        #: Flight recorder (no-op unless a real one is installed).
        self.recorder = recorder

    @property
    def enabled(self) -> bool:
        """The uber kill switch (Section 4, "Multi-level control")."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if value != self._enabled:
            self.recorder.event(obs_events.KILL_SWITCH_FLIPPED,
                                level="insights-service", enabled=value)
        self._enabled = value

    # ------------------------------------------------------------------ #
    # publication (from workload analysis)

    def publish(self, annotations: Iterable[Annotation]) -> int:
        """Install the output of a view-selection run.

        Replaces the previous generation wholesale: selection runs
        periodically over fresh workload windows, and stale selections must
        stop driving materialization (just-in-time views, Section 2.4).
        """
        self._by_tag.clear()
        self._by_recurring.clear()
        self._cache.clear()
        count = 0
        for annotation in annotations:
            self._by_tag.setdefault(annotation.tag, []).append(annotation)
            self._by_recurring[annotation.recurring_signature] = annotation
            count += 1
        return count

    def annotation_count(self) -> int:
        return len(self._by_recurring)

    # ------------------------------------------------------------------ #
    # query-time serving

    def fetch_annotations(self, tags: Iterable[str]) -> Dict[str, Annotation]:
        """Annotations for a job, keyed by recurring signature.

        Returns an empty mapping when the service-level kill switch is off,
        which disables both matching and buildout downstream.
        """
        self.metrics.fetches += 1
        self.recorder.inc("insights.fetches")
        if not self.enabled:
            self.last_fetch_latency = 0.0
            return {}
        latency = 0.0
        result: Dict[str, Annotation] = {}
        for tag in tags:
            if tag in self._cache:
                latency += CACHED_ROUND_TRIP_SECONDS
                self.metrics.cache_hits += 1
                self.recorder.inc("insights.cache_hits")
            else:
                latency += ROUND_TRIP_SECONDS
                self._cache.add(tag)
                self.metrics.cache_misses += 1
                self.recorder.inc("insights.cache_misses")
            for annotation in self._by_tag.get(tag, ()):
                result[annotation.recurring_signature] = annotation
        self.last_fetch_latency = latency
        self.metrics.annotations_served += len(result)
        self.recorder.observe("insights.fetch.latency", latency)
        self.recorder.inc("insights.annotations_served", len(result))
        return result

    # ------------------------------------------------------------------ #
    # view locks

    def acquire_view_lock(self, strict_signature: str, holder: str) -> bool:
        """Exclusive per-signature lock guarding view creation."""
        if not self.enabled:
            return False
        current = self._locks.get(strict_signature)
        if current is not None and current != holder:
            self.metrics.locks_denied += 1
            self.recorder.event(obs_events.LOCK_DENIED, job_id=holder,
                                signature=strict_signature[:12],
                                held_by=current)
            return False
        self._locks[strict_signature] = holder
        self.metrics.locks_acquired += 1
        self.recorder.event(obs_events.LOCK_ACQUIRED, job_id=holder,
                            signature=strict_signature[:12])
        return True

    def release_view_lock(self, strict_signature: str, holder: str) -> None:
        current = self._locks.get(strict_signature)
        if current is None:
            return
        if current != holder:
            raise InsightsError(
                f"lock on {strict_signature[:8]} held by {current!r}, "
                f"not {holder!r}")
        del self._locks[strict_signature]
        self.metrics.locks_released += 1
        self.recorder.event(obs_events.LOCK_RELEASED, job_id=holder,
                            signature=strict_signature[:12])

    def lock_holder(self, strict_signature: str) -> Optional[str]:
        return self._locks.get(strict_signature)

    def report_view_available(self, strict_signature: str, holder: str) -> None:
        """Early-seal notification: release the lock and start reusing.

        "The job manager makes the view available even before the query
        finishes ... and notifies the insight service to release the view
        creation lock and start reusing it wherever possible." (Section 2.3)
        """
        self.release_view_lock(strict_signature, holder)
        self.metrics.views_reported_available += 1
