"""The insights service: annotation serving, view locks, usage metrics.

From Figure 5: tagged signatures produced by workload analysis are "polled
by insights service and stored using Azure SQL databases" behind a "cached
serving layer".  At query time the compiler extracts a job's tags and
fetches the matching annotations; during the follow-up optimization phase
it acquires an exclusive *view lock* before inserting a spool, and the job
manager releases the lock when the view is sealed early.

The paper reports "an end to round trip latency of around 15 milliseconds"
(Section 5.2); we simulate that latency so the cluster simulation can
charge it, with a serving-layer cache that makes repeated fetches cheap.

The service is also the uber kill switch: "insight service level control as
the uber control for gate keeping and toggling during customer incidents"
(Section 4, "Multi-level control").

The service is shared mutable state between every concurrently compiling
job, so all of its tables (annotation index, serving cache, lock table)
are guarded by one tracked mutex in the ``insights`` band of the lock
hierarchy, with the :class:`UsageMetrics` counters behind their own
lower-ranked guard (see :mod:`repro.common.sync`).
In particular :meth:`acquire_view_lock` is an atomic check-and-set: it is
the real guard against duplicate view buildout when many jobs compile the
same subexpression in parallel.  ``last_fetch_latency`` is thread-local:
each compiling thread reads back the latency of *its own* most recent
fetch.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Set

from repro.common.errors import InsightsError
from repro.common.sync import RANK_INSIGHTS, TrackedLock
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.optimizer.context import Annotation

#: Simulated round-trip to the serving layer, in seconds (~15 ms).
ROUND_TRIP_SECONDS = 0.015
#: A cache hit in the serving layer is an order of magnitude cheaper.
CACHED_ROUND_TRIP_SECONDS = 0.0015

#: The counters every :class:`UsageMetrics` instance carries.
_USAGE_FIELDS = (
    "fetches", "cache_hits", "cache_misses", "annotations_served",
    "locks_acquired", "locks_denied", "locks_released",
    "views_reported_available",
)


class UsageMetrics:
    """Operational counters surfaced to the service owners.

    ``fetches`` counts per-job annotation requests; ``cache_hits`` /
    ``cache_misses`` count per-tag lookups inside those requests (one
    fetch touches one serving-layer entry per tag).

    Increments are lock-guarded so the counters stay exact under
    concurrent compilation; reads are plain attribute access (ints are
    replaced atomically, and every counter is monotonic).
    """

    __slots__ = _USAGE_FIELDS + ("_lock",)

    def __init__(self, **initial: int) -> None:
        # Terminal counter guard: acquired under the service mutex (via
        # ``_charge_tag``), so it sits at the bottom of the insights band.
        self._lock = TrackedLock("insights.metrics", RANK_INSIGHTS)
        for name in _USAGE_FIELDS:
            setattr(self, name, int(initial.pop(name, 0)))
        if initial:
            raise InsightsError(
                f"unknown usage counters {sorted(initial)!r}")

    def inc(self, name: str, amount: int = 1) -> int:
        """Atomically bump one counter; returns the new value."""
        with self._lock:
            value = getattr(self, name) + amount
            setattr(self, name, value)
            return value

    def snapshot(self) -> Dict[str, int]:
        """A consistent point-in-time copy of every counter."""
        with self._lock:
            return {name: getattr(self, name) for name in _USAGE_FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UsageMetrics):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"UsageMetrics({body})"


class InsightsService:
    """Annotation index plus the exclusive view-creation lock table."""

    def __init__(self, recorder=NULL_RECORDER) -> None:
        self._enabled = True
        self._by_tag: Dict[str, List[Annotation]] = {}
        self._by_recurring: Dict[str, Annotation] = {}
        self._locks: Dict[str, str] = {}  # strict signature -> holder job id
        self._cache: Set[str] = set()
        # One tracked, non-reentrant mutex for every service table; the
        # only lock it may take while held is the UsageMetrics counter
        # guard, which ranks strictly below it in the insights band.
        self._mutex = TrackedLock("insights.service", RANK_INSIGHTS + 20,
                                  recorder)
        self._fetch_state = threading.local()
        #: Bumped on every :meth:`publish`; clients key their local caches
        #: by it so a re-selection invalidates everything at once.
        self.generation = 0
        self.metrics = UsageMetrics()
        #: Flight recorder (no-op unless a real one is installed).
        self.recorder = recorder

    # ------------------------------------------------------------------ #
    # recorder plumbing (FlightRecorder.install sets ``.recorder``)

    @property
    def recorder(self):
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value
        self._mutex.recorder = value

    @property
    def enabled(self) -> bool:
        """The uber kill switch (Section 4, "Multi-level control")."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if value != self._enabled:
            self.recorder.event(obs_events.KILL_SWITCH_FLIPPED,
                                level="insights-service", enabled=value)
        self._enabled = value

    # ------------------------------------------------------------------ #
    # per-thread fetch bookkeeping

    @property
    def last_fetch_latency(self) -> float:
        """Simulated latency of the calling thread's most recent fetch."""
        return getattr(self._fetch_state, "latency", 0.0)

    @last_fetch_latency.setter
    def last_fetch_latency(self, value: float) -> None:
        self._fetch_state.latency = value

    @property
    def last_fetch_degraded(self) -> bool:
        """Whether the calling thread's last fetch was degraded.

        The plain service never degrades (it either answers or the kill
        switch is off); the fault-tolerant client overrides this.
        """
        return False

    # ------------------------------------------------------------------ #
    # publication (from workload analysis)

    def publish(self, annotations: Iterable[Annotation]) -> int:
        """Install the output of a view-selection run.

        Replaces the previous generation wholesale: selection runs
        periodically over fresh workload windows, and stale selections must
        stop driving materialization (just-in-time views, Section 2.4).
        """
        with self._mutex:
            self._by_tag.clear()
            self._by_recurring.clear()
            self._cache.clear()
            count = 0
            for annotation in annotations:
                self._by_tag.setdefault(annotation.tag, []).append(annotation)
                self._by_recurring[annotation.recurring_signature] = annotation
                count += 1
            self.generation += 1
            return count

    def annotation_count(self) -> int:
        with self._mutex:
            return len(self._by_recurring)

    def bump_generation(self) -> int:
        """Invalidate every generation-keyed downstream cache.

        The lifecycle manager calls this after an invalidation cascade:
        the annotations themselves stay published (the views should be
        rebuilt over the fresh stream GUIDs), but clients holding
        TTL-cached copies of *reuse* state must come back to the source.
        """
        with self._mutex:
            self._cache.clear()
            self.generation += 1
            return self.generation

    def retract(self, recurring_signatures: Iterable[str]) -> int:
        """Withdraw specific annotations (user-initiated view purge).

        Unlike :meth:`publish` this removes only the named recurring
        signatures, leaving the rest of the selection in force, and bumps
        the generation so cached copies die with them.
        """
        wanted = set(recurring_signatures)
        if not wanted:
            return 0
        removed = 0
        with self._mutex:
            for signature in wanted:
                if self._by_recurring.pop(signature, None) is not None:
                    removed += 1
            if removed:
                for tag in list(self._by_tag):
                    kept = [a for a in self._by_tag[tag]
                            if a.recurring_signature not in wanted]
                    if kept:
                        self._by_tag[tag] = kept
                    else:
                        del self._by_tag[tag]
                self._cache.clear()
                self.generation += 1
        return removed

    # ------------------------------------------------------------------ #
    # query-time serving

    def fetch_annotations(self, tags: Iterable[str],
                          now: Optional[float] = None
                          ) -> Dict[str, Annotation]:
        """Annotations for a job, keyed by recurring signature.

        Returns an empty mapping when the service-level kill switch is off,
        which disables both matching and buildout downstream.  ``now`` is
        accepted (and ignored) so the service and the TTL-caching
        :class:`~repro.insights.client.InsightsClient` are interchangeable
        behind the engine.
        """
        self.metrics.inc("fetches")
        self.recorder.inc("insights.fetches")
        if not self.enabled:
            self.last_fetch_latency = 0.0
            return {}
        latency = 0.0
        result: Dict[str, Annotation] = {}
        with self._mutex:
            for tag in tags:
                latency += self._charge_tag(tag)
                for annotation in self._by_tag.get(tag, ()):
                    result[annotation.recurring_signature] = annotation
        self.last_fetch_latency = latency
        self.metrics.inc("annotations_served", len(result))
        self.recorder.observe("insights.fetch.latency", latency)
        self.recorder.inc("insights.annotations_served", len(result))
        return result

    def fetch_tag_annotations(self, tags: Iterable[str]
                              ) -> Dict[str, List[Annotation]]:
        """One serving-layer round trip per tag, results keyed *by tag*.

        This is the batch-friendly surface used by the client: a single
        call can carry the union of many concurrent jobs' tags, and the
        per-tag slices let the client cache and distribute the results.
        Does not count as a job-level fetch in :class:`UsageMetrics`
        (the client accounts for those); the serving-layer cache counters
        still apply.  Returns an empty mapping when the kill switch is
        off.
        """
        if not self.enabled:
            self.last_fetch_latency = 0.0
            return {}
        latency = 0.0
        result: Dict[str, List[Annotation]] = {}
        with self._mutex:
            for tag in tags:
                latency += self._charge_tag(tag)
                result[tag] = list(self._by_tag.get(tag, ()))
        self.last_fetch_latency = latency
        self.recorder.observe("insights.fetch.latency", latency)
        return result

    def _charge_tag(self, tag: str) -> float:
        """Serving-cache accounting for one tag lookup (mutex held)."""
        if tag in self._cache:
            self.metrics.inc("cache_hits")
            self.recorder.inc("insights.cache_hits")
            return CACHED_ROUND_TRIP_SECONDS
        self._cache.add(tag)
        self.metrics.inc("cache_misses")
        self.recorder.inc("insights.cache_misses")
        return ROUND_TRIP_SECONDS

    # ------------------------------------------------------------------ #
    # view locks

    def acquire_view_lock(self, strict_signature: str, holder: str) -> bool:
        """Exclusive per-signature lock guarding view creation.

        Atomic check-and-set: under concurrent compilation exactly one of
        the racing jobs wins the lock, which is what prevents duplicate
        buildout of the same strict signature (Section 2.3).
        """
        if not self.enabled:
            return False
        with self._mutex:
            current = self._locks.get(strict_signature)
            if current is not None and current != holder:
                acquired = False
            else:
                self._locks[strict_signature] = holder
                acquired = True
        if not acquired:
            self.metrics.inc("locks_denied")
            self.recorder.event(obs_events.LOCK_DENIED, job_id=holder,
                                signature=strict_signature[:12],
                                held_by=current)
            return False
        self.metrics.inc("locks_acquired")
        self.recorder.event(obs_events.LOCK_ACQUIRED, job_id=holder,
                            signature=strict_signature[:12])
        return True

    def release_view_lock(self, strict_signature: str, holder: str) -> None:
        with self._mutex:
            current = self._locks.get(strict_signature)
            if current is None:
                return
            if current != holder:
                raise InsightsError(
                    f"lock on {strict_signature[:8]} held by {current!r}, "
                    f"not {holder!r}")
            del self._locks[strict_signature]
        self.metrics.inc("locks_released")
        self.recorder.event(obs_events.LOCK_RELEASED, job_id=holder,
                            signature=strict_signature[:12])

    def force_release_lock(self, strict_signature: str) -> bool:
        """Administratively drop a view lock regardless of holder.

        Used when the view a lock guards is being purged out from under
        its builder (invalidation cascade, GDPR erasure): the holder may
        never come back to release it, and a stuck lock would block the
        rebuild over the fresh stream GUIDs forever.
        """
        with self._mutex:
            holder = self._locks.pop(strict_signature, None)
        if holder is None:
            return False
        self.metrics.inc("locks_released")
        self.recorder.event(obs_events.LOCK_RELEASED, job_id=holder,
                            signature=strict_signature[:12], forced=True)
        return True

    def lock_holder(self, strict_signature: str) -> Optional[str]:
        with self._mutex:
            return self._locks.get(strict_signature)

    def held_locks(self) -> Dict[str, str]:
        """Snapshot of the lock table (tests and operator tooling)."""
        with self._mutex:
            return dict(self._locks)

    def report_view_available(self, strict_signature: str, holder: str) -> None:
        """Early-seal notification: release the lock and start reusing.

        "The job manager makes the view available even before the query
        finishes ... and notifies the insight service to release the view
        creation lock and start reusing it wherever possible." (Section 2.3)
        """
        self.release_view_lock(strict_signature, holder)
        self.metrics.inc("views_reported_available")
