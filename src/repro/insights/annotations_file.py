"""Query annotations files for incident debugging.

Figure 5: "We also generate a query annotations file with the selected
signatures that could be used for quickly debugging any job.  For
instance, in case of a customer incident, we can reproduce the compute
reuse behavior by compiling a job with the annotations file."

The file format is plain JSON so that an on-call engineer can read and
hand-edit it.  :func:`compile_with_annotations` bypasses the insights
service entirely and drives the optimizer from the file's contents,
reproducing the incident compilation deterministically.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.common.errors import InsightsError
from repro.optimizer.context import Annotation, OptimizerContext
from repro.optimizer.pipeline import optimize
from repro.plan.builder import PlanBuilder
from repro.plan.normalize import normalize
from repro.optimizer.rules import apply_rewrites
from repro.sql.parser import parse

if TYPE_CHECKING:  # the engine imports this package; avoid a cycle
    from repro.engine.engine import CompiledJob, ScopeEngine

FORMAT_VERSION = 1


def dump_annotations(annotations: Iterable[Annotation],
                     runtime_version: str = "") -> str:
    """Serialize selected signatures to the annotations-file format."""
    payload = {
        "format_version": FORMAT_VERSION,
        "runtime_version": runtime_version,
        "annotations": [
            {
                "recurring_signature": a.recurring_signature,
                "tag": a.tag,
                "expected_rows": a.expected_rows,
                "expected_bytes": a.expected_bytes,
                "virtual_cluster": a.virtual_cluster,
            }
            for a in annotations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def load_annotations(text: str) -> List[Annotation]:
    """Parse an annotations file; raises :class:`InsightsError` on damage."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InsightsError(f"annotations file is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise InsightsError("annotations file must be a JSON object")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise InsightsError(
            f"unsupported annotations format version {version!r}")
    annotations = []
    for entry in payload.get("annotations", []):
        try:
            annotations.append(Annotation(
                recurring_signature=entry["recurring_signature"],
                tag=entry["tag"],
                expected_rows=int(entry.get("expected_rows", 0)),
                expected_bytes=int(entry.get("expected_bytes", 0)),
                virtual_cluster=entry.get("virtual_cluster", ""),
            ))
        except (KeyError, TypeError, ValueError) as exc:
            raise InsightsError(f"malformed annotation entry: {exc}")
    return annotations


def export_current_annotations(engine: "ScopeEngine") -> str:
    """Snapshot the insights service's current generation to a file body."""
    return dump_annotations(engine.insights._by_recurring.values(),
                            runtime_version=engine.runtime_version)


def compile_with_annotations(engine: "ScopeEngine", sql: str,
                             annotations_text: str,
                             params: Optional[Dict[str, object]] = None,
                             virtual_cluster: str = "default",
                             now: float = 0.0,
                             job_id: str = "debug-job") -> "CompiledJob":
    """Reproduce a job's reuse behaviour from an annotations file.

    Compiles against the engine's catalog and view store, but with the
    annotation set taken from the file instead of the insights service --
    the paper's incident-debugging path.
    """
    from repro.engine.engine import CompiledJob

    annotations = {a.recurring_signature: a
                   for a in load_annotations(annotations_text)}
    builder = PlanBuilder(engine.catalog, params)
    plan = normalize(apply_rewrites(builder.build(parse(sql))))
    ctx = OptimizerContext(
        catalog=engine.catalog,
        view_store=engine.view_store,
        history=engine.history,
        cost_model=engine.config.cost_model,
        annotations=annotations,
        salt=engine.signature_salt,
        virtual_cluster=virtual_cluster,
        max_views_per_job=engine.config.max_views_per_job,
        reuse_enabled=True,
        overestimate=engine.config.overestimate,
        acquire_view_lock=lambda sig: engine.insights.acquire_view_lock(
            sig, holder=job_id),
    )
    optimized = optimize(plan, ctx, now=now)
    return CompiledJob(
        job_id=job_id,
        sql=sql,
        virtual_cluster=virtual_cluster,
        optimized=optimized,
        tags=(),
        params=dict(params or {}),
        reuse_enabled=True,
        runtime_version=engine.runtime_version,
    )
