"""Fault-tolerant, batching client for the insights service.

The paper's compiler fleet talks to the annotation serving layer over the
network (~15 ms round trips, Section 5.2) under heavy concurrent job
submission, and Section 4's multi-level controls exist precisely because
that dependency fails in production.  This client is the reproduction of
that operational posture:

* **batching** -- concurrent jobs' tag fetches are coalesced into one
  serving-layer round trip (a combining leader/follower scheme: whichever
  thread arrives first carries everybody's tags);
* **local TTL cache** -- per-tag annotation lists are cached client-side,
  keyed by the service's publication generation so a re-selection
  invalidates everything at once;
* **timeouts and retries** -- each attempt is bounded by a configurable
  timeout; failures retry with exponential backoff plus deterministic
  jitter (all in *simulated* seconds: the client never sleeps);
* **circuit breaker** -- after enough consecutive failures the breaker
  opens and fetches degrade immediately to the paper's kill-switch
  behavior: the job compiles with reuse disabled instead of failing
  (Section 4, "insight service level control as the uber control").
  After a cool-down the breaker goes half-open and lets probe fetches
  test the service before closing again;
* **fault injection** -- drop/delay/error hooks on the serving round trip
  so every degradation path is testable.

Everything here is deterministic: injected faults and jitter come from a
seeded RNG, and time is simulated latency accounting, so a concurrent run
with faults disabled produces byte-identical reuse decisions to a serial
one.
"""

from __future__ import annotations

import random
import threading
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError, InsightsError, InsightsTimeout
from repro.common.sync import RANK_INSIGHTS, TrackedLock
from repro.faults import points as fault_points
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.runtime import NULL_FAULTS, FaultRuntime
from repro.insights.service import InsightsService
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.optimizer.context import Annotation

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(kw_only=True)
class InsightsClientConfig:
    """Tunables of the fault-tolerant client (all keyword-only)."""

    #: One attempt may cost at most this much simulated latency before it
    #: counts as an :class:`~repro.common.errors.InsightsTimeout`.
    timeout_seconds: float = 0.060
    #: Retries after the first failed attempt (bounded).
    max_retries: int = 2
    #: Backoff before retry k (1-based) is ``base * multiplier**(k-1)``,
    #: plus up to ``jitter`` of itself, in simulated seconds.
    backoff_base_seconds: float = 0.010
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.25
    #: Per-tag cache lifetime in simulated seconds (also invalidated by
    #: every publication generation).
    cache_ttl_seconds: float = 3600.0
    #: Coalesce concurrent tag fetches into one round trip.
    batch_fetches: bool = True
    #: Consecutive exhausted fetches before the breaker opens.
    breaker_failure_threshold: int = 5
    #: Degraded fetches served while open before probing (half-open).
    breaker_cooldown_fetches: int = 20
    #: Successful probes required to close again from half-open.
    breaker_probes_to_close: int = 1
    #: Seed for jitter and fault injection (determinism).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout_seconds <= 0:
            raise ConfigError("timeout_seconds must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.breaker_failure_threshold < 1:
            raise ConfigError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_fetches < 1:
            raise ConfigError("breaker_cooldown_fetches must be >= 1")


@dataclass(kw_only=True)
class FaultInjector:
    """Deterministic fault hooks on the serving-layer round trip.

    .. deprecated::
        ``FaultInjector`` is a compatibility shim over the unified
        fault-injection framework (:mod:`repro.faults`) and will be
        removed in 2.0.  New code should describe serving-layer faults
        as a :class:`~repro.faults.FaultPlan` on the ``insights.rpc``
        injection point and install it via ``Session(faults=...)``.

    ``drop_rate`` makes an attempt consume its full timeout and fail;
    ``error_rate`` makes the serving layer answer with an error
    immediately; ``delay_seconds`` is added to every surviving round trip
    (push it past the timeout to exercise slow-dependency behavior).
    Rates may be mutated after construction; each ``roll`` reads the
    live values.
    """

    drop_rate: float = 0.0
    error_rate: float = 0.0
    delay_seconds: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        warnings.warn(
            "FaultInjector is deprecated and will be removed in 2.0; "
            "use repro.faults.FaultPlan on the 'insights.rpc' point "
            "with Session(faults=...) instead",
            DeprecationWarning, stacklevel=3)
        for name in ("drop_rate", "error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        # One RNG for the injector's lifetime (the legacy seed string),
        # transplanted into each rebuilt runtime so the draw sequence is
        # unaffected by live rate mutation.
        self._rng = random.Random(f"fault-injector-{self.seed}")
        # Leaf-of-band guard: makes the rebuild-check + draw atomic when
        # rolled from every worker thread's round trip.
        self._lock = TrackedLock("insights.injector", RANK_INSIGHTS + 10)
        self._runtime: Optional[FaultRuntime] = None
        self._built_from: Optional[Tuple[float, float, float]] = None

    @property
    def active(self) -> bool:
        return bool(self.drop_rate or self.error_rate or self.delay_seconds)

    def to_plan(self) -> FaultPlan:
        """The equivalent :class:`~repro.faults.FaultPlan` (the migration
        target: pass it to ``Session(faults=...)``)."""
        specs = []
        if self.drop_rate:
            specs.append(FaultSpec(fault_points.INSIGHTS_RPC, "drop",
                                   probability=self.drop_rate))
        if self.error_rate:
            specs.append(FaultSpec(fault_points.INSIGHTS_RPC, "error",
                                   probability=self.error_rate))
        if self.delay_seconds:
            specs.append(FaultSpec(fault_points.INSIGHTS_RPC, "delay",
                                   delay_seconds=self.delay_seconds))
        return FaultPlan(specs, seed=self.seed,
                         name="legacy-fault-injector")

    def roll(self) -> Tuple[str, float]:
        """Outcome for one attempt: ("ok"|"drop"|"error", extra_delay).

        Delegates to a :class:`~repro.faults.FaultRuntime` over the
        ``insights.rpc`` point; the cumulative single-draw semantics
        (drop wins below ``drop_rate``, error below ``drop_rate +
        error_rate``, otherwise ok plus delay) are the framework's own.
        """
        with self._lock:
            rates = (self.drop_rate, self.error_rate, self.delay_seconds)
            if self._runtime is None or self._built_from != rates:
                runtime = FaultRuntime(self.to_plan())
                runtime._rng = self._rng
                self._runtime = runtime
                self._built_from = rates
            outcome = self._runtime.check(fault_points.INSIGHTS_RPC)
        if outcome.kind in ("drop", "error"):
            return outcome.kind, 0.0
        return "ok", outcome.delay


class CircuitBreaker:
    """Closed -> open -> half-open -> closed, lock-guarded.

    Cool-down is counted in *fetches served while open* rather than
    wall-clock time: the reproduction never reads real time, and a
    traffic-based cool-down is deterministic under any thread schedule.
    """

    def __init__(self, config: InsightsClientConfig,
                 recorder=NULL_RECORDER) -> None:
        self._config = config
        self._lock = TrackedLock("insights.breaker", RANK_INSIGHTS + 30)
        self._state = CLOSED
        self._consecutive_failures = 0
        self._open_fetches = 0
        self._half_open_successes = 0
        self._probes_in_flight = 0
        self.recorder = recorder
        #: Transition log as (state, fetch-ordinal-free) tuples for tests.
        self.transitions: List[str] = []

    @property
    def recorder(self):
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value
        self._lock.recorder = value

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, state: str) -> None:
        self._state = state
        self.transitions.append(state)

    def admit(self) -> str:
        """Decide one fetch: "attempt" (talk to the service) or "degrade".

        While half-open, only a bounded number of probes are admitted at
        once; everybody else degrades until the probes report back.
        """
        with self._lock:
            if self._state == CLOSED:
                return "attempt"
            if self._state == OPEN:
                self._open_fetches += 1
                if self._open_fetches >= self._config.breaker_cooldown_fetches:
                    self._transition(HALF_OPEN)
                    self.recorder.event(obs_events.BREAKER_HALF_OPEN)
                    self._half_open_successes = 0
                    self._probes_in_flight = 1
                    return "attempt"
                return "degrade"
            # HALF_OPEN: admit a bounded number of concurrent probes.
            if self._probes_in_flight < self._config.breaker_probes_to_close:
                self._probes_in_flight += 1
                return "attempt"
            return "degrade"

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._half_open_successes += 1
                if (self._half_open_successes
                        >= self._config.breaker_probes_to_close):
                    self._transition(CLOSED)
                    self.recorder.event(obs_events.BREAKER_CLOSED)

    def record_failure(self) -> bool:
        """Record an exhausted fetch; returns True if the breaker opened."""
        with self._lock:
            if self._state == HALF_OPEN:
                # A failed probe throws the breaker straight back open.
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._reopen()
                return True
            self._consecutive_failures += 1
            if (self._state == CLOSED and self._consecutive_failures
                    >= self._config.breaker_failure_threshold):
                self._reopen()
                return True
            return False

    def _reopen(self) -> None:
        self._transition(OPEN)
        self._open_fetches = 0
        self._consecutive_failures = 0
        self.recorder.event(obs_events.BREAKER_OPEN)


class _CacheEntry:
    __slots__ = ("annotations", "expires_at", "generation")

    def __init__(self, annotations: List[Annotation], expires_at: float,
                 generation: int) -> None:
        self.annotations = annotations
        self.expires_at = expires_at
        self.generation = generation


class _Request:
    """One caller's participation in a coalesced batch fetch."""

    __slots__ = ("tags", "done", "results", "failed", "cost")

    def __init__(self, tags: Tuple[str, ...]) -> None:
        self.tags = tags
        self.done = threading.Event()
        self.results: Dict[str, List[Annotation]] = {}
        self.failed = False
        self.cost = 0.0


class InsightsClient:
    """Drop-in, fault-tolerant replacement for the raw service handle.

    Presents the full :class:`~repro.insights.service.InsightsService`
    surface the engine relies on (``fetch_annotations``, the view-lock
    calls, ``enabled``, ``metrics``), so ``ScopeEngine(insights=client)``
    needs no special casing.  Lock operations pass straight through: the
    lock table must stay strongly consistent (it guards buildout), so
    only the *serving* path gets caching and degradation.
    """

    def __init__(self, service: Optional[InsightsService] = None,
                 config: Optional[InsightsClientConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 recorder=NULL_RECORDER) -> None:
        self.service = service or InsightsService()
        self.config = config or InsightsClientConfig()
        self.injector = injector
        #: The session's fault runtime; ``Session(faults=...)`` installs
        #: a live one so the ``insights.rpc`` seam can fire.  The legacy
        #: ``injector`` (deprecated) is consulted first when present.
        self.faults = NULL_FAULTS
        self._recorder = recorder
        self.breaker = CircuitBreaker(self.config, recorder=recorder)
        self._jitter_rng = random.Random(f"client-jitter-{self.config.seed}")
        # Top of the insights band: guards the cache and batch queue and
        # is never held across a serving round trip (the leader swaps the
        # pending list out under the mutex, then round-trips unlocked).
        self._mutex = TrackedLock("insights.client", RANK_INSIGHTS + 40,
                                  recorder)
        self._cache: Dict[str, _CacheEntry] = {}
        self._pending: List[_Request] = []
        self._leader_active = False
        self._fetch_state = threading.local()
        #: Client-side operational counters (lock-guarded like the
        #: service's); monotonic.
        self.degraded_fetches = 0
        self.retries = 0
        self.batched_fetches = 0
        self.batch_rounds = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ #
    # recorder plumbing (FlightRecorder.install sets ``.recorder``)

    @property
    def recorder(self):
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value
        self._mutex.recorder = value
        self.breaker.recorder = value
        self.service.recorder = value

    # ------------------------------------------------------------------ #
    # pass-through surface (the engine's contract)

    @property
    def enabled(self) -> bool:
        return self.service.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.service.enabled = value

    @property
    def metrics(self):
        return self.service.metrics

    @property
    def generation(self) -> int:
        return self.service.generation

    def publish(self, annotations) -> int:
        count = self.service.publish(annotations)
        with self._mutex:
            self._cache.clear()
        return count

    def annotation_count(self) -> int:
        return self.service.annotation_count()

    def bump_generation(self) -> int:
        """Pass-through cache invalidation (the local cache is keyed by
        generation, so entries die on the next fetch; clearing eagerly
        just returns the memory sooner)."""
        generation = self.service.bump_generation()
        with self._mutex:
            self._cache.clear()
        return generation

    def retract(self, recurring_signatures) -> int:
        removed = self.service.retract(recurring_signatures)
        if removed:
            with self._mutex:
                self._cache.clear()
        return removed

    def acquire_view_lock(self, strict_signature: str, holder: str) -> bool:
        return self.service.acquire_view_lock(strict_signature, holder)

    def release_view_lock(self, strict_signature: str, holder: str) -> None:
        self.service.release_view_lock(strict_signature, holder)

    def force_release_lock(self, strict_signature: str) -> bool:
        return self.service.force_release_lock(strict_signature)

    def lock_holder(self, strict_signature: str) -> Optional[str]:
        return self.service.lock_holder(strict_signature)

    def held_locks(self) -> Dict[str, str]:
        return self.service.held_locks()

    def report_view_available(self, strict_signature: str,
                              holder: str) -> None:
        self.service.report_view_available(strict_signature, holder)

    # ------------------------------------------------------------------ #
    # per-thread fetch bookkeeping

    @property
    def last_fetch_latency(self) -> float:
        return getattr(self._fetch_state, "latency", 0.0)

    @property
    def last_fetch_degraded(self) -> bool:
        """True when the calling thread's last fetch fell back to the
        reuse-disabled degradation path."""
        return getattr(self._fetch_state, "degraded", False)

    # ------------------------------------------------------------------ #
    # the serving path

    def fetch_annotations(self, tags: Iterable[str],
                          now: Optional[float] = None
                          ) -> Dict[str, Annotation]:
        """Fetch one job's annotations with caching and fault tolerance.

        Never raises on serving failure: after retries are exhausted (or
        with the breaker open) it returns an empty mapping and flags the
        thread-local ``last_fetch_degraded``, so the engine compiles the
        job with reuse disabled -- exactly the paper's incident posture.
        """
        now = 0.0 if now is None else now
        tags = tuple(tags)
        self.metrics.inc("fetches")
        self._recorder.inc("insights.fetches")
        self._fetch_state.degraded = False
        self._fetch_state.latency = 0.0
        if not self.enabled:
            return {}

        generation = self.service.generation
        needed: List[str] = []
        per_tag: Dict[str, List[Annotation]] = {}
        latency = 0.0
        with self._mutex:
            for tag in tags:
                entry = self._cache.get(tag)
                if (entry is not None and entry.generation == generation
                        and now < entry.expires_at):
                    per_tag[tag] = entry.annotations
                    self.cache_hits += 1
                else:
                    needed.append(tag)
                    self.cache_misses += 1
        self._recorder.inc("client.cache_hits", len(per_tag))
        self._recorder.inc("client.cache_misses", len(needed))

        if needed:
            decision = self.breaker.admit()
            if decision == "degrade":
                return self._degrade(reason="breaker-open")
            fetched, latency, ok = self._fetch_with_retries(tuple(needed))
            if not ok:
                return self._degrade(reason="fetch-failed")
            self.breaker.record_success()
            with self._mutex:
                for tag, annotations in fetched.items():
                    self._cache[tag] = _CacheEntry(
                        annotations, now + self.config.cache_ttl_seconds,
                        generation)
            per_tag.update(fetched)

        self._fetch_state.latency = latency
        result: Dict[str, Annotation] = {}
        for tag in tags:
            for annotation in per_tag.get(tag, ()):
                result[annotation.recurring_signature] = annotation
        self.metrics.inc("annotations_served", len(result))
        self._recorder.inc("insights.annotations_served", len(result))
        return result

    def _degrade(self, reason: str) -> Dict[str, Annotation]:
        self._fetch_state.degraded = True
        self._fetch_state.latency = 0.0
        with self._mutex:
            self.degraded_fetches += 1
        self._recorder.inc("client.degraded_fetches")
        self._recorder.event(obs_events.FETCH_DEGRADED, reason=reason,
                             breaker_state=self.breaker.state)
        return {}

    # ------------------------------------------------------------------ #
    # attempts, retries, batching

    def _fetch_with_retries(self, tags: Tuple[str, ...]
                            ) -> Tuple[Dict[str, List[Annotation]], float, bool]:
        """Returns (per-tag results, accumulated simulated latency, ok)."""
        latency = 0.0
        attempts = self.config.max_retries + 1
        for attempt in range(attempts):
            try:
                results, cost = self._attempt(tags)
                return results, latency + cost, True
            except InsightsError:
                latency += self.config.timeout_seconds
                if attempt + 1 < attempts:
                    with self._mutex:
                        self.retries += 1
                    self._recorder.inc("client.retries")
                    self._recorder.event(obs_events.FETCH_RETRY,
                                         attempt=attempt + 1,
                                         tags=len(tags))
                    latency += self._backoff(attempt)
        opened = self.breaker.record_failure()
        if opened:
            self._recorder.inc("client.breaker_opens")
        return {}, latency, False

    def _backoff(self, attempt: int) -> float:
        base = (self.config.backoff_base_seconds
                * self.config.backoff_multiplier ** attempt)
        with self._mutex:
            jitter = self._jitter_rng.random()
        return base * (1.0 + self.config.backoff_jitter * jitter)

    def _attempt(self, tags: Tuple[str, ...]
                 ) -> Tuple[Dict[str, List[Annotation]], float]:
        """One (possibly batched) serving round trip for ``tags``."""
        if not self.config.batch_fetches:
            return self._round_trip(tags)

        request = _Request(tags)
        with self._mutex:
            self._pending.append(request)
            if self._leader_active:
                leader = False
            else:
                self._leader_active = True
                leader = True
        if leader:
            self._drain_batches()
        else:
            request.done.wait(timeout=30.0)
            if not request.done.is_set():  # pragma: no cover - safety net
                raise InsightsTimeout("batch leader never answered")
        if request.failed:
            raise InsightsTimeout(f"batched fetch of {len(tags)} tags failed")
        return request.results, request.cost

    def _drain_batches(self) -> None:
        """Leader loop: serve every pending request, then step down."""
        while True:
            with self._mutex:
                batch, self._pending = self._pending, []
                if not batch:
                    self._leader_active = False
                    return
                if len(batch) > 1:
                    self.batched_fetches += len(batch) - 1
                self.batch_rounds += 1
            union: List[str] = []
            seen = set()
            for request in batch:
                for tag in request.tags:
                    if tag not in seen:
                        seen.add(tag)
                        union.append(tag)
            try:
                results, cost = self._round_trip(tuple(union))
                for request in batch:
                    request.results = {
                        tag: results.get(tag, []) for tag in request.tags}
                    request.cost = cost
                    request.done.set()
            except InsightsError:
                # The whole batch shares the outcome of the round trip;
                # followers turn this into their own retry/backoff cycle.
                for request in batch:
                    request.failed = True
                    request.done.set()

    def _round_trip(self, tags: Tuple[str, ...]
                    ) -> Tuple[Dict[str, List[Annotation]], float]:
        """The raw serving-layer call, with fault injection and timeout."""
        delay = 0.0
        if self.injector is not None and self.injector.active:
            outcome, delay = self.injector.roll()
            if outcome == "drop":
                raise InsightsTimeout(
                    f"injected drop after {self.config.timeout_seconds}s")
            if outcome == "error":
                raise InsightsError("injected serving-layer error")
        if self.faults.enabled:
            injected = self.faults.check(fault_points.INSIGHTS_RPC)
            if injected.kind == "drop":
                raise InsightsTimeout(
                    f"injected drop after {self.config.timeout_seconds}s")
            if injected.kind == "error":
                raise InsightsError("injected serving-layer error")
            delay += injected.delay
        results = self.service.fetch_tag_annotations(tags)
        cost = self.service.last_fetch_latency + delay
        if cost > self.config.timeout_seconds:
            raise InsightsTimeout(
                f"round trip took {cost * 1000:.1f}ms "
                f"(timeout {self.config.timeout_seconds * 1000:.1f}ms)")
        return results, cost
