"""The full optimization pipeline applied to every compiled job.

Order mirrors the SCOPE + CloudViews flow:

1. logical rewrites (constant folding, filter pushdown);
2. normalization (the "some normalization" behind signature matching);
3. core search with top-down **view matching**;
4. follow-up **view buildout** (bottom-up spool insertion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.optimizer.context import OptimizerContext
from repro.optimizer.rules import apply_rewrites
from repro.optimizer.view_buildout import BuildProposal, insert_spools
from repro.optimizer.view_matching import ViewMatch, match_views
from repro.plan.logical import LogicalPlan
from repro.plan.normalize import normalize


@dataclass
class OptimizedPlan:
    """Final plan plus the reuse decisions taken along the way."""

    plan: LogicalPlan
    logical: LogicalPlan          # normalized plan before reuse rewrites
    matches: List[ViewMatch] = field(default_factory=list)
    proposals: List[BuildProposal] = field(default_factory=list)
    estimated_cost: float = 0.0
    estimated_cost_without_reuse: float = 0.0

    @property
    def reused_views(self) -> int:
        return len(self.matches)

    @property
    def built_views(self) -> int:
        return len(self.proposals)


def _assert_sound(plan: LogicalPlan, ctx: OptimizerContext, stage: str,
                  now: float, matches=()) -> None:
    # Deferred import: the analysis package depends on the optimizer.
    from repro.analysis.hooks import assert_stage_sound

    assert_stage_sound(plan, ctx, stage, now, matches=matches)


def optimize(plan: LogicalPlan, ctx: OptimizerContext,
             now: float = 0.0) -> OptimizedPlan:
    """Run rewrites, normalization, view matching, and view buildout."""
    logical = normalize(apply_rewrites(plan))
    estimator = ctx.estimator()
    cost_without = ctx.cost_model.plan_cost(logical, estimator)

    match_span = ctx.recorder.start_span(
        "view.match", trace_id=ctx.trace_id, at=now, parent=ctx.compile_span)
    matched = match_views(logical, ctx, now)
    match_span.annotate("matches", len(matched.matches)).finish(at=now)
    # The claims hold pins until compilation is done: the debug lints
    # below re-query the live view store, and without the pins a
    # concurrent GC sweep could evict (or another producer re-begin) a
    # claimed view between the claim and the lint, failing a sound plan.
    try:
        if ctx.debug_checks:
            _assert_sound(matched.plan, ctx, "post-match", now,
                          matches=matched.matches)

        build_span = ctx.recorder.start_span(
            "view.buildout", trace_id=ctx.trace_id, at=now,
            parent=ctx.compile_span)
        built = insert_spools(matched.plan, ctx, now)
        build_span.annotate("proposals", len(built.proposals)).finish(at=now)
        if ctx.debug_checks:
            _assert_sound(built.plan, ctx, "post-buildout", now)

        final_cost = ctx.cost_model.plan_cost(built.plan, ctx.estimator())
    finally:
        matched.release_claims(ctx.view_store)
    return OptimizedPlan(
        plan=built.plan,
        logical=logical,
        matches=matched.matches,
        proposals=built.proposals,
        estimated_cost=final_cost,
        estimated_cost_without_reuse=cost_without,
    )
