"""Plan cost model.

Costs are abstract work units (roughly "row touches").  The absolute scale
is irrelevant; what matters is the *comparison* the optimizer makes in
Figure 5: "the plan using a materialized subexpression is chosen only if
its cost is lower than the plan without the materialized subexpression".

A ViewScan charges the I/O of re-reading the materialized rows; a Spool
charges the extra write.  Everything else scales with (estimated) rows in
and out, so reading a small pre-aggregated view beats recomputing a large
join pipeline, while reading a huge view that saved little work does not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.optimizer.stats import CardinalityEstimator
from repro.plan.logical import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    LogicalPlan,
    Process,
    Project,
    Scan,
    Sort,
    Spool,
    Union,
    ViewScan,
)


@dataclass(frozen=True)
class CostModel:
    """Per-row work coefficients."""

    cpu_per_row: float = 1.0
    read_per_row: float = 0.5
    write_per_row: float = 2.0
    udo_per_row: float = 3.0
    operator_startup: float = 10.0

    def plan_cost(self, plan: LogicalPlan,
                  estimator: CardinalityEstimator) -> float:
        """Total estimated cost of executing ``plan``."""
        total = self.operator_cost(plan, estimator)
        for child in plan.children():
            total += self.plan_cost(child, estimator)
        return total

    def operator_cost(self, plan: LogicalPlan,
                      estimator: CardinalityEstimator) -> float:
        """Cost of one operator, excluding its children."""
        kind = type(plan)
        rows_out = estimator.estimate(plan)
        if kind is Scan:
            return self.operator_startup + rows_out * self.read_per_row
        if kind is ViewScan:
            return self.operator_startup + rows_out * self.read_per_row
        if kind is Filter:
            rows_in = estimator.estimate(plan.child)
            return self.operator_startup + rows_in * self.cpu_per_row
        if kind is Project:
            rows_in = estimator.estimate(plan.child)
            return self.operator_startup + rows_in * self.cpu_per_row
        if kind is Join:
            left = estimator.estimate(plan.left)
            right = estimator.estimate(plan.right)
            if plan.left_keys:
                build_probe = left + right
            else:
                build_probe = left * right  # nested loops
            return (self.operator_startup
                    + build_probe * self.cpu_per_row
                    + rows_out * self.cpu_per_row * 0.5)
        if kind is GroupBy:
            rows_in = estimator.estimate(plan.child)
            return self.operator_startup + rows_in * self.cpu_per_row * 1.2
        if kind is Union:
            return self.operator_startup
        if kind is Distinct:
            rows_in = estimator.estimate(plan.child)
            return self.operator_startup + rows_in * self.cpu_per_row
        if kind is Sort:
            rows_in = estimator.estimate(plan.child)
            return (self.operator_startup
                    + rows_in * max(1.0, math.log2(max(rows_in, 2.0)))
                    * self.cpu_per_row * 0.2)
        if kind is Limit:
            return self.operator_startup
        if kind is Process:
            rows_in = estimator.estimate(plan.child)
            return self.operator_startup + rows_in * self.udo_per_row
        if kind is Spool:
            # The materialization overhead the first job pays (Section 2.4,
            # "User expectations": the first query slows down).
            return self.operator_startup + rows_out * self.write_per_row
        return self.operator_startup
