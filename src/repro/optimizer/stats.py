"""Cardinality estimation with workload-history feedback.

SCOPE "often ends up overestimating cardinalities and thus over-partitioning
the intermediate outputs, leading to many more containers getting
instantiated" (Section 3.5).  The estimator reproduces that bias with a
configurable per-operator over-estimation factor.

CloudViews counters the bias two ways, both modelled here:

* the :class:`StatisticsCatalog` records *observed* row counts per strict
  and recurring signature from past executions ("by considering only the
  same logical subexpressions for reuse, CloudViews is able to leverage the
  actual runtime statistics seen in the past instances", Section 2.4);
* a :class:`~repro.plan.logical.ViewScan` carries the materialized view's
  true row count, which then flows upward through the rest of the plan
  ("computation reuse further helps feed more accurate statistics from the
  previously materialized subexpressions to the rest of the query plan",
  Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.catalog.catalog import Catalog
from repro.plan.expressions import BinaryOp, Expr, InList, Like, UnaryOp
from repro.plan.logical import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    LogicalPlan,
    Process,
    Project,
    Scan,
    Sort,
    Spool,
    Union,
    ViewScan,
)
from repro.signatures.signature import recurring_signature, strict_signature

#: Default multiplicative over-estimation applied at joins and aggregations.
DEFAULT_OVERESTIMATE = 2.0

_EQUALITY_SELECTIVITY = 0.1
_RANGE_SELECTIVITY = 0.3
_DEFAULT_SELECTIVITY = 0.25


@dataclass
class ObservedStats:
    """Runtime numbers recorded for one subexpression signature."""

    rows: int
    bytes: int
    occurrences: int = 1

    def merge(self, rows: int, size: int) -> None:
        # Exponentially-smoothed history keeps recent behaviour dominant.
        self.rows = int(0.5 * self.rows + 0.5 * rows)
        self.bytes = int(0.5 * self.bytes + 0.5 * size)
        self.occurrences += 1


class StatisticsCatalog:
    """Observed runtime statistics keyed by subexpression signature."""

    def __init__(self) -> None:
        self._by_strict: Dict[str, ObservedStats] = {}
        self._by_recurring: Dict[str, ObservedStats] = {}

    def record(self, strict: str, recurring: str, rows: int, size: int) -> None:
        for table, key in ((self._by_strict, strict),
                           (self._by_recurring, recurring)):
            entry = table.get(key)
            if entry is None:
                table[key] = ObservedStats(rows=rows, bytes=size)
            else:
                entry.merge(rows, size)

    def rows_for_strict(self, signature: str) -> Optional[int]:
        entry = self._by_strict.get(signature)
        return entry.rows if entry else None

    def rows_for_recurring(self, signature: str) -> Optional[int]:
        entry = self._by_recurring.get(signature)
        return entry.rows if entry else None

    def bytes_for_recurring(self, signature: str) -> Optional[int]:
        entry = self._by_recurring.get(signature)
        return entry.bytes if entry else None

    def __len__(self) -> int:
        return len(self._by_recurring)


class CardinalityEstimator:
    """Estimates output rows for each operator of a logical plan."""

    def __init__(self, catalog: Catalog,
                 history: Optional[StatisticsCatalog] = None,
                 overestimate: float = DEFAULT_OVERESTIMATE,
                 salt: str = ""):
        self.catalog = catalog
        self.history = history
        self.overestimate = max(1.0, overestimate)
        self.salt = salt

    def estimate(self, plan: LogicalPlan) -> float:
        """Estimated output rows for ``plan`` (history-aware)."""
        if self.history is not None:
            observed = self.history.rows_for_strict(
                strict_signature(plan, self.salt))
            if observed is not None:
                return float(observed)
            observed = self.history.rows_for_recurring(
                recurring_signature(plan, self.salt))
            if observed is not None:
                return float(observed)
        return self._formula(plan)

    # ------------------------------------------------------------------ #
    # formula-based fallbacks (deliberately biased upward)

    def _formula(self, plan: LogicalPlan) -> float:
        kind = type(plan)
        if kind is Scan:
            if self.catalog.has(plan.dataset):
                return float(self.catalog.current_version(plan.dataset).row_count)
            return 1000.0
        if kind is ViewScan:
            # Views carry their *actual* row count: accurate by design.
            return float(plan.rows if plan.rows is not None else 1000.0)
        if kind is Filter:
            child = self.estimate(plan.child)
            # The over-estimation bias models under-estimated selectivity:
            # SCOPE assumes filters keep more rows than they really do.
            selectivity = min(1.0, _predicate_selectivity(plan.predicate)
                              * self.overestimate)
            return max(1.0, child * selectivity)
        if kind is Project:
            return self.estimate(plan.child)
        if kind is Join:
            return self._join_estimate(plan)
        if kind is GroupBy:
            child = self.estimate(plan.child)
            if not plan.keys:
                return 1.0
            distinct = max(1.0, child ** 0.7)
            return min(child, distinct * self.overestimate)
        if kind is Union:
            return sum(self.estimate(c) for c in plan.inputs)
        if kind is Distinct:
            return max(1.0, self.estimate(plan.child) * 0.6)
        if kind is Sort:
            return self.estimate(plan.child)
        if kind is Limit:
            return min(float(plan.count), self.estimate(plan.child))
        if kind is Process:
            return self.estimate(plan.child)
        if kind is Spool:
            return self.estimate(plan.child)
        return 1000.0

    def _join_estimate(self, plan: Join) -> float:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        if not plan.left_keys:
            if plan.residual is None:
                return left * right  # cross join
            return max(1.0, left * right * _DEFAULT_SELECTIVITY)
        # Classic equi-join estimate: |L| * |R| / max(distinct keys);
        # with distinct ~ the smaller side, this is ~ the larger side.
        base = left * right / max(left, right, 1.0)
        if plan.residual is not None:
            base *= _predicate_selectivity(plan.residual)
        if plan.how == "left":
            base = max(base, left)
        return max(1.0, base * self.overestimate)


def _predicate_selectivity(predicate: Expr) -> float:
    """Crude textbook selectivity, compounding over conjuncts."""
    if isinstance(predicate, BinaryOp):
        if predicate.op == "AND":
            return (_predicate_selectivity(predicate.left)
                    * _predicate_selectivity(predicate.right))
        if predicate.op == "OR":
            lhs = _predicate_selectivity(predicate.left)
            rhs = _predicate_selectivity(predicate.right)
            return min(1.0, lhs + rhs)
        if predicate.op == "=":
            return _EQUALITY_SELECTIVITY
        if predicate.op in ("<", "<=", ">", ">="):
            return _RANGE_SELECTIVITY
        if predicate.op == "<>":
            return 1.0 - _EQUALITY_SELECTIVITY
    if isinstance(predicate, UnaryOp) and predicate.op == "NOT":
        return max(0.05, 1.0 - _predicate_selectivity(predicate.operand))
    if isinstance(predicate, InList):
        base = min(1.0, _EQUALITY_SELECTIVITY * len(predicate.values))
        return 1.0 - base if predicate.negated else base
    if isinstance(predicate, Like):
        return 1.0 - _EQUALITY_SELECTIVITY if predicate.negated \
            else _RANGE_SELECTIVITY
    return _DEFAULT_SELECTIVITY
