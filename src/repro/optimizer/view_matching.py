"""Top-down view matching ("Core search" in Figure 5).

"During core search, the optimizer tries to match top down (match larger
subexpressions first) whether any of the query subexpressions is already
materialized.  If yes, then it modifies the query plan to reuse the common
subexpression with scan over previously materialized subexpression, updates
more accurate statistics, and inserts the modified plan into the memo for
overall costing.  The plan using a materialized subexpression is chosen
only if its cost is lower than the plan without the materialized
subexpression." (Section 2.3)

Matching is the paper's "lightweight view matching": a recursive signature
computation plus hash-equality lookups -- no containment reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.optimizer.context import OptimizerContext
from repro.plan.logical import LogicalPlan, Scan, ViewScan
from repro.signatures.signature import (
    is_reuse_eligible,
    recurring_signature,
    strict_signature,
)
from repro.storage.views import MaterializedView


@dataclass(frozen=True)
class ViewMatch:
    """Record of one reuse decision (for telemetry and user surfacing)."""

    signature: str
    view_path: str
    view_rows: int
    replaced_operators: int
    cost_without: float
    cost_with: float


@dataclass
class MatchOutcome:
    plan: LogicalPlan
    matches: List[ViewMatch] = field(default_factory=list)

    @property
    def reused(self) -> bool:
        return bool(self.matches)


def match_views(plan: LogicalPlan, ctx: OptimizerContext,
                now: float) -> MatchOutcome:
    """Replace materialized subexpressions with ViewScans, top down."""
    outcome = MatchOutcome(plan=plan)
    if not ctx.reuse_enabled:
        return outcome
    outcome.plan = _match(plan, ctx, now, outcome.matches)
    return outcome


def _match(plan: LogicalPlan, ctx: OptimizerContext, now: float,
           matches: List[ViewMatch]) -> LogicalPlan:
    replaced = _try_replace(plan, ctx, now, matches)
    if replaced is not None:
        return replaced
    children = plan.children()
    if not children:
        return plan
    new_children = [_match(child, ctx, now, matches) for child in children]
    if any(n is not o for n, o in zip(new_children, children)):
        return plan.with_children(new_children)
    return plan


def _try_replace(plan: LogicalPlan, ctx: OptimizerContext, now: float,
                 matches: List[ViewMatch]) -> Optional[LogicalPlan]:
    if isinstance(plan, (Scan, ViewScan)):
        return None  # a bare scan never benefits from view substitution
    if not is_reuse_eligible(plan):
        return None
    signature = strict_signature(plan, ctx.salt)
    ctx.recorder.inc("views.match.attempts")
    view = ctx.view_store.lookup(signature, now)
    if view is None:
        if ctx.enable_containment:
            return _try_containment(plan, ctx, now, matches)
        return None
    cost_with, cost_without = _compare_costs(plan, view, ctx)
    if cost_with >= cost_without:
        ctx.recorder.inc("views.match.rejected_by_cost")
        return None
    ctx.recorder.inc("views.match.hits")
    ctx.view_store.record_reuse(signature, reused_by=ctx.trace_id)
    matches.append(ViewMatch(
        signature=signature,
        view_path=view.path,
        view_rows=view.row_count,
        replaced_operators=sum(1 for _ in plan.walk()),
        cost_without=cost_without,
        cost_with=cost_with,
    ))
    return ViewScan(
        signature=signature,
        view_path=view.path,
        columns=plan.schema,
        rows=view.row_count,
        size_bytes=view.size_bytes,
        recurring=view.recurring_signature
        or recurring_signature(plan, ctx.salt),
    )


def _try_containment(plan: LogicalPlan, ctx: OptimizerContext, now: float,
                     matches: List[ViewMatch]) -> Optional[LogicalPlan]:
    """Section-5.3 prototype: answer a Filter(Scan) from a more general
    view via a compensating filter, when no exact match exists."""
    from repro.optimizer.containment import generalized_match

    for view in ctx.view_store.views():
        if not view.available(now) or view.definition is None:
            continue
        view_scan = ViewScan(
            signature=view.signature,
            view_path=view.path,
            columns=view.schema,
            rows=view.row_count,
            size_bytes=view.size_bytes,
            recurring=view.recurring_signature,
        )
        rewritten = generalized_match(plan, view.definition, view_scan)
        if rewritten is None:
            continue
        cost_with, cost_without = _compare_rewrites(plan, rewritten, ctx)
        if cost_with >= cost_without:
            continue
        ctx.view_store.record_reuse(view.signature,
                                    reused_by=ctx.trace_id)
        matches.append(ViewMatch(
            signature=view.signature,
            view_path=view.path,
            view_rows=view.row_count,
            replaced_operators=sum(1 for _ in plan.walk()),
            cost_without=cost_without,
            cost_with=cost_with,
        ))
        return rewritten
    return None


def _compare_rewrites(plan: LogicalPlan, rewritten: LogicalPlan,
                      ctx: OptimizerContext) -> Tuple[float, float]:
    estimator = ctx.estimator()
    return (ctx.cost_model.plan_cost(rewritten, estimator),
            ctx.cost_model.plan_cost(plan, estimator))


def _compare_costs(plan: LogicalPlan, view: MaterializedView,
                   ctx: OptimizerContext) -> Tuple[float, float]:
    """Cost the two memo alternatives: scan-the-view vs recompute."""
    estimator = ctx.estimator()
    cost_without = ctx.cost_model.plan_cost(plan, estimator)
    replacement = ViewScan(
        signature=view.signature,
        view_path=view.path,
        columns=plan.schema,
        rows=view.row_count,
        size_bytes=view.size_bytes,
        recurring=view.recurring_signature,
    )
    cost_with = ctx.cost_model.plan_cost(replacement, estimator)
    return cost_with, cost_without
