"""Top-down view matching ("Core search" in Figure 5).

"During core search, the optimizer tries to match top down (match larger
subexpressions first) whether any of the query subexpressions is already
materialized.  If yes, then it modifies the query plan to reuse the common
subexpression with scan over previously materialized subexpression, updates
more accurate statistics, and inserts the modified plan into the memo for
overall costing.  The plan using a materialized subexpression is chosen
only if its cost is lower than the plan without the materialized
subexpression." (Section 2.3)

Matching is the paper's "lightweight view matching": a recursive signature
computation plus hash-equality lookups -- no containment reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.optimizer.context import OptimizerContext
from repro.plan.logical import LogicalPlan, Process, Scan, ViewScan
from repro.signatures.signature import (
    MAX_DEPENDENCY_DEPTH,
    is_reuse_eligible,
    recurring_signature,
    strict_signature,
)
from repro.storage.views import MaterializedView


@dataclass(frozen=True)
class ViewMatch:
    """Record of one reuse decision (for telemetry and user surfacing)."""

    signature: str
    view_path: str
    view_rows: int
    replaced_operators: int
    cost_without: float
    cost_with: float


@dataclass
class MatchOutcome:
    plan: LogicalPlan
    matches: List[ViewMatch] = field(default_factory=list)

    @property
    def reused(self) -> bool:
        return bool(self.matches)

    def release_claims(self, view_store) -> None:
        """Release the compile-time pins the claims took.

        ``claim_for_reuse`` pins each claimed view so the rest of
        compilation never sees it swept or rebuilt mid-flight; whoever
        drives matching must release those pins once the compiled plan
        is final (execution re-pins around the actual scan).
        """
        for match in self.matches:
            view_store.unpin(match.signature)


def match_views(plan: LogicalPlan, ctx: OptimizerContext,
                now: float) -> MatchOutcome:
    """Replace materialized subexpressions with ViewScans, top down."""
    outcome = MatchOutcome(plan=plan)
    if not ctx.reuse_enabled:
        return outcome
    eligibility = _eligibility_map(plan)
    outcome.plan = _match(plan, ctx, now, outcome.matches, eligibility)
    return outcome


def _eligibility_map(plan: LogicalPlan) -> Dict[int, bool]:
    """Reuse eligibility of every node, computed in one bottom-up pass.

    Matching consults this map instead of calling
    :func:`is_reuse_eligible` (a full subtree walk) at every node, which
    turned top-down matching quadratic on deep plans.
    """
    eligibility: Dict[int, bool] = {}

    def visit(node: LogicalPlan) -> bool:
        ok = True
        for child in node.children():
            if not visit(child):
                ok = False
        if isinstance(node, Process):
            if not node.deterministic:
                ok = False
            elif node.dependency_depth > MAX_DEPENDENCY_DEPTH:
                ok = False
        eligibility[id(node)] = ok
        return ok

    visit(plan)
    return eligibility


def _match(plan: LogicalPlan, ctx: OptimizerContext, now: float,
           matches: List[ViewMatch],
           eligibility: Dict[int, bool]) -> LogicalPlan:
    replaced = _try_replace(plan, ctx, now, matches, eligibility)
    if replaced is not None:
        return replaced
    children = plan.children()
    if not children:
        return plan
    new_children = [_match(child, ctx, now, matches, eligibility)
                    for child in children]
    if any(n is not o for n, o in zip(new_children, children)):
        return plan.with_children(new_children)
    return plan


def _try_replace(plan: LogicalPlan, ctx: OptimizerContext, now: float,
                 matches: List[ViewMatch],
                 eligibility: Dict[int, bool]) -> Optional[LogicalPlan]:
    if isinstance(plan, (Scan, ViewScan)):
        return None  # a bare scan never benefits from view substitution
    key = id(plan)
    eligible = (eligibility[key] if key in eligibility
                else is_reuse_eligible(plan))
    if not eligible:
        return None
    signature = strict_signature(plan, ctx.salt)
    ctx.recorder.inc("views.match.attempts")
    view = ctx.view_store.lookup(signature, now)
    if view is None:
        if ctx.enable_containment:
            return _try_containment(plan, ctx, now, matches)
        return None
    cost_with, cost_without = _compare_costs(plan, view, ctx)
    if cost_with >= cost_without:
        ctx.recorder.inc("views.match.rejected_by_cost")
        return None
    # Re-check availability atomically at claim time: an invalidation
    # cascade or GC sweep may have purged the view between the lookup
    # above and this point (the lifecycle janitor runs concurrently
    # with compilation).  A lost claim is just a recompute.
    view = ctx.view_store.claim_for_reuse(signature, now,
                                          reused_by=ctx.trace_id)
    if view is None:
        ctx.recorder.inc("views.match.lost_claims")
        return None
    ctx.recorder.inc("views.match.hits")
    matches.append(ViewMatch(
        signature=signature,
        view_path=view.path,
        view_rows=view.row_count,
        replaced_operators=sum(1 for _ in plan.walk()),
        cost_without=cost_without,
        cost_with=cost_with,
    ))
    return view_scan_for(
        view, plan.schema,
        recurring_fallback=lambda: recurring_signature(plan, ctx.salt))


def _try_containment(plan: LogicalPlan, ctx: OptimizerContext, now: float,
                     matches: List[ViewMatch]) -> Optional[LogicalPlan]:
    """Section-5.3 prototype: answer a Filter(Scan) from a more general
    view via a compensating filter, when no exact match exists."""
    from repro.optimizer.containment import generalized_match

    for view in ctx.view_store.views():
        if not view.available(now) or view.definition is None:
            continue
        view_scan = view_scan_for(view, view.schema)
        rewritten = generalized_match(plan, view.definition, view_scan)
        if rewritten is None:
            continue
        cost_with, cost_without = _compare_rewrites(plan, rewritten, ctx)
        if cost_with >= cost_without:
            continue
        if ctx.view_store.claim_for_reuse(view.signature, now,
                                          reused_by=ctx.trace_id) is None:
            continue  # purged under us; try the next candidate
        matches.append(ViewMatch(
            signature=view.signature,
            view_path=view.path,
            view_rows=view.row_count,
            replaced_operators=sum(1 for _ in plan.walk()),
            cost_without=cost_without,
            cost_with=cost_with,
        ))
        return rewritten
    return None


def _compare_rewrites(plan: LogicalPlan, rewritten: LogicalPlan,
                      ctx: OptimizerContext) -> Tuple[float, float]:
    estimator = ctx.estimator()
    return (ctx.cost_model.plan_cost(rewritten, estimator),
            ctx.cost_model.plan_cost(plan, estimator))


def _compare_costs(plan: LogicalPlan, view: MaterializedView,
                   ctx: OptimizerContext) -> Tuple[float, float]:
    """Cost the two memo alternatives: scan-the-view vs recompute."""
    estimator = ctx.estimator()
    cost_without = ctx.cost_model.plan_cost(plan, estimator)
    replacement = view_scan_for(view, plan.schema)
    cost_with = ctx.cost_model.plan_cost(replacement, estimator)
    return cost_with, cost_without


def view_scan_for(view: MaterializedView, columns: Sequence[str],
                  recurring_fallback=None) -> ViewScan:
    """The single construction site for ViewScans over a materialized view.

    ``columns`` is the schema of the subexpression being replaced; the
    plan-validator's ``plan-viewscan-schema`` rule asserts it agrees with
    the schema recorded on the view itself.  ``recurring_fallback`` is a
    thunk used only when the view predates recurring-signature recording.
    """
    recurring = view.recurring_signature
    if not recurring and recurring_fallback is not None:
        recurring = recurring_fallback()
    return ViewScan(
        signature=view.signature,
        view_path=view.path,
        columns=tuple(columns),
        rows=view.row_count,
        size_bytes=view.size_bytes,
        recurring=recurring,
    )
