"""Logical rewrite rules applied before signature computation.

Two rules matter for computation reuse:

* **Filter pushdown** moves predicates as close to their scans as possible.
  This is what exposes the paper's Figure 4 sharing: the
  ``MktSegment = 'Asia'`` filter sinks below the upper joins, so all three
  analyst queries contain the identical ``Filter(Scan Customer)`` /
  ``Join(Sales, ...)`` fragments.
* **Constant folding** collapses literal arithmetic so trivially different
  spellings normalize to the same plan.  Literals bound from job parameters
  are never folded -- folding would erase the parameter provenance that
  recurring signatures depend on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.plan.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    UnaryOp,
    conjoin,
    conjuncts,
    rewrite as rewrite_expr,
)
from repro.plan.logical import (
    Filter,
    GroupBy,
    Join,
    LogicalPlan,
    Project,
    Union,
)


def apply_rewrites(plan: LogicalPlan) -> LogicalPlan:
    """Run all rewrite rules to a fixpoint (bounded)."""
    for _ in range(10):
        rewritten = push_filters(fold_constants(plan))
        if rewritten == plan:
            return rewritten
        plan = rewritten
    return plan


# --------------------------------------------------------------------- #
# constant folding


def fold_constants(plan: LogicalPlan) -> LogicalPlan:
    children = plan.children()
    if children:
        new_children = [fold_constants(child) for child in children]
        if any(n is not o for n, o in zip(new_children, children)):
            plan = plan.with_children(new_children)
    if isinstance(plan, Filter):
        folded = _fold_expr(plan.predicate)
        if folded is not plan.predicate:
            plan = Filter(plan.child, folded)
    if isinstance(plan, Project):
        exprs = tuple(_fold_expr(e) for e in plan.exprs)
        if exprs != plan.exprs:
            plan = Project(plan.child, exprs, plan.names)
    return plan


def _fold_expr(expr: Expr) -> Expr:
    def fold(node: Expr) -> Optional[Expr]:
        if isinstance(node, BinaryOp) \
                and _foldable(node.left) and _foldable(node.right) \
                and node.op not in ("AND", "OR"):
            try:
                return Literal(node.evaluate({}))
            except Exception:
                return None
        if isinstance(node, UnaryOp) and node.op == "-" \
                and _foldable(node.operand):
            return Literal(node.evaluate({}))
        return None

    return rewrite_expr(expr, fold)


def _foldable(expr: Expr) -> bool:
    return isinstance(expr, Literal) and expr.param_name is None


# --------------------------------------------------------------------- #
# filter pushdown


def push_filters(plan: LogicalPlan) -> LogicalPlan:
    children = plan.children()
    if children:
        new_children = [push_filters(child) for child in children]
        if any(n is not o for n, o in zip(new_children, children)):
            plan = plan.with_children(new_children)
    if isinstance(plan, Filter):
        pushed = _push_one(plan)
        if pushed is not plan:
            return push_filters(pushed)
    return plan


def _push_one(plan: Filter) -> LogicalPlan:
    child = plan.child
    if isinstance(child, Join):
        return _push_into_join(plan, child)
    if isinstance(child, Project):
        return _push_through_project(plan, child)
    if isinstance(child, Union):
        return _push_into_union(plan, child)
    if isinstance(child, GroupBy):
        return _push_through_groupby(plan, child)
    return plan


def _push_into_join(plan: Filter, join: Join) -> LogicalPlan:
    left_cols = set(join.left.schema)
    # Right-side columns as seen *above* the join exclude dropped ones, but
    # predicates can only reference surviving columns anyway.
    right_cols = set(join.right.schema) - set(join.drop_right)
    to_left: List[Expr] = []
    to_right: List[Expr] = []
    keep: List[Expr] = []
    for conjunct in conjuncts(plan.predicate):
        cols = set(conjunct.columns())
        if cols and cols <= left_cols:
            to_left.append(conjunct)
        elif cols and cols <= right_cols and join.how == "inner":
            # Pushing below the null-producing side of a LEFT join would
            # change semantics, so only inner joins push right.
            to_right.append(conjunct)
        else:
            keep.append(conjunct)
    if not to_left and not to_right:
        return plan
    left = Filter(join.left, conjoin(to_left)) if to_left else join.left
    right = Filter(join.right, conjoin(to_right)) if to_right else join.right
    new_join = Join(left, right, join.left_keys, join.right_keys,
                    join.residual, join.how, join.drop_right)
    remaining = conjoin(keep)
    return Filter(new_join, remaining) if remaining is not None else new_join


def _push_through_project(plan: Filter, project: Project) -> LogicalPlan:
    """Substitute projection definitions into the predicate and sink it."""
    mapping = dict(zip(project.names, project.exprs))

    ok = True

    def substitute(node: Expr) -> Optional[Expr]:
        nonlocal ok
        if isinstance(node, ColumnRef):
            replacement = mapping.get(node.key)
            if replacement is None:
                ok = False
                return None
            if replacement.is_aggregate():
                ok = False
                return None
            return replacement
        return None

    substituted = rewrite_expr(plan.predicate, substitute)
    if not ok:
        return plan
    return Project(Filter(project.child, substituted),
                   project.exprs, project.names)


def _push_into_union(plan: Filter, union: Union) -> LogicalPlan:
    schema = union.schema
    inputs = []
    for child in union.inputs:
        predicate = plan.predicate
        child_schema = child.schema
        if child_schema != schema:
            renames = dict(zip(schema, child_schema))

            def rename(node: Expr, table=renames) -> Optional[Expr]:
                if isinstance(node, ColumnRef) and node.key in table:
                    return ColumnRef(table[node.key])
                return None

            predicate = rewrite_expr(predicate, rename)
        inputs.append(Filter(child, predicate))
    return Union(tuple(inputs), union.all)


def _push_through_groupby(plan: Filter, group: GroupBy) -> LogicalPlan:
    """Push conjuncts that reference only grouping keys below the group."""
    key_names = {k.name for k in group.keys}
    below: List[Expr] = []
    keep: List[Expr] = []
    for conjunct in conjuncts(plan.predicate):
        cols = set(conjunct.columns())
        if cols and cols <= key_names:
            below.append(conjunct)
        else:
            keep.append(conjunct)
    if not below:
        return plan
    pushed = GroupBy(Filter(group.child, conjoin(below)),
                     group.keys, group.aggregates, group.names)
    remaining = conjoin(keep)
    return Filter(pushed, remaining) if remaining is not None else pushed
