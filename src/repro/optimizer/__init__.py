"""Cost-based optimizer with CloudViews view matching and buildout."""

from repro.optimizer.context import Annotation, OptimizerContext
from repro.optimizer.cost import CostModel
from repro.optimizer.pipeline import OptimizedPlan, optimize
from repro.optimizer.rules import apply_rewrites, fold_constants, push_filters
from repro.optimizer.stats import (
    DEFAULT_OVERESTIMATE,
    CardinalityEstimator,
    ObservedStats,
    StatisticsCatalog,
)
from repro.optimizer.view_buildout import (
    BuildOutcome,
    BuildProposal,
    insert_spools,
    view_path_for,
)
from repro.optimizer.view_matching import MatchOutcome, ViewMatch, match_views

__all__ = [
    "Annotation", "OptimizerContext", "CostModel", "OptimizedPlan",
    "optimize", "apply_rewrites", "fold_constants", "push_filters",
    "DEFAULT_OVERESTIMATE", "CardinalityEstimator", "ObservedStats",
    "StatisticsCatalog", "BuildOutcome", "BuildProposal", "insert_spools",
    "view_path_for", "MatchOutcome", "ViewMatch", "match_views",
]
