"""Bottom-up view buildout ("Follow-up optimization" in Figure 5).

"There is a follow-up optimization phase to check (in bottom-up manner) if
any of the subexpressions are candidates for materialization.  If yes, then
an exclusive lock is obtained from the insights service and a spool
operator with two consumers is added to that subexpression." (Section 2.3)

A subexpression is a candidate when its *recurring* signature appears in
the annotations served for this job (that is, workload analysis selected
it), it is reuse-eligible, and no available or in-flight materialization
already exists for its current *strict* signature.  This makes views
just-in-time: "the storage space is consumed only when the views are about
to be reused, and if the workload changes and a selected subexpression is
no longer found in the workload then it will automatically stop being
materialized" (Section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.optimizer.context import OptimizerContext
from repro.plan.logical import LogicalPlan, Scan, Spool, ViewScan
from repro.signatures.signature import (
    is_reuse_eligible,
    recurring_signature,
    strict_signature,
)


@dataclass(frozen=True)
class BuildProposal:
    """Record of one spool insertion (for telemetry)."""

    strict_signature: str
    recurring_signature: str
    view_path: str


@dataclass
class BuildOutcome:
    plan: LogicalPlan
    proposals: List[BuildProposal] = field(default_factory=list)

    @property
    def builds(self) -> bool:
        return bool(self.proposals)


def insert_spools(plan: LogicalPlan, ctx: OptimizerContext,
                  now: float) -> BuildOutcome:
    """Wrap selected subexpressions with Spool operators, bottom up."""
    outcome = BuildOutcome(plan=plan)
    if not ctx.reuse_enabled or not ctx.annotations:
        return outcome
    outcome.plan = _build(plan, ctx, now, outcome.proposals)
    return outcome


def _build(plan: LogicalPlan, ctx: OptimizerContext, now: float,
           proposals: List[BuildProposal]) -> LogicalPlan:
    # Bottom-up: transform children first, then consider this node.
    children = plan.children()
    if children:
        new_children = [_build(child, ctx, now, proposals)
                        for child in children]
        if any(n is not o for n, o in zip(new_children, children)):
            plan = plan.with_children(new_children)

    if len(proposals) >= ctx.max_views_per_job:
        return plan
    if isinstance(plan, (Scan, ViewScan, Spool)):
        # Raw inputs are already stored; views and spools are already views.
        return plan
    if not is_reuse_eligible(plan):
        return plan

    recurring = recurring_signature(plan, ctx.salt)
    annotation = ctx.annotation_for(recurring)
    if annotation is None:
        return plan

    strict = strict_signature(plan, ctx.salt)
    if ctx.view_store.lookup(strict, now) is not None:
        return plan  # already materialized and available
    if ctx.view_store.is_materializing(strict, now):
        return plan  # another job holds the build
    if not ctx.acquire_view_lock(strict):
        ctx.recorder.inc("views.buildout.lock_lost")
        return plan  # lost the race for the exclusive lock
    # Concurrent compilation: the two unlocked checks above may be stale
    # by the time the lock lands (another job sealed or abandoned the view
    # in between).  The lock is the authority; re-check under it and walk
    # away rather than double-registering the materialization.
    if (ctx.view_store.lookup(strict, now) is not None
            or ctx.view_store.is_materializing(strict, now)):
        ctx.release_view_lock(strict)
        ctx.recorder.inc("views.buildout.lock_lost")
        return plan

    ctx.recorder.inc("views.buildout.proposed")
    path = view_path_for(ctx.virtual_cluster, strict)
    ctx.view_store.begin_materialize(
        strict, path, plan.schema, ctx.virtual_cluster, now,
        recurring_signature=recurring, definition=plan)
    proposals.append(BuildProposal(
        strict_signature=strict,
        recurring_signature=recurring,
        view_path=path,
    ))
    return Spool(plan, signature=strict, view_path=path,
                 expiry_seconds=ctx.view_store.ttl_seconds)


def view_path_for(virtual_cluster: str, strict_signature_hex: str) -> str:
    """Views "encode the strict signature in output path" (Figure 5)."""
    return f"cloudviews/{virtual_cluster}/{strict_signature_hex}"
