"""Containment checking over conjunctive range predicates (Section 5.3).

The paper's own example: a view ``SELECT * FROM Sales WHERE CustomerId > 5``
can answer ``... WHERE CustomerId > 6`` with a compensating filter.
General containment is NP-complete; this module handles the tractable
fragment of conjunctive range/equality predicates over the same relation,
which already covers the recurring-filter patterns of cooked workloads.

Lives in the optimizer layer so that view matching can optionally use it
(``OptimizerContext.enable_containment``); :mod:`repro.extensions.generalized`
re-exports it together with the Figure-8 join-set analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.plan.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    Literal,
    conjuncts,
)
from repro.plan.logical import Filter, LogicalPlan, Scan, ViewScan

# --------------------------------------------------------------------- #
# containment over conjunctive range predicates



@dataclass(frozen=True)
class _Range:
    """Closed-open interval constraint on one column.

    ``members`` (an IN-list) is an alternative finite-set constraint; a
    range with ``members`` set admits exactly those values.
    """

    low: Optional[float] = None
    low_inclusive: bool = True
    high: Optional[float] = None
    high_inclusive: bool = True
    equal: Optional[object] = None
    members: Optional[frozenset] = None

    def contains(self, other: "_Range") -> bool:
        """True if every value satisfying ``other`` satisfies ``self``."""
        if self.members is not None:
            if other.members is not None:
                return other.members <= self.members
            if other.equal is not None:
                return other.equal in self.members
            return False  # a range admits infinitely many values
        if other.members is not None:
            return all(self._admits(value) for value in other.members)
        if self.equal is not None:
            return other.equal is not None and other.equal == self.equal
        if other.equal is not None:
            return self._admits(other.equal)
        if self.low is not None:
            if other.low is None:
                return False
            if other.low < self.low:
                return False
            if other.low == self.low and other.low_inclusive \
                    and not self.low_inclusive:
                return False
        if self.high is not None:
            if other.high is None:
                return False
            if other.high > self.high:
                return False
            if other.high == self.high and other.high_inclusive \
                    and not self.high_inclusive:
                return False
        return True

    def _admits(self, value: object) -> bool:
        try:
            if self.low is not None:
                if value < self.low:
                    return False
                if value == self.low and not self.low_inclusive:
                    return False
            if self.high is not None:
                if value > self.high:
                    return False
                if value == self.high and not self.high_inclusive:
                    return False
        except TypeError:
            return False
        return True


class ContainmentChecker:
    """Decides containment for conjunctions of column-vs-literal predicates.

    ``contains(general, specific)`` is sound but deliberately incomplete:
    if any conjunct cannot be normalized into a range constraint the
    checker answers False (never a wrong True).
    """

    def contains(self, general: Optional[Expr],
                 specific: Optional[Expr]) -> bool:
        general_ranges = self._to_ranges(general)
        if general_ranges is None:
            return False
        if not general_ranges:
            return True  # unconstrained view contains everything
        specific_ranges = self._to_ranges(specific)
        if specific_ranges is None:
            return False
        for column, grange in general_ranges.items():
            srange = specific_ranges.get(column)
            if srange is None:
                return False  # query is looser on this column
            if not grange.contains(srange):
                return False
        return True

    def compensation(self, general: Optional[Expr],
                     specific: Optional[Expr]) -> Optional[Expr]:
        """Predicate to re-apply on view rows to answer the query.

        The specific predicate itself is always a valid compensating
        filter; returns None when containment does not hold.
        """
        if not self.contains(general, specific):
            return None
        return specific

    # ------------------------------------------------------------------ #

    def _to_ranges(self, predicate: Optional[Expr]
                   ) -> Optional[Dict[str, _Range]]:
        if predicate is None:
            return {}
        ranges: Dict[str, _Range] = {}
        for conjunct in conjuncts(predicate):
            parsed = self._parse(conjunct)
            if parsed is None:
                return None
            column, new = parsed
            existing = ranges.get(column)
            ranges[column] = _intersect(existing, new) if existing else new
        return ranges

    @staticmethod
    def _parse(conjunct: Expr) -> Optional[Tuple[str, _Range]]:
        if isinstance(conjunct, InList) and not conjunct.negated \
                and isinstance(conjunct.operand, ColumnRef):
            return conjunct.operand.key, _Range(
                members=frozenset(v.value for v in conjunct.values))
        if not isinstance(conjunct, BinaryOp):
            return None
        op, lhs, rhs = conjunct.op, conjunct.left, conjunct.right
        if isinstance(lhs, Literal) and isinstance(rhs, ColumnRef):
            lhs, rhs = rhs, lhs
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        if not (isinstance(lhs, ColumnRef) and isinstance(rhs, Literal)):
            return None
        value = rhs.value
        if op == "=":
            return lhs.key, _Range(equal=value)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return None
        if op == ">":
            return lhs.key, _Range(low=float(value), low_inclusive=False)
        if op == ">=":
            return lhs.key, _Range(low=float(value))
        if op == "<":
            return lhs.key, _Range(high=float(value), high_inclusive=False)
        if op == "<=":
            return lhs.key, _Range(high=float(value))
        return None


def _intersect(a: _Range, b: _Range) -> _Range:
    if a.members is not None or b.members is not None:
        if a.members is not None and b.members is not None:
            return _Range(members=a.members & b.members)
        return a if a.members is not None else b
    if a.equal is not None or b.equal is not None:
        return a if a.equal is not None else b
    low, low_inc = a.low, a.low_inclusive
    if b.low is not None and (low is None or b.low > low
                              or (b.low == low and not b.low_inclusive)):
        low, low_inc = b.low, b.low_inclusive
    high, high_inc = a.high, a.high_inclusive
    if b.high is not None and (high is None or b.high < high
                               or (b.high == high and not b.high_inclusive)):
        high, high_inc = b.high, b.high_inclusive
    return _Range(low=low, low_inclusive=low_inc,
                  high=high, high_inclusive=high_inc)


def generalized_match(plan: LogicalPlan,
                      view_plan: LogicalPlan,
                      view_scan: ViewScan,
                      checker: Optional[ContainmentChecker] = None
                      ) -> Optional[LogicalPlan]:
    """Prototype containment-based rewrite for Filter-over-Scan plans.

    If ``plan`` is ``Filter(Scan(T))``, ``view_plan`` is ``Filter(Scan(T))``
    over the same stream, and the view's predicate contains the query's,
    rewrite the query to a compensating filter over the view.
    """
    checker = checker or ContainmentChecker()
    query = _filter_over_scan(plan)
    view = _filter_over_scan(view_plan)
    if query is None or view is None:
        return None
    query_pred, query_scan = query
    view_pred, view_scan_node = view
    if query_scan.dataset != view_scan_node.dataset:
        return None
    if query_scan.stream_guid != view_scan_node.stream_guid:
        return None
    if tuple(query_scan.columns) != tuple(view_scan_node.columns):
        return None
    compensation = checker.compensation(view_pred, query_pred)
    if compensation is None and not checker.contains(view_pred, query_pred):
        return None
    if compensation is None:
        return view_scan
    return Filter(view_scan, compensation)


def _filter_over_scan(plan: LogicalPlan
                      ) -> Optional[Tuple[Optional[Expr], Scan]]:
    if isinstance(plan, Scan):
        return None, plan
    if isinstance(plan, Filter) and isinstance(plan.child, Scan):
        return plan.predicate, plan.child
    return None
