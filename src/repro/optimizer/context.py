"""Optimizer context: everything the compiler needs for reuse decisions.

Mirrors Figure 5's query-processing path: the compiler "extracts its tags
and fetches the annotations from the insights service.  These annotations
are then parsed and stored in the optimizer context."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.catalog.catalog import Catalog
from repro.obs.recorder import NULL_RECORDER
from repro.optimizer.cost import CostModel
from repro.optimizer.stats import CardinalityEstimator, StatisticsCatalog
from repro.storage.views import ViewStore


@dataclass(frozen=True)
class Annotation:
    """One selected subexpression served by the insights service.

    Keyed by *recurring* signature, because the selection was made on past
    instances and must apply to future instances whose input GUIDs (and
    therefore strict signatures) differ.
    """

    recurring_signature: str
    tag: str
    expected_rows: int = 0
    expected_bytes: int = 0
    virtual_cluster: str = ""


@dataclass
class OptimizerContext:
    """Per-compilation state for view matching and buildout."""

    catalog: Catalog
    view_store: ViewStore
    history: Optional[StatisticsCatalog] = None
    cost_model: CostModel = field(default_factory=CostModel)
    annotations: Dict[str, Annotation] = field(default_factory=dict)
    salt: str = ""
    virtual_cluster: str = "default"
    max_views_per_job: int = 3
    reuse_enabled: bool = True
    overestimate: float = 2.0
    #: Section-5.3 prototype: fall back to containment-based matching
    #: (compensating filters over more general views) when no exact
    #: strict-signature match exists.  Off in the production path.
    enable_containment: bool = False
    #: Callback to the insights service: returns True if the exclusive
    #: view-creation lock for a strict signature was acquired.
    acquire_view_lock: Callable[[str], bool] = lambda signature: True
    #: Callback releasing a lock acquired during this compilation (used
    #: when a post-lock re-check finds the view already handled by a
    #: concurrent job).
    release_view_lock: Callable[[str], None] = lambda signature: None
    #: Debug mode: re-run the soundness analyzer on the pipeline's own
    #: output (post-match, post-buildout) and raise LintError on any
    #: error finding.  See :mod:`repro.analysis.hooks`.
    debug_checks: bool = False
    #: Flight recorder plus the trace correlation for this compilation:
    #: ``trace_id`` is the job id and ``compile_span`` the enclosing
    #: ``job.compile`` span, so matching/buildout spans nest under it.
    recorder: object = NULL_RECORDER
    trace_id: str = ""
    compile_span: object = None

    def estimator(self) -> CardinalityEstimator:
        return CardinalityEstimator(
            self.catalog, self.history,
            overestimate=self.overestimate, salt=self.salt)

    def annotation_for(self, recurring_signature: str) -> Optional[Annotation]:
        return self.annotations.get(recurring_signature)
