"""View lifecycle subsystem: lineage, invalidation, GC, durable catalog.

The paper treats views as "cheap throwaway views" whose hard problem is
*lifecycle* (Sections 2.4, 4, 5): they expire after a week, they go dark
whenever an input stream's GUID changes (bulk updates, GDPR forget
requests), and a runtime upgrade invalidates every signature at once.
This package is the subsystem that drives those transitions end to end:

* :class:`~repro.lifecycle.lineage.LineageRegistry` records, at
  materialization time, which input streams each view transitively reads;
* :class:`~repro.lifecycle.invalidation.InvalidationBus` carries
  ``stream_guid_changed`` / ``gdpr_forget`` / ``runtime_epoch_bumped``
  events to the :class:`~repro.lifecycle.manager.LifecycleManager`, which
  cascade-purges every dependent view;
* :class:`~repro.lifecycle.gc.GcJanitor` sweeps expired views in the
  background and evicts under storage-budget pressure using a
  cost/benefit score;
* :class:`~repro.lifecycle.journal.CatalogJournal` makes the whole
  catalog durable: an append-only JSONL WAL plus periodic snapshots,
  replayed on restart.
"""

from repro.lifecycle.gc import GcJanitor, SweepResult, gc_score
from repro.lifecycle.invalidation import (
    GdprForget,
    InvalidationBus,
    RuntimeEpochBumped,
    StreamGuidChanged,
)
from repro.lifecycle.journal import CatalogJournal, RecoveryReport
from repro.lifecycle.lineage import LineageRegistry, extract_inputs
from repro.lifecycle.manager import LifecycleConfig, LifecycleManager

__all__ = [
    "LifecycleConfig",
    "LifecycleManager",
    "LineageRegistry",
    "extract_inputs",
    "InvalidationBus",
    "StreamGuidChanged",
    "GdprForget",
    "RuntimeEpochBumped",
    "CatalogJournal",
    "RecoveryReport",
    "GcJanitor",
    "SweepResult",
    "gc_score",
]
