"""Durable catalog journal: append-only JSONL WAL + periodic snapshots.

The in-memory :class:`~repro.storage.views.ViewStore` evaporates on
restart, which no long-running service can afford: every view would be
rebuilt from scratch and the feedback loop's reuse counters would reset.
The journal fixes that with the classic recipe:

* every catalog mutation (create / seal / reuse / purge / evict / ...)
  is appended to ``wal.jsonl`` *in applied order* (the view store invokes
  its listeners under the catalog mutex) and flushed;
* periodically the whole state -- view records, aggregate counters,
  lineage table, runtime epoch -- is written to ``snapshot.json``
  (atomically, via rename) and the WAL is truncated;
* on restart, :meth:`CatalogJournal.recover` loads the snapshot and
  replays the WAL tail, reproducing the pre-crash catalog exactly --
  verified by comparing ``ViewStore.catalog_digest`` before and after.

View *definitions* (logical subplans) are deliberately not serialized:
restored views carry ``definition=None``, exactly like the paper's views
restored from path-encoded metadata, so the optional containment matcher
simply skips them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

from repro.common.errors import ReproError, StorageError
from repro.common.sync import RANK_LEAF, TrackedLock
from repro.faults import points as fault_points
from repro.faults.runtime import NULL_FAULTS
from repro.lifecycle.lineage import LineageRegistry
from repro.storage.views import MaterializedView, ViewStore

WAL_FILE = "wal.jsonl"
SNAPSHOT_FILE = "snapshot.json"


def view_to_record(view: MaterializedView) -> Dict[str, object]:
    """Serialize one view; the inverse of :func:`record_to_view`.

    Reuses the identity-free :meth:`MaterializedView.catalog_record`
    layout so a journaled record round-trips to an identical digest.
    """
    return view.catalog_record()


def record_to_view(record: Dict[str, object]) -> MaterializedView:
    """Rebuild a view from its journaled record (``definition=None``)."""
    return MaterializedView(
        signature=str(record["signature"]),
        path=str(record["path"]),
        schema=tuple(record["schema"]),
        virtual_cluster=str(record["virtual_cluster"]),
        created_at=float(record["created_at"]),
        expires_at=float(record["expires_at"]),
        recurring_signature=str(record.get("recurring", "")),
        row_count=int(record.get("rows", 0)),
        size_bytes=int(record.get("bytes", 0)),
        sealed=bool(record.get("sealed", False)),
        sealed_at=(None if record.get("sealed_at") is None
                   else float(record["sealed_at"])),
        purged=bool(record.get("purged", False)),
        reuse_count=int(record.get("reuse_count", 0)),
    )


@dataclass
class RecoveryReport:
    """What :meth:`CatalogJournal.recover` reconstructed."""

    snapshot_views: int = 0
    wal_ops: int = 0
    views_restored: int = 0
    epoch: int = 0
    runtime_version: str = ""
    #: Ops the replay could not apply (op, reason) -- should stay empty.
    skipped: List[List[str]] = field(default_factory=list)
    #: WAL lines that failed to decode (a crash mid-append leaves at
    #: most one torn line; every intact op around it still replays).
    torn_lines: int = 0

    @property
    def recovered_anything(self) -> bool:
        return self.snapshot_views > 0 or self.wal_ops > 0


class CatalogJournal:
    """WAL + snapshot persistence for one view store's lifecycle state."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        # Leaf rank: the WAL-handle guard is acquired *under* the view
        # store's mutex (the mutation feed) and under the invalidation
        # bus, and never takes another lock itself.  The file I/O it
        # covers is the one sanctioned I/O-under-lock site in the tree
        # (flagged warn, not error, by ``concurrency-blocking-under-lock``):
        # appends must hit the WAL in applied order.
        self._mutex = TrackedLock("lifecycle.journal", RANK_LEAF + 10)
        self._wal: Optional[TextIO] = None
        self.ops_written = 0
        self.ops_since_snapshot = 0
        self.snapshots_written = 0
        #: The session's fault runtime; the lifecycle manager installs a
        #: live one so torn/partial WAL writes can be injected.
        self.faults = NULL_FAULTS
        #: True after an injected torn write: the WAL's final line is a
        #: partial record with no newline.  The next successful append
        #: self-heals by starting on a fresh line, exactly as a restarted
        #: process appending after a crash would.
        self._torn_pending = False
        #: Undecodable lines seen by the most recent :meth:`wal_ops` scan.
        self.last_scan_torn = 0

    @property
    def wal_path(self) -> str:
        return os.path.join(self.directory, WAL_FILE)

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.directory, SNAPSHOT_FILE)

    # ------------------------------------------------------------------ #
    # the write-ahead log

    def append(self, op: str, **payload: object) -> None:
        """Durably record one catalog mutation, in applied order.

        The ``journal.append`` fault point simulates a crash mid-write: a
        ``torn`` fault persists a *prefix* of the record (no trailing
        newline -- the classic torn JSONL line) before raising, a
        ``storage`` fault fails before any byte lands.  Either way the
        caller sees :class:`StorageError`; the op is not counted.
        """
        self.append_record(op, payload)

    def append_record(self, op: str, payload: Dict[str, object],
                      torn: bool = False) -> None:
        """:meth:`append` with the torn-write decision exposed.

        The sharded deployment draws fault outcomes in the *parent*
        process (one session RNG) and commands the worker-side journal --
        which runs with faults disabled -- to tear the write via
        ``torn=True``.  With ``torn=False`` this is exactly the classic
        path, consulting this journal's own fault runtime.
        """
        line = json.dumps({"op": op, **payload}, sort_keys=True)
        with self._mutex:
            if not torn:
                outcome = self.faults.check(fault_points.JOURNAL_APPEND)
                if outcome.kind == "storage":
                    raise StorageError(
                        f"injected storage fault writing op {op!r}")
                torn = outcome.kind == "torn"
            if self._wal is None:
                self._wal = open(self.wal_path, "a", encoding="utf-8")
            if self._torn_pending:
                # Start on a fresh line past the torn partial record.
                self._wal.write("\n")
                self._torn_pending = False
            if torn:
                self._wal.write(line[:max(1, len(line) // 2)])
                self._wal.flush()
                self._torn_pending = True
                raise StorageError(
                    f"injected torn write for op {op!r}")
            self._wal.write(line + "\n")
            self._wal.flush()
            self.ops_written += 1
            self.ops_since_snapshot += 1

    def wal_ops(self) -> List[Dict[str, object]]:
        """The current WAL contents, skipping undecodable lines.

        A crash mid-append leaves a torn line (usually, but not always,
        the final one: a process that crashed, healed, and crashed again
        can leave one mid-file).  Each torn line is *skipped* rather than
        treated as end-of-log -- every intact op after it still counts --
        and tallied in :attr:`last_scan_torn`.  The old behavior of
        truncating the replay at the first bad line silently dropped
        every op a healed journal appended afterwards.
        """
        self.last_scan_torn = 0
        if not os.path.exists(self.wal_path):
            return []
        ops: List[Dict[str, object]] = []
        with open(self.wal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    ops.append(json.loads(line))
                except json.JSONDecodeError:
                    self.last_scan_torn += 1
        return ops

    # ------------------------------------------------------------------ #
    # snapshots

    def snapshot(self, store: ViewStore, lineage: LineageRegistry,
                 epoch: int = 0, runtime_version: str = "") -> str:
        """Write a full-state snapshot and truncate the WAL.

        The snapshot lands via write-to-temp + rename so a crash mid-write
        leaves the previous snapshot intact -- which is also why the
        ``journal.snapshot`` fault point (fired before the rename) only
        ever costs the *new* snapshot: recovery falls back to the
        previous one plus the still-untruncated WAL.
        """
        self.faults.fire(fault_points.JOURNAL_SNAPSHOT)
        payload = {
            "views": [view_to_record(v) for v in
                      sorted(store.views(), key=lambda v: v.signature)],
            "counters": store.counters(),
            "lineage": lineage.snapshot(),
            "epoch": epoch,
            "runtime_version": runtime_version,
        }
        with self._mutex:
            tmp = self.snapshot_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.snapshot_path)
            if self._wal is not None:
                self._wal.close()
                self._wal = None
            open(self.wal_path, "w", encoding="utf-8").close()
            self.ops_since_snapshot = 0
            self.snapshots_written += 1
        return self.snapshot_path

    # ------------------------------------------------------------------ #
    # recovery

    def recover(self, store: ViewStore,
                lineage: LineageRegistry) -> RecoveryReport:
        """Rebuild ``store`` and ``lineage`` from snapshot + WAL tail.

        Must run on a *fresh* store, before the journal's own listener is
        attached (or replay would re-journal itself).
        """
        if store.views():
            raise StorageError("journal recovery requires an empty store")
        report = RecoveryReport()
        if os.path.exists(self.snapshot_path):
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            for record in payload.get("views", ()):
                store.restore(record_to_view(record))
            store.restore_counters(payload.get("counters", {}))
            lineage.restore(payload.get("lineage", {}))
            report.snapshot_views = len(payload.get("views", ()))
            report.epoch = int(payload.get("epoch", 0))
            report.runtime_version = str(payload.get("runtime_version", ""))
        for op in self.wal_ops():
            report.wal_ops += 1
            try:
                self._apply(store, lineage, op, report)
            except (ReproError, KeyError, ValueError, TypeError):
                # A malformed-but-decodable op (half a payload survived
                # the tear) must not abort recovery of everything else.
                report.skipped.append([str(op.get("op")), "malformed"])
        report.torn_lines = self.last_scan_torn
        report.views_restored = len(store.views())
        return report

    def _apply(self, store: ViewStore, lineage: LineageRegistry,
               op: Dict[str, object], report: RecoveryReport) -> None:
        """Replay one WAL op with the same counter arithmetic as the live
        path (so restored counters keep their monotonic meaning)."""
        kind = op.get("op")
        signature = str(op.get("signature", ""))
        if kind == "created":
            view = record_to_view(op["view"])
            store.restore(view)
            lineage.record(view.signature, frozenset(
                (d, g) for d, g in op.get("lineage", ())))
            return
        if kind == "epoch":
            report.epoch = int(op.get("epoch", report.epoch))
            report.runtime_version = str(
                op.get("version", report.runtime_version))
            return
        view = store.get(signature)
        if kind == "sealed":
            if view is None:
                report.skipped.append([str(kind), signature])
                return
            view.sealed = True
            view.sealed_at = float(op["sealed_at"])
            view.row_count = int(op["rows"])
            view.size_bytes = int(op["bytes"])
            store.total_created += 1
        elif kind == "reused":
            if view is None:
                report.skipped.append([str(kind), signature])
                return
            view.reuse_count += 1
            store.total_reused += 1
        elif kind == "purged":
            if view is None:
                report.skipped.append([str(kind), signature])
                return
            view.purged = True
            store.total_purged += 1
        elif kind in ("abandoned", "evicted", "removed"):
            if view is not None:
                store.discard(signature)
            lineage.forget(signature)
            if kind == "evicted":
                store.total_expired += 1
            elif kind == "removed":
                store.total_gc_evicted += 1
        else:
            report.skipped.append([str(kind), signature])

    # ------------------------------------------------------------------ #
    # lifecycle

    def stats(self) -> Dict[str, object]:
        return {
            "directory": self.directory,
            "ops_written": self.ops_written,
            "ops_since_snapshot": self.ops_since_snapshot,
            "snapshots_written": self.snapshots_written,
            "wal_bytes": (os.path.getsize(self.wal_path)
                          if os.path.exists(self.wal_path) else 0),
            "has_snapshot": os.path.exists(self.snapshot_path),
            "torn_pending": self._torn_pending,
        }

    def close(self) -> None:
        with self._mutex:
            if self._wal is not None:
                self._wal.close()
                self._wal = None
