"""The invalidation bus: typed lifecycle events, delivered in order.

Three things kill views in production (Sections 2.4 and 4): an input
stream's GUID changing under a bulk update, a GDPR forget request (which
also installs a new GUID but additionally requires the *old* artifacts to
disappear), and a runtime upgrade changing every signature at once.  The
bus carries these as typed events from wherever they originate (the
catalog's version observers, operator tooling, the ``repro gc`` CLI) to
the :class:`~repro.lifecycle.manager.LifecycleManager`, which runs the
purge cascade.

Delivery is synchronous and in publication order -- an invalidation must
take effect before the publisher continues, or a job compiled in between
could still match a doomed view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.common.sync import RANK_LIFECYCLE, TrackedRLock


@dataclass(frozen=True)
class LifecycleEvent:
    """Base class for bus events."""

    at: float = 0.0

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class StreamGuidChanged(LifecycleEvent):
    """A dataset was regenerated (bulk update): new GUID installed."""

    dataset: str = ""
    old_guid: str = ""
    new_guid: str = ""


@dataclass(frozen=True)
class GdprForget(LifecycleEvent):
    """Right-to-erasure on a dataset: views over *any* of its versions
    must be purged, not merely left to expire."""

    dataset: str = ""
    new_guid: str = ""


@dataclass(frozen=True)
class RuntimeEpochBumped(LifecycleEvent):
    """The runtime (signature salt) changed: every signature goes dark."""

    version: str = ""
    epoch: int = 0


Handler = Callable[[LifecycleEvent], None]


class InvalidationBus:
    """Synchronous pub/sub for lifecycle events.

    Publication holds one lock for the whole dispatch so concurrent
    publishers (a bulk update on one thread, a GDPR request on another)
    serialize: each event's cascade completes before the next begins.
    """

    def __init__(self) -> None:
        # The outermost coordination lock in the process: held across a
        # whole purge cascade (store, insights, catalog, journal), so it
        # carries the highest rank in the hierarchy.  Reentrant because a
        # cascade's side effects may publish follow-up events.
        self._mutex = TrackedRLock("lifecycle.bus", RANK_LIFECYCLE + 20)
        self._handlers: List[Handler] = []
        self._published: List[LifecycleEvent] = []

    def subscribe(self, handler: Handler) -> None:
        with self._mutex:
            self._handlers.append(handler)

    def publish(self, event: LifecycleEvent) -> None:
        with self._mutex:
            self._published.append(event)
            for handler in list(self._handlers):
                handler(event)

    @property
    def published(self) -> List[LifecycleEvent]:
        """Every event seen so far (tests and operator tooling)."""
        with self._mutex:
            return list(self._published)
