"""Background GC janitor: expiry sweeps, purge collection, budget eviction.

"Our current eviction policies expire each of the views after one week of
creation, thus consuming a fixed amount of storage in the stable state"
(Section 3.1) -- but the serial simulation only evicted at day boundaries,
and nothing ever reclaimed purged entries or enforced an actual byte
budget.  The janitor is a clock-driven daemon thread (same shape as the
concurrent scheduler) that periodically runs the lifecycle manager's
sweep:

1. evict expired views (skipping any pinned by an in-flight reader);
2. hard-remove catalog entries whose views were purged (user request or
   invalidation cascade) once no reader pins them;
3. under storage-budget pressure, evict live views in ascending
   cost/benefit order -- following the cloud cost-model framing of
   Perriot et al.: a view earns its storage through reuse, and old, large,
   rarely-reused views go first.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.clock import SECONDS_PER_DAY
from repro.common.sync import RANK_LIFECYCLE, TrackedLock
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.storage.views import MaterializedView


def gc_score(view: MaterializedView, now: float) -> float:
    """Cost/benefit retention score; the *lowest*-scored view evicts first.

    Benefit grows with observed reuse; cost grows with the bytes held and
    with age (an old view is closer to expiry, so the compute it could
    still save shrinks).  The +1 terms keep fresh, never-reused views from
    dividing by zero without dominating genuinely hot views.
    """
    age_days = max(0.0, now - view.created_at) / SECONDS_PER_DAY
    return (1.0 + view.reuse_count) / ((1.0 + view.size_bytes)
                                       * (1.0 + age_days))


@dataclass
class SweepResult:
    """Outcome of one GC sweep (the benchmark's unit of measurement)."""

    at: float = 0.0
    expired: int = 0
    removed: int = 0
    budget_evicted: int = 0
    storage_before: int = 0
    storage_after: int = 0
    pinned_skipped: int = 0
    duration_seconds: float = 0.0
    evicted_signatures: List[str] = field(default_factory=list)

    @property
    def reclaimed_bytes(self) -> int:
        return max(0, self.storage_before - self.storage_after)

    @property
    def total_collected(self) -> int:
        return self.expired + self.removed + self.budget_evicted


class GcJanitor:
    """Daemon thread driving periodic sweeps against a simulated clock.

    ``sweep`` is the lifecycle manager's synchronous sweep entry point;
    ``clock`` supplies the *simulated* "now" each wakeup (wall time by
    default, a fake in tests).  The thread itself paces on wall time.
    """

    def __init__(self, sweep: Callable[[float], SweepResult],
                 interval_seconds: float = 60.0,
                 clock: Optional[Callable[[], float]] = None,
                 recorder=NULL_RECORDER) -> None:
        self._sweep = sweep
        self.interval_seconds = interval_seconds
        self.clock = clock or time.time
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._mutex = TrackedLock("lifecycle.gc", RANK_LIFECYCLE + 10)
        self.recorder = recorder
        self.sweeps = 0
        self.last_result: Optional[SweepResult] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-gc-janitor", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> bool:
        """Shut the janitor down; returns True once no thread remains.

        Idempotent: calling again after a successful (or never-started)
        stop is a no-op returning True.  If the thread fails to join
        within ``timeout`` (a sweep wedged on a lock or a huge catalog),
        the daemon is *not* forgotten: the thread handle is kept so a
        later ``stop()`` can try again, and the failure is reported both
        by the return value and a ``gc.stop_timeout`` recorder event
        instead of being silently leaked.
        """
        self._stop.set()
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout=timeout)
        if thread.is_alive():
            self.recorder.event(obs_events.GC_STOP_TIMEOUT,
                                timeout_seconds=timeout,
                                thread=thread.name, sweeps=self.sweeps)
            return False
        self._thread = None
        return True

    def run_once(self, now: Optional[float] = None) -> SweepResult:
        """One synchronous sweep (CLI ``repro gc --sweep`` and tests)."""
        result = self._sweep(self.clock() if now is None else now)
        with self._mutex:
            self.sweeps += 1
            self.last_result = result
        return result

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - janitor must not die
                # A sweep hitting a transient race (view vanished between
                # listing and removal) must not kill the daemon; the next
                # wakeup retries.  Real failures surface through the
                # flight recorder's gc events drying up.
                continue
