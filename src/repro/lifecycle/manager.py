"""The lifecycle manager: where lineage, invalidation, GC, and the
journal meet the engine.

One :class:`LifecycleManager` attaches to one
:class:`~repro.engine.engine.ScopeEngine` and takes over the view
lifecycle end to end:

* it subscribes to the view store's mutation feed, recording lineage for
  every view at materialization time and journaling every mutation;
* it subscribes to the catalog's stream-version feed, so a bulk update or
  GDPR forget automatically publishes the matching invalidation event on
  the :class:`~repro.lifecycle.invalidation.InvalidationBus`;
* it handles those events by cascade-purging exactly the dependent views
  (by lineage), force-releasing their build locks, and bumping the
  insights-service annotation generation so every client-side cache of
  stale signatures drops at once;
* its :meth:`sweep` is the GC janitor's unit of work: expiry eviction,
  purged-entry collection (blobs included), and storage-budget eviction
  in ascending cost/benefit order;
* with a journal directory configured, the whole catalog survives
  restarts: construction replays the snapshot + WAL before wiring any
  listeners, and :meth:`close` leaves a fresh snapshot behind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.common.errors import ConfigError, ReproError
from repro.faults import points as fault_points
from repro.faults.runtime import NULL_FAULTS
from repro.lifecycle.gc import GcJanitor, SweepResult, gc_score
from repro.lifecycle.invalidation import (
    GdprForget,
    InvalidationBus,
    LifecycleEvent,
    RuntimeEpochBumped,
    StreamGuidChanged,
)
from repro.lifecycle.journal import CatalogJournal, RecoveryReport, view_to_record
from repro.lifecycle.lineage import LineageRegistry, extract_inputs
from repro.obs import events as obs_events


@dataclass(kw_only=True)
class LifecycleConfig:
    """Knobs of the lifecycle subsystem (``Session(lifecycle=...)``)."""

    #: Directory for the durable catalog journal; ``None`` keeps the
    #: catalog in-memory only (the pre-lifecycle behavior).
    journal_dir: Optional[str] = None
    #: WAL ops between automatic snapshots.
    snapshot_every_ops: int = 512
    #: Janitor wakeup cadence (wall-clock seconds).
    gc_interval_seconds: float = 60.0
    #: Byte budget enforced by the sweep's eviction pass; ``None`` leaves
    #: expiry as the only storage control (the paper's §3.1 posture).
    storage_budget_bytes: Optional[int] = None
    #: Start the background janitor thread on attach.  Off by default:
    #: simulations drive :meth:`LifecycleManager.sweep` from simulated
    #: time instead.
    start_janitor: bool = False
    #: Source of "now" for the janitor's autonomous sweeps.
    clock: Optional[Callable[[], float]] = None
    #: Also delete a collected view's materialized rows from the data
    #: store (the paper's users can "see the CloudViews-generated files").
    delete_blobs: bool = True

    def __post_init__(self) -> None:
        if self.snapshot_every_ops < 1:
            raise ConfigError("snapshot_every_ops must be >= 1, got "
                              f"{self.snapshot_every_ops}")
        if self.gc_interval_seconds <= 0:
            raise ConfigError("gc_interval_seconds must be > 0, got "
                              f"{self.gc_interval_seconds}")
        if (self.storage_budget_bytes is not None
                and self.storage_budget_bytes < 0):
            raise ConfigError("storage_budget_bytes must be >= 0, got "
                              f"{self.storage_budget_bytes}")


class LifecycleManager:
    """Drives the view lifecycle of one engine; see the module docstring."""

    def __init__(self, engine, config: Optional[LifecycleConfig] = None,
                 faults=None, journal=None):
        self.engine = engine
        self.config = config or LifecycleConfig()
        self.faults = faults if faults is not None else NULL_FAULTS
        #: An externally-built journal (the sharded session injects a
        #: :class:`~repro.shard.ShardedCatalogJournal`); when ``None``
        #: the classic single-directory journal is built from the config.
        self._injected_journal = journal
        self.store = engine.view_store
        self.insights = engine.insights
        self.catalog = engine.catalog
        self.lineage = LineageRegistry()
        self.bus = InvalidationBus()
        self.epoch = 0
        self.cascades = 0
        #: Journal appends that failed (injected torn/partial writes).
        #: The mutation itself is already applied in memory -- the WAL
        #: just missed one op, which the next snapshot makes durable.
        self.journal_errors = 0
        #: Backend drops that failed during a sweep; the blob stays for
        #: the next sweep to retry.
        self.blob_delete_failures = 0
        self.last_recovery: Optional[RecoveryReport] = None
        self.journal: Optional[CatalogJournal] = None
        if self._injected_journal is not None:
            self.journal = self._injected_journal
            self.journal.faults = self.faults
            self._recover()
        elif self.config.journal_dir is not None:
            self.journal = CatalogJournal(self.config.journal_dir)
            self.journal.faults = self.faults
            self._recover()
        # Listener wiring strictly after recovery: replay must not
        # re-journal itself.
        self.store.add_listener(self._on_store_mutation)
        self.catalog.subscribe(self._on_stream_version)
        self.bus.subscribe(self._handle_event)
        self.janitor = GcJanitor(
            self.sweep,
            interval_seconds=self.config.gc_interval_seconds,
            clock=self.config.clock or time.time,
            recorder=self.recorder)
        if self.config.start_janitor:
            self.janitor.start()
        engine.lifecycle = self

    @property
    def recorder(self):
        return self.engine.recorder

    # ------------------------------------------------------------------ #
    # recovery

    def _recover(self) -> None:
        report = self.journal.recover(self.store, self.lineage)
        self.last_recovery = report
        self.epoch = report.epoch
        if report.runtime_version:
            self.engine.set_runtime_version(report.runtime_version)
        if report.recovered_anything:
            self.recorder.event(
                obs_events.JOURNAL_RECOVERED,
                snapshot_views=report.snapshot_views,
                wal_ops=report.wal_ops,
                views_restored=report.views_restored,
                epoch=report.epoch)
        if report.torn_lines:
            self.recorder.inc("journal.torn_tails", report.torn_lines)
            self.recorder.event(
                obs_events.JOURNAL_TORN_TAIL,
                torn_lines=report.torn_lines,
                wal_ops=report.wal_ops)

    # ------------------------------------------------------------------ #
    # the view store's mutation feed (called with the store mutex held)

    def _on_store_mutation(self, op: str, **payload) -> None:
        if op == "created":
            view = payload["view"]
            inputs = extract_inputs(view.definition, self.lineage)
            self.lineage.record(view.signature, inputs)
            self._journal("created", view=view_to_record(view),
                          lineage=sorted([d, g] for d, g in inputs))
        elif op == "sealed":
            view = payload["view"]
            self._journal("sealed", signature=view.signature,
                          sealed_at=view.sealed_at, rows=view.row_count,
                          bytes=view.size_bytes)
        elif op == "reused":
            self._journal("reused", signature=payload["signature"])
        elif op == "purged":
            self._journal("purged", signature=payload["signature"],
                          reason=payload.get("reason", "purged"))
        elif op in ("abandoned", "evicted", "removed"):
            signature = payload["signature"]
            self.lineage.forget(signature)
            self._journal(op, signature=signature,
                          **({"reason": payload["reason"]}
                             if "reason" in payload else {}))

    def _journal(self, op: str, **payload) -> None:
        if self.journal is None:
            return
        try:
            self.journal.append(op, **payload)
            if (self.journal.ops_since_snapshot
                    >= self.config.snapshot_every_ops):
                self.snapshot()
        except ReproError:
            # Runs under the store mutex, so only counters here (no
            # recorder events).  The in-memory mutation already applied;
            # a lost WAL op (or deferred snapshot) costs durability of
            # that op until the next snapshot captures full state --
            # never correctness of the live catalog, and never the
            # caller's job.
            self.journal_errors += 1
            self.recorder.inc("journal.write_errors")

    # ------------------------------------------------------------------ #
    # the catalog's stream-version feed

    def _on_stream_version(self, version, previous) -> None:
        if previous is None or version.reason == "initial":
            return
        if version.reason == "gdpr-forget":
            self.bus.publish(GdprForget(
                at=version.created_at, dataset=version.dataset,
                new_guid=version.guid))
        else:
            self.bus.publish(StreamGuidChanged(
                at=version.created_at, dataset=version.dataset,
                old_guid=previous.guid, new_guid=version.guid))

    # ------------------------------------------------------------------ #
    # invalidation events

    def _handle_event(self, event: LifecycleEvent) -> None:
        if isinstance(event, StreamGuidChanged):
            stale = self._stale_dependents(event.dataset)
            self._cascade(stale, reason="stream-guid-changed", at=event.at,
                          dataset=event.dataset)
        elif isinstance(event, GdprForget):
            # Erasure is stricter than staleness: *every* view derived
            # from any version of the stream must go, and its files with
            # it -- expiry alone is not compliance.
            dependents = self.lineage.views_reading_dataset(event.dataset)
            self._cascade(dependents, reason="gdpr-forget", at=event.at,
                          dataset=event.dataset)
        elif isinstance(event, RuntimeEpochBumped):
            if self.engine.runtime_version != event.version:
                self.engine.set_runtime_version(event.version)
            everything = {v.signature for v in self.store.views()}
            # Withdraw every annotation first (salted signatures can no
            # longer match), then purge the views they produced.
            self.insights.publish([])
            self._cascade(everything, reason="epoch-bumped", at=event.at,
                          bump_generation=False)
            self._journal("epoch", version=event.version, epoch=event.epoch)
            self.recorder.event(obs_events.EPOCH_BUMPED, at=event.at,
                                version=event.version, epoch=event.epoch)

    def _stale_dependents(self, dataset: str) -> Set[str]:
        """Dependents of ``dataset`` built over a non-current GUID."""
        current = (self.catalog.current_guid(dataset)
                   if self.catalog.has(dataset) else None)
        stale: Set[str] = set()
        for signature in self.lineage.views_reading_dataset(dataset):
            for input_dataset, guid in self.lineage.inputs_of(signature):
                if input_dataset == dataset and guid != current:
                    stale.add(signature)
                    break
        return stale

    def _cascade(self, signatures: Set[str], reason: str, at: float,
                 dataset: str = "", bump_generation: bool = True
                 ) -> List[str]:
        """Purge every dependent view; release locks; invalidate caches."""
        purged: List[str] = []
        for signature in sorted(signatures):
            view = self.store.get(signature)
            if view is None:
                continue
            # An unsealed dependent is mid-build: its producer holds the
            # exclusive view lock.  Force-release so the (doomed) build
            # cannot wedge the signature forever.
            self.insights.force_release_lock(signature)
            self.store.purge(signature, reason=reason)
            purged.append(signature)
        if purged and bump_generation:
            # One generation bump for the whole cascade: every client
            # cache keyed by generation drops its stale annotations.
            self.insights.bump_generation()
        if purged or reason == "epoch-bumped":
            self.cascades += 1
            self.recorder.event(
                obs_events.LIFECYCLE_CASCADE, at=at, reason=reason,
                dataset=dataset, purged=len(purged))
        return purged

    # ------------------------------------------------------------------ #
    # operator entry points

    def forget_stream(self, dataset: str, at: float = 0.0) -> int:
        """Apply a GDPR forget to ``dataset``: new GUID + purge cascade.

        Metadata-level entry point (the CLI's ``repro gc --forget``); use
        :meth:`ScopeEngine.gdpr_forget` to also rewrite the stream's rows.
        Returns the number of dependent views purged.  When the dataset is
        not in the catalog (a recovered journal carries lineage but not
        the dataset registry) the invalidation event is published
        directly.
        """
        before = self.store.counters()["total_purged"]
        if self.catalog.has(dataset):
            # The catalog observer turns the new GUID into the event.
            self.catalog.gdpr_forget(dataset, at=at)
        else:
            self.bus.publish(GdprForget(at=at, dataset=dataset,
                                        new_guid=""))
        return self.store.counters()["total_purged"] - before

    def bump_epoch(self, version: Optional[str] = None,
                   at: float = 0.0) -> str:
        """Roll the runtime epoch: new signature salt, all views dark."""
        self.epoch += 1
        if version is None:
            base = self.engine.runtime_version.split("+epoch")[0]
            version = f"{base}+epoch{self.epoch}"
        self.bus.publish(RuntimeEpochBumped(
            at=at, version=version, epoch=self.epoch))
        return version

    # ------------------------------------------------------------------ #
    # GC sweep (the janitor's unit of work)

    def sweep(self, now: float = 0.0) -> SweepResult:
        """One GC pass: expiry, purged-entry collection, budget eviction.

        An injected storage fault at ``gc.sweep`` aborts the pass before
        it touches anything; GC is idempotent, so the next sweep simply
        redoes the work.  Callers (the janitor thread, ``repro gc``)
        never see the exception.
        """
        started = time.perf_counter()
        result = SweepResult(at=now)
        try:
            self.faults.fire(fault_points.GC_SWEEP)
        except ReproError as error:
            self.recorder.inc("gc.sweeps_aborted")
            self.recorder.event(obs_events.GC_SWEEP_ABORTED, at=now,
                                error=str(error))
            return result
        result.storage_before = self.store.storage_in_use(now)

        expired_views = self.store.evict_expired(now)
        result.expired = len(expired_views)
        for view in expired_views:
            self._delete_blob(view.path)

        for view in self.store.views():
            collectable = view.purged or (view.sealed
                                          and now >= view.expires_at)
            if not collectable:
                continue
            if view.pins > 0:
                result.pinned_skipped += 1
                continue
            if self.store.remove(view.signature, reason="gc"):
                result.removed += 1
                self._delete_blob(view.path)

        budget = self.config.storage_budget_bytes
        if budget is not None:
            result.budget_evicted = self._evict_to_budget(now, budget,
                                                          result)

        result.storage_after = self.store.storage_in_use(now)
        result.duration_seconds = time.perf_counter() - started
        self.recorder.event(
            obs_events.GC_SWEEP, at=now,
            expired=result.expired, removed=result.removed,
            budget_evicted=result.budget_evicted,
            pinned_skipped=result.pinned_skipped,
            reclaimed_bytes=result.reclaimed_bytes,
            duration_seconds=round(result.duration_seconds, 6))
        return result

    def _evict_to_budget(self, now: float, budget: int,
                         result: SweepResult) -> int:
        """Evict live views, worst cost/benefit first, until under budget."""
        evicted = 0
        candidates = sorted(
            (v for v in self.store.views() if v.available(now)),
            key=lambda v: gc_score(v, now))
        in_use = self.store.storage_in_use(now)
        for view in candidates:
            if in_use <= budget:
                break
            if view.pins > 0:
                result.pinned_skipped += 1
                continue
            if self.store.remove(view.signature, reason="budget"):
                evicted += 1
                in_use -= view.size_bytes
                result.evicted_signatures.append(view.signature)
                self._delete_blob(view.path)
        return evicted

    def _delete_blob(self, path: str) -> None:
        if not self.config.delete_blobs:
            return
        # Eviction must reach the execution backend, not just the
        # in-memory store: on an external backend (SQLite) the view is a
        # real table, and skipping the drop would leak storage the view
        # catalog no longer tracks after a purge cascade or GC sweep.
        backend = getattr(self.engine, "backend", None)
        if backend is not None:
            try:
                backend.drop_view(path)
            except ReproError as error:
                # Leave the blob for a later sweep; a failed drop must
                # not abort the rest of the pass.
                self.blob_delete_failures += 1
                self.recorder.inc("gc.blob_delete_failures")
                self.recorder.event(obs_events.VIEW_DROP_FAILED,
                                    path=path, error=str(error))
            return
        store = getattr(self.engine, "store", None)
        if store is not None and store.has(path):
            store.delete(path)

    # ------------------------------------------------------------------ #
    # persistence and shutdown

    def snapshot(self) -> Optional[str]:
        """Write a full-state snapshot (and truncate the WAL)."""
        if self.journal is None:
            return None
        path = self.journal.snapshot(
            self.store, self.lineage, epoch=self.epoch,
            runtime_version=self.engine.runtime_version)
        self.recorder.event(obs_events.JOURNAL_SNAPSHOT,
                            views=len(self.store.views()),
                            epoch=self.epoch)
        return path

    def stats(self, now: float = 0.0) -> Dict[str, object]:
        """Operator-facing summary (``repro gc --stats``)."""
        views = self.store.views()
        out: Dict[str, object] = {
            "views_total": len(views),
            "views_available": sum(1 for v in views if v.available(now)),
            "views_purged": sum(1 for v in views if v.purged),
            "views_pinned": sum(1 for v in views if v.pins > 0),
            "storage_in_use": self.store.storage_in_use(now),
            "storage_budget": self.config.storage_budget_bytes,
            "lineage_entries": len(self.lineage),
            "lineage_datasets": len(self.lineage.datasets()),
            "epoch": self.epoch,
            "runtime_version": self.engine.runtime_version,
            "cascades": self.cascades,
            "gc_sweeps": self.janitor.sweeps,
            "journal_errors": self.journal_errors,
            "blob_delete_failures": self.blob_delete_failures,
        }
        out.update({f"counter_{k}": v
                    for k, v in self.store.counters().items()})
        if self.journal is not None:
            out.update({f"journal_{k}": v
                        for k, v in self.journal.stats().items()})
        return out

    def close(self) -> None:
        """Stop the janitor, snapshot, and detach from the engine."""
        # Refresh the janitor's recorder first: a FlightRecorder may have
        # been installed on the engine after construction, and a stop
        # timeout must land in the same capture as everything else.
        self.janitor.recorder = self.recorder
        self.janitor.stop()
        if self.journal is not None:
            # Clean shutdown runs with injection disabled: the
            # ``journal.snapshot`` point models losing a *periodic*
            # snapshot (recovery falls back to the previous one plus the
            # WAL); failing the final shutdown snapshot would instead
            # turn every chaos-campaign teardown into a spurious error.
            self.journal.faults = NULL_FAULTS
            self.snapshot()
            self.journal.close()
        self.store.remove_listener(self._on_store_mutation)
        self.catalog.unsubscribe(self._on_stream_version)
        if getattr(self.engine, "lifecycle", None) is self:
            self.engine.lifecycle = None
