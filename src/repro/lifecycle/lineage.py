"""View -> input-stream lineage: who reads what, transitively.

Strict signatures already *encode* input GUIDs (which is how matching
self-invalidates), but they are one-way hashes: given "stream X changed"
there is no way back from a signature to the views that read X.  The
registry maintains that reverse map explicitly, recorded at
materialization time, so invalidation events can cascade to exactly the
dependent views -- the paper's Section 4 recipe ("the input GUIDs are
updated both with recurring updates and with GDPR related updates")
turned into an index instead of a full catalog scan.

Lineage is *transitive*: a view whose defining subplan scans another view
inherits that view's inputs, so forgetting a stream reaches views built
on top of views.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.common.sync import RANK_LEAF, TrackedLock

#: One lineage edge: (dataset name, stream GUID the view was built over).
Input = Tuple[str, str]


def extract_inputs(definition: object,
                   registry: Optional["LineageRegistry"] = None
                   ) -> FrozenSet[Input]:
    """The (dataset, guid) pairs a defining subplan transitively reads.

    ``ViewScan`` nodes contribute the lineage of the referenced view (from
    ``registry``), which is what makes lineage transitive for views built
    over views.
    """
    from repro.plan.logical import Scan, ViewScan

    inputs: Set[Input] = set()
    if definition is None:
        return frozenset()
    for node in definition.walk():
        if isinstance(node, Scan) and node.stream_guid:
            inputs.add((node.dataset, node.stream_guid))
        elif isinstance(node, ViewScan) and registry is not None:
            inputs.update(registry.inputs_of(node.signature))
    return frozenset(inputs)


class LineageRegistry:
    """Forward and reverse index between views and their input streams.

    Thread-safe: recorded from compiling worker threads (via the view
    store's mutation feed) and read by the invalidation path and the GC
    janitor.
    """

    def __init__(self) -> None:
        # Leaf rank: recorded under the view store's mutation feed and
        # read under the invalidation bus; never acquires anything.
        self._mutex = TrackedLock("lifecycle.lineage", RANK_LEAF + 20)
        #: view strict signature -> frozenset of (dataset, guid).
        self._inputs: Dict[str, FrozenSet[Input]] = {}
        #: dataset name -> set of dependent view signatures.
        self._by_dataset: Dict[str, Set[str]] = {}
        #: stream GUID -> set of dependent view signatures.
        self._by_guid: Dict[str, Set[str]] = {}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._inputs)

    # ------------------------------------------------------------------ #
    # writes

    def record(self, signature: str, inputs: FrozenSet[Input]) -> None:
        """Install (or overwrite) one view's lineage."""
        with self._mutex:
            self._forget_locked(signature)
            self._inputs[signature] = frozenset(inputs)
            for dataset, guid in inputs:
                self._by_dataset.setdefault(dataset, set()).add(signature)
                self._by_guid.setdefault(guid, set()).add(signature)

    def forget(self, signature: str) -> None:
        """Drop one view's lineage (the view left the catalog)."""
        with self._mutex:
            self._forget_locked(signature)

    def _forget_locked(self, signature: str) -> None:
        inputs = self._inputs.pop(signature, None)
        if not inputs:
            return
        for dataset, guid in inputs:
            for index, key in ((self._by_dataset, dataset),
                               (self._by_guid, guid)):
                dependents = index.get(key)
                if dependents is not None:
                    dependents.discard(signature)
                    if not dependents:
                        del index[key]

    # ------------------------------------------------------------------ #
    # reads

    def inputs_of(self, signature: str) -> FrozenSet[Input]:
        with self._mutex:
            return self._inputs.get(signature, frozenset())

    def has(self, signature: str) -> bool:
        with self._mutex:
            return signature in self._inputs

    def views_reading_dataset(self, dataset: str) -> Set[str]:
        """Every view whose lineage includes any version of ``dataset``."""
        with self._mutex:
            return set(self._by_dataset.get(dataset, ()))

    def views_reading_guid(self, guid: str) -> Set[str]:
        """Every view built over the specific stream version ``guid``."""
        with self._mutex:
            return set(self._by_guid.get(guid, ()))

    def datasets(self) -> List[str]:
        with self._mutex:
            return sorted(self._by_dataset)

    # ------------------------------------------------------------------ #
    # persistence (journal snapshot format)

    def snapshot(self) -> Dict[str, List[List[str]]]:
        """JSON-serializable dump: signature -> sorted [dataset, guid]."""
        with self._mutex:
            return {signature: sorted([d, g] for d, g in inputs)
                    for signature, inputs in self._inputs.items()}

    def restore(self, snapshot: Dict[str, List[List[str]]]) -> None:
        for signature, pairs in snapshot.items():
            self.record(signature,
                        frozenset((d, g) for d, g in pairs))

    def clear(self) -> None:
        with self._mutex:
            self._inputs.clear()
            self._by_dataset.clear()
            self._by_guid.clear()
