"""Debug-mode soundness assertions inside the optimizer pipeline.

With ``OptimizerContext.debug_checks`` enabled (engine config or the
``REPRO_DEBUG_CHECKS`` environment variable), the pipeline re-validates
its own output after the two reuse rewrites — post-match and
post-buildout — using the same rule packs as ``repro lint``.  An error
finding raises :class:`~repro.common.errors.LintError` on the spot, so a
rewrite that corrupts a plan fails the compile that produced it instead
of a query three stages later.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.framework import AnalysisContext, Analyzer, Report
from repro.common.errors import LintError
from repro.plan.logical import LogicalPlan

#: Workload-scoped rules never fire from a single-plan hook; suppressing
#: them just keeps the per-compile rule list honest.
_STAGE_SUPPRESS = ("sig-collision", "reuse-store-audit")


def stage_analyzer(ctx) -> Analyzer:
    """Analyzer wired to an :class:`OptimizerContext`'s recorder."""
    return Analyzer(suppress=_STAGE_SUPPRESS, recorder=ctx.recorder)


def analysis_context(ctx, now: float) -> AnalysisContext:
    return AnalysisContext(catalog=ctx.catalog, view_store=ctx.view_store,
                           salt=ctx.salt, now=now, job_id=ctx.trace_id)


def assert_stage_sound(plan: LogicalPlan, ctx, stage: str, now: float,
                       matches: Sequence[object] = (),
                       analyzer: Optional[Analyzer] = None) -> Report:
    """Lint one pipeline stage's output; raise LintError on any error.

    Returns the report (warnings and info included) so callers can log
    sub-error findings without failing the compile.
    """
    analyzer = analyzer or stage_analyzer(ctx)
    actx = analysis_context(ctx, now)
    report = analyzer.analyze_plan(plan, actx, job_id=ctx.trace_id)
    if matches:
        report.extend(analyzer.analyze_matches(matches, actx,
                                               job_id=ctx.trace_id))
    ctx.recorder.inc(f"lint.stage.{stage}.findings",
                     len(report.findings))
    if not report.ok:
        first = report.errors[0]
        raise LintError(
            f"{stage} soundness check failed for job "
            f"{ctx.trace_id or '<unknown>'}: {first.render()} "
            f"({len(report.errors)} error finding(s))",
            findings=report.errors)
    return report
