"""Rule pack 3: reuse safety.

The previous two packs check plans and hashes in isolation; this one
checks them against the *state of the world* — the catalog's current
stream GUIDs, the view store's lifecycle flags, and the cost model's
recorded decisions.  These are the checks that catch the production
incidents the paper describes: reading a view built over last week's
inputs, matching a view that has already expired, or "reusing" a view
that is more expensive to scan than to recompute.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.framework import AnalysisContext, Finding, Rule, register
from repro.plan.logical import LogicalPlan, Scan, ViewScan
from repro.storage.views import MaterializedView


def _stale_scans(view: MaterializedView,
                 ctx: AnalysisContext) -> List[Tuple[str, str, str]]:
    """(dataset, view_guid, current_guid) for every drifted input."""
    definition = view.definition
    if definition is None or ctx.catalog is None:
        return []
    out: List[Tuple[str, str, str]] = []
    for node in definition.walk():
        if not isinstance(node, Scan) or not node.stream_guid:
            continue
        if not ctx.catalog.has(node.dataset):
            continue
        current = ctx.catalog.current_guid(node.dataset)
        if current != node.stream_guid:
            out.append((node.dataset, node.stream_guid, current))
    return out


def _unavailable_reason(view: MaterializedView,
                        now: float) -> Optional[str]:
    if view.purged:
        return "purged by a user"
    if not view.sealed:
        return "not yet sealed (its producing stage has not completed)"
    if view.sealed_at is not None and now < view.sealed_at:
        return f"sealed in the future (at {view.sealed_at:.0f})"
    if now >= view.expires_at:
        return f"expired at {view.expires_at:.0f} (now {now:.0f})"
    return None


@register
class ViewLivenessRule(Rule):
    name = "reuse-view-liveness"
    severity = "error"
    description = ("Every ViewScan must reference a view that exists and "
                   "is available (sealed, unexpired, unpurged) now")

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if not isinstance(node, ViewScan) or not node.signature:
            return
        store = ctx.view_store
        if store is None:
            return
        view = store.get(node.signature)
        if view is None:
            yield self.finding(
                f"ViewScan references view {node.signature[:12]}… which "
                "is not in the view store; execution would read a path "
                "with no producer", operator=node.op_label, path=path)
            return
        reason = _unavailable_reason(view, ctx.now)
        if reason is not None:
            yield self.finding(
                f"ViewScan reads view {node.signature[:12]}… which is "
                f"{reason}", operator=node.op_label, path=path)
        if view.path != node.view_path:
            yield self.finding(
                f"ViewScan path {node.view_path!r} disagrees with the "
                f"store's path {view.path!r} for the same signature",
                operator=node.op_label, path=path)


@register
class StaleViewRule(Rule):
    name = "reuse-stale-view"
    severity = "error"
    description = ("A matched view's input stream GUIDs must equal the "
                   "catalog's current GUIDs (strict signatures should "
                   "have prevented the match otherwise)")

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if not isinstance(node, ViewScan) or ctx.view_store is None:
            return
        view = ctx.view_store.get(node.signature)
        if view is None:
            return  # reuse-view-liveness already reported it
        for dataset, had, current in _stale_scans(view, ctx):
            yield self.finding(
                f"view {node.signature[:12]}… was built over "
                f"{dataset}@{had[:12]}… but the catalog now serves "
                f"{dataset}@{current[:12]}…; the match would read stale "
                "data", operator=node.op_label, path=path,
                dataset=dataset)


@register
class ViewStoreAuditRule(Rule):
    name = "reuse-store-audit"
    severity = "warn"
    description = ("Workload-level sweep of the view store: stale "
                   "definitions, overdue evictions, malformed metadata")

    def check_workload(self, plans: Sequence[Tuple[str, LogicalPlan]],
                       ctx: AnalysisContext) -> Iterable[Finding]:
        store = ctx.view_store
        if store is None:
            return
        for view in store.views():
            tag = view.signature[:12] + "…"
            stale = _stale_scans(view, ctx)
            if stale and view.available(ctx.now):
                datasets = ", ".join(d for d, _, _ in stale)
                yield self.finding(
                    f"available view {tag} was built over outdated "
                    f"versions of: {datasets}; it should have been "
                    "recreated when the inputs changed",
                    signature=view.signature)
            if view.sealed and ctx.now >= view.expires_at:
                yield self.finding(
                    f"view {tag} expired but has not been evicted; "
                    "storage accounting is drifting",
                    signature=view.signature)
            if view.expires_at <= view.created_at:
                yield self.finding(
                    f"view {tag} was born expired "
                    f"(created {view.created_at:.0f}, expires "
                    f"{view.expires_at:.0f})", severity="error",
                    signature=view.signature)
            if view.signature and view.signature not in view.path:
                yield self.finding(
                    f"view {tag} is stored at {view.path!r}, which does "
                    "not encode its signature; purge tooling cannot "
                    "identify it", signature=view.signature)
            if not view.recurring_signature:
                yield self.finding(
                    f"view {tag} has no recurring signature; the "
                    "feedback loop cannot aggregate it across runs",
                    severity="info", signature=view.signature)


@register
class CostSanityRule(Rule):
    name = "reuse-cost-sanity"
    severity = "error"
    description = ("A recorded match must have scan-the-view cost below "
                   "recompute cost (the memo keeps the view plan only "
                   "when it is cheaper)")

    def check_match(self, match, ctx: AnalysisContext) -> Iterable[Finding]:
        if match.cost_with >= match.cost_without:
            yield self.finding(
                f"match on {match.signature[:12]}… was accepted with "
                f"view cost {match.cost_with:.1f} >= recompute cost "
                f"{match.cost_without:.1f}; the cost gate is broken",
                signature=match.signature)
        if match.cost_without < 0 or match.cost_with < 0:
            yield self.finding(
                f"match on {match.signature[:12]}… has a negative cost "
                f"(with={match.cost_with:.1f}, "
                f"without={match.cost_without:.1f})",
                signature=match.signature)
        if match.view_rows < 0:
            yield self.finding(
                f"match on {match.signature[:12]}… records a negative "
                f"row count ({match.view_rows})",
                severity="warn", signature=match.signature)
