"""Rule pack 4: lifecycle soundness.

The lifecycle subsystem invalidates views *by lineage*: when a stream's
GUID changes (bulk update, GDPR forget) the manager purges exactly the
views whose recorded inputs include that stream.  That only works if the
lineage registry is complete and honest — a view with *missing* lineage
is invisible to every cascade (a GDPR forget would silently leave it
behind, which is a compliance failure, Section 4), and a lineage entry
whose recorded GUID has *dangled* (no longer any version of its dataset)
points at an input the catalog has forgotten entirely.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.analysis.framework import AnalysisContext, Finding, Rule, register
from repro.plan.logical import LogicalPlan


@register
class ViewLineageRule(Rule):
    name = "lifecycle-view-lineage"
    severity = "error"
    description = ("Every sealed view must have complete lineage: missing "
                   "lineage hides it from invalidation cascades (GDPR), "
                   "dangling lineage references a dataset the catalog "
                   "no longer knows")

    def check_workload(self, plans: Sequence[Tuple[str, LogicalPlan]],
                       ctx: AnalysisContext) -> Iterable[Finding]:
        lineage = ctx.lineage
        store = ctx.view_store
        if lineage is None or store is None:
            return
        for view in store.views():
            if view.purged:
                continue  # already invalidated; awaiting GC collection
            if not lineage.has(view.signature):
                yield self.finding(
                    f"view {view.signature[:12]}… has no recorded lineage; "
                    "stream-GUID changes and GDPR forgets cannot cascade "
                    "to it", signature=view.signature)
                continue
            for dataset, guid in sorted(lineage.inputs_of(view.signature)):
                if ctx.catalog is not None and not ctx.catalog.has(dataset):
                    yield self.finding(
                        f"view {view.signature[:12]}… lists input dataset "
                        f"{dataset!r} which is not in the catalog "
                        "(dangling lineage)", severity="warn",
                        signature=view.signature, dataset=dataset)
                elif not guid:
                    yield self.finding(
                        f"view {view.signature[:12]}… records input "
                        f"{dataset!r} with an empty stream GUID; "
                        "staleness checks against it are meaningless",
                        severity="warn",
                        signature=view.signature, dataset=dataset)
