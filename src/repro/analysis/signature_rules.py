"""Rule pack 2: signature soundness.

Signatures are the load-bearing abstraction of the whole reuse loop: a
strict signature that is non-deterministic, collides, ignores the runtime
salt, or fails to mask time-varying inputs produces *wrong reuse* — the
paper's Section 4 failure mode.  These rules audit the hashing machinery
itself:

* **determinism** — re-hash a structurally rebuilt clone (fresh objects,
  fresh dict orderings) and a commutative-input permutation; any drift
  means the hash depends on object identity or construction order;
* **collisions** — across a workload, equal strict signatures must mean
  structurally equal normalized plans (checked against an independent
  canonical rendering, so a hash that silently drops a field is caught);
* **recurring-mask completeness** — the recurring signature must be
  invariant under stream-GUID and param-literal rewrites, while the
  strict signature must be sensitive to them;
* **salt propagation** — every signature must incorporate the
  runtime-version salt ("all existing materialized views get invalidated"
  on runtime upgrades);
* **reuse-eligibility consistency** — nothing non-deterministic may sit
  beneath a Spool or inside a matched view definition.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.framework import AnalysisContext, Finding, Rule, register
from repro.common.rng import rng_for
from repro.plan.expressions import Expr, Literal, rewrite
from repro.plan.logical import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    LogicalPlan,
    Process,
    Project,
    Scan,
    Sort,
    Spool,
    Union,
    ViewScan,
)
from repro.signatures.signature import (
    _expr,
    is_reuse_eligible,
    recurring_signature,
    strict_signature,
)

# --------------------------------------------------------------------- #
# structural keys: an independent, hash-free canonical rendering

def structural_key(plan: LogicalPlan, recurring: bool = False,
                   memo: Optional[Dict[int, str]] = None) -> str:
    """Canonical string of a normalized plan, mirroring the signature's
    intended normalization (sorted join pairs, unordered unions, masked
    params in recurring form) but *without* hashing.

    This is deliberately an independent implementation: comparing
    structural keys against signature equality cross-checks the hash.  It
    is also strictly finer where that matters for soundness — Scan and
    ViewScan column lists are included, so two scans of the same stream
    GUID with drifted schemas (a runtime-upgrade hazard) compare unequal
    even though their signatures collide.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(plan))
    if cached is not None:
        return cached
    kind = type(plan)
    if kind is Spool:
        key = structural_key(plan.child, recurring, memo)
        memo[id(plan)] = key
        return key
    children = [structural_key(child, recurring, memo)
                for child in plan.children()]
    if kind is Scan:
        source = plan.dataset if recurring else (plan.stream_guid
                                                 or plan.dataset)
        key = f"(scan {plan.dataset} {source} {list(plan.columns)})"
    elif kind is ViewScan:
        sig = (plan.recurring or plan.signature) if recurring \
            else plan.signature
        key = f"(viewscan {sig} {list(plan.columns)})"
    elif kind is Filter:
        key = f"(filter {_expr(plan.predicate, recurring)} {children})"
    elif kind is Join:
        pairs = sorted((_expr(l, recurring), _expr(r, recurring))
                       for l, r in zip(plan.left_keys, plan.right_keys))
        residual = _expr(plan.residual, recurring) if plan.residual else ""
        key = (f"(join {plan.how} {pairs} {residual} "
               f"{list(plan.drop_right)} {children})")
    elif kind is GroupBy:
        keys = [_expr(k, recurring) for k in plan.keys]
        aggs = [_expr(a, recurring) for a in plan.aggregates]
        key = f"(groupby {keys} {aggs} {list(plan.names)} {children})"
    elif kind is Union:
        marker = "unionall" if plan.all else "union"
        key = f"({marker} {sorted(children)})"
    elif kind is Distinct:
        key = f"(distinct {children})"
    elif kind is Sort:
        keys = [(_expr(k, recurring), asc)
                for k, asc in zip(plan.keys, plan.ascending)]
        key = f"(sort {keys} {children})"
    elif kind is Limit:
        key = f"(limit {plan.count} {children})"
    elif kind is Process:
        key = (f"(process {plan.udo_name} {plan.deterministic} "
               f"{plan.dependency_depth} {list(plan.output_columns)} "
               f"{children})")
    elif kind is Project:
        exprs = [_expr(e, recurring) for e in plan.exprs]
        key = f"(project {exprs} {list(plan.names)} {children})"
    else:
        # Unknown operator: include every non-plan field so structural
        # differences the label-only hash ignores are still visible.
        key = f"(op {plan.op_label} {_scalar_fields(plan)} {children})"
    memo[id(plan)] = key
    return key


def _scalar_fields(plan: LogicalPlan) -> str:
    parts = []
    for field in dataclasses.fields(plan):
        value = getattr(plan, field.name)
        if isinstance(value, LogicalPlan):
            continue
        if isinstance(value, tuple) and value and \
                all(isinstance(v, LogicalPlan) for v in value):
            continue
        parts.append(f"{field.name}={value!r}")
    return " ".join(parts)


# --------------------------------------------------------------------- #
# plan surgery helpers

def rebuild(plan: LogicalPlan) -> LogicalPlan:
    """Structurally identical clone built from fresh operator objects."""
    children = plan.children()
    if not children:
        return plan
    return plan.with_children([rebuild(child) for child in children])


def _permute_unordered(plan: LogicalPlan, rng) -> LogicalPlan:
    """Clone with every Union's inputs shuffled (an unordered bag)."""
    children = [_permute_unordered(child, rng) for child in plan.children()]
    if isinstance(plan, Union):
        rng.shuffle(children)
    if not children:
        return plan
    return plan.with_children(children)


def _probe_literal(expr: Expr) -> Optional[Expr]:
    if isinstance(expr, Literal) and expr.param_name is not None:
        return Literal(f"{expr.value!r}«probe»", expr.param_name)
    return None


def probe_inputs(plan: LogicalPlan) -> Tuple[LogicalPlan, bool]:
    """Rewrite time-varying inputs: fresh stream GUIDs on every Scan and
    perturbed values in every parameter-bound literal.

    Returns the rewritten plan and whether anything changed.  The
    recurring signature must be invariant under this rewrite; the strict
    signature must not be.
    """
    changed = False

    def visit(node: LogicalPlan) -> LogicalPlan:
        nonlocal changed
        children = [visit(child) for child in node.children()]
        if children and any(n is not o for n, o in
                            zip(children, node.children())):
            node = node.with_children(children)
        if isinstance(node, Scan):
            changed = True
            return dataclasses.replace(
                node, stream_guid=f"probe-{node.stream_guid or 'fresh'}")
        replacements = {}
        if isinstance(node, Filter):
            replacements["predicate"] = rewrite(node.predicate,
                                                _probe_literal)
        elif isinstance(node, Project):
            replacements["exprs"] = tuple(
                rewrite(e, _probe_literal) for e in node.exprs)
        elif isinstance(node, Join):
            replacements["left_keys"] = tuple(
                rewrite(e, _probe_literal) for e in node.left_keys)
            replacements["right_keys"] = tuple(
                rewrite(e, _probe_literal) for e in node.right_keys)
            if node.residual is not None:
                replacements["residual"] = rewrite(node.residual,
                                                   _probe_literal)
        elif isinstance(node, GroupBy):
            replacements["aggregates"] = tuple(
                rewrite(a, _probe_literal) for a in node.aggregates)
        else:
            return node
        originals = {name: getattr(node, name) for name in replacements}
        if all(_same_exprs(originals[name], replacements[name])
               for name in replacements):
            return node
        changed = True
        return dataclasses.replace(node, **replacements)

    return visit(plan), changed


def _same_exprs(old: object, new: object) -> bool:
    if isinstance(old, tuple):
        return all(o is n for o, n in zip(old, new)) and \
            len(old) == len(new)
    return old is new


def _is_view_standin(plan: LogicalPlan) -> bool:
    """True for a ViewScan (possibly under transparent Spools)."""
    node = plan
    while isinstance(node, Spool):
        node = node.child
    return isinstance(node, ViewScan)


def _hash_bypasses_salt(plan: LogicalPlan) -> bool:
    """True when the plan's signature never feeds a salted hash (a bare
    ViewScan, possibly under transparent Spools, returns its stored
    signature verbatim)."""
    node = plan
    while isinstance(node, Spool):
        node = node.child
    return isinstance(node, ViewScan)


# --------------------------------------------------------------------- #
# rules

@register
class SignatureDeterminismRule(Rule):
    name = "sig-determinism"
    severity = "error"
    description = ("Strict and recurring signatures must survive a "
                   "structural rebuild and a shuffle of unordered inputs")

    def check_plan(self, plan: LogicalPlan,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        strict = strict_signature(plan, ctx.salt)
        recurring = recurring_signature(plan, ctx.salt)
        clone = rebuild(plan)
        if strict_signature(clone, ctx.salt) != strict:
            yield self.finding(
                "strict signature changed after a structural rebuild; "
                "the hash depends on object identity or construction "
                "order", operator=plan.op_label)
        if recurring_signature(clone, ctx.salt) != recurring:
            yield self.finding(
                "recurring signature changed after a structural rebuild",
                operator=plan.op_label)
        rng = rng_for(0, "lint", "sig-determinism", strict)
        permuted = _permute_unordered(plan, rng)
        if strict_signature(permuted, ctx.salt) != strict:
            yield self.finding(
                "strict signature changed after shuffling Union inputs; "
                "unordered inputs leak their traversal order into the "
                "hash", operator=plan.op_label)


@register
class SignatureCollisionRule(Rule):
    name = "sig-collision"
    severity = "error"
    description = ("Across a workload, equal strict signatures must mean "
                   "structurally equal normalized plans")

    def check_workload(self, plans: Sequence[Tuple[str, LogicalPlan]],
                       ctx: AnalysisContext) -> Iterable[Finding]:
        from repro.signatures.signature import enumerate_subexpressions

        groups: Dict[str, Dict[str, Tuple[str, str]]] = {}
        for job_id, plan in plans:
            memo: Dict[int, str] = {}
            for sub in enumerate_subexpressions(plan, ctx.salt):
                if _is_view_standin(sub.plan):
                    # A ViewScan carries the signature of the expression
                    # it replaced; it is *meant* to collide with it.
                    # plan-viewscan-schema checks the substitution.
                    continue
                key = structural_key(sub.plan, recurring=False, memo=memo)
                bucket = groups.setdefault(sub.strict, {})
                bucket.setdefault(key, (job_id, sub.operator))
        for signature, bucket in groups.items():
            if len(bucket) <= 1:
                continue
            witnesses = sorted(f"{job}:{op}" for job, op in bucket.values())
            yield self.finding(
                f"strict signature {signature[:12]}… is shared by "
                f"{len(bucket)} structurally different subexpressions "
                f"({', '.join(witnesses)}); reuse would substitute the "
                "wrong computation", signature=signature)


@register
class RecurringMaskRule(Rule):
    name = "sig-recurring-mask"
    severity = "error"
    description = ("Recurring signatures must be invariant under stream-"
                   "GUID and param-literal rewrites; strict signatures "
                   "must be sensitive to them")

    def check_plan(self, plan: LogicalPlan,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        probed, changed = probe_inputs(plan)
        if not changed:
            return
        if recurring_signature(probed, ctx.salt) != \
                recurring_signature(plan, ctx.salt):
            yield self.finding(
                "recurring signature changed under a stream-GUID/param "
                "rewrite; the mask is incomplete, so recurring jobs "
                "would never re-match their template",
                operator=plan.op_label)
        if strict_signature(probed, ctx.salt) == \
                strict_signature(plan, ctx.salt):
            yield self.finding(
                "strict signature ignored a stream-GUID/param rewrite; "
                "stale views would keep matching after their inputs "
                "changed", operator=plan.op_label)


@register
class SaltPropagationRule(Rule):
    name = "sig-salt"
    severity = "warn"
    description = ("Signatures must be computed with the runtime-version "
                   "salt, and the salt must actually reach the hash")

    def check_plan(self, plan: LogicalPlan,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if not ctx.salt:
            yield self.finding(
                "analysis context has no runtime-version salt; views "
                "would survive runtime upgrades that change semantics",
                operator=plan.op_label)
            return
        if _hash_bypasses_salt(plan):
            return  # a bare ViewScan returns its stored signature
        if strict_signature(plan, ctx.salt) == \
                strict_signature(plan, ctx.salt + "«probe»"):
            yield self.finding(
                "runtime-version salt does not affect the strict "
                "signature", severity="error", operator=plan.op_label)


@register
class ReuseEligibilityRule(Rule):
    name = "sig-eligibility"
    severity = "error"
    description = ("No non-deterministic or dependency-heavy Process may "
                   "sit beneath a Spool or inside a matched view "
                   "definition")

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if isinstance(node, Spool):
            for offender in _ineligible_processes(node.child):
                yield self.finding(
                    f"Spool would materialize UDO {offender.udo_name!r} "
                    f"({_why(offender)}); its output is not safely "
                    "reusable", operator=node.op_label, path=path)
        elif isinstance(node, ViewScan) and ctx.view_store is not None:
            view = ctx.view_store.get(node.signature)
            if view is not None and view.definition is not None and \
                    not is_reuse_eligible(view.definition):
                yield self.finding(
                    f"matched view {node.signature[:12]}… was defined "
                    "over a non-reuse-eligible subexpression",
                    operator=node.op_label, path=path)


def _ineligible_processes(plan: LogicalPlan) -> List[Process]:
    from repro.signatures.signature import MAX_DEPENDENCY_DEPTH

    out = []
    for node in plan.walk():
        if isinstance(node, Process):
            if not node.deterministic or \
                    node.dependency_depth > MAX_DEPENDENCY_DEPTH:
                out.append(node)
    return out


def _why(process: Process) -> str:
    if not process.deterministic:
        return "non-deterministic"
    return f"dependency depth {process.dependency_depth}"
