"""The lint rule engine: rules, findings, reports, and the analyzer.

The reuse feedback loop is only as safe as a handful of invariants that no
tier-1 test checks directly: signatures must be deterministic and
collision-free, recurring masks must actually discard time-varying inputs,
view substitution must preserve schemas, and spools must be well-formed.
The paper's Section 4 ("Signature correctness") documents what happens when
these break silently — *wrong* reuse, which is far worse than no reuse.

This module is the framework half: a :class:`Rule` contributes findings at
one or more scopes (per node, per plan, per workload, per reuse decision);
the :class:`Analyzer` drives a single cycle-safe traversal and dispatches
to every registered rule; a :class:`Report` aggregates findings with
text/JSON rendering and CI-friendly exit codes.  The three rule packs live
in :mod:`repro.analysis.plan_rules`, :mod:`repro.analysis.signature_rules`,
and :mod:`repro.analysis.reuse_rules`.

Findings are mirrored into the flight recorder as ``lint.finding`` events
when a real recorder is installed, so lint results land in the same
capture as the rest of the reuse loop's telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.plan.logical import LogicalPlan
from repro.common.errors import ConfigError

#: Severity vocabulary, in increasing order of badness.
SEVERITIES = ("info", "warn", "error")
_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Rule name of the framework-level acyclicity guard (see Analyzer).
ACYCLICITY_RULE = "plan-dag-acyclic"


@dataclass(frozen=True)
class Finding:
    """One violation (or observation) reported by a rule."""

    rule: str
    severity: str
    message: str
    job_id: str = ""
    operator: str = ""
    path: str = ""
    detail: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in _RANK:
            raise ConfigError(f"unknown severity {self.severity!r}")

    @property
    def rank(self) -> int:
        return _RANK[self.severity]

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.job_id:
            out["job_id"] = self.job_id
        if self.operator:
            out["operator"] = self.operator
        if self.path:
            out["path"] = self.path
        if self.detail:
            out["detail"] = self.detail
        return out

    def render(self) -> str:
        where = f" @{self.path}" if self.path else ""
        job = f" [{self.job_id}]" if self.job_id else ""
        return f"{self.severity:<5} {self.rule}{job}{where}: {self.message}"


class Rule:
    """Base class for lint rules.

    A rule overrides any subset of the ``check_*`` hooks; the analyzer
    calls every hook a rule implements.  ``check_node`` runs once per
    operator on the analyzer's single traversal, ``check_plan`` once per
    plan, ``check_workload`` once over the full plan set, and
    ``check_match`` once per recorded reuse decision.
    """

    #: Unique kebab-case identifier (also the suppression key).
    name = ""
    #: Default severity of this rule's findings.
    severity = "error"
    #: One-line description shown in the rule catalog.
    description = ""

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: "AnalysisContext") -> Iterable[Finding]:
        return ()

    def check_plan(self, plan: LogicalPlan,
                   ctx: "AnalysisContext") -> Iterable[Finding]:
        return ()

    def check_workload(self, plans: Sequence[Tuple[str, LogicalPlan]],
                       ctx: "AnalysisContext") -> Iterable[Finding]:
        return ()

    def check_match(self, match: object,
                    ctx: "AnalysisContext") -> Iterable[Finding]:
        return ()

    def check_source(self, index: object,
                     ctx: "AnalysisContext") -> Iterable[Finding]:
        """Static source analysis (``index`` is a
        :class:`repro.analysis.concurrency.SourceIndex`)."""
        return ()

    def finding(self, message: str, severity: Optional[str] = None,
                operator: str = "", path: str = "",
                **detail: object) -> Finding:
        return Finding(rule=self.name, severity=severity or self.severity,
                       message=message, operator=operator, path=path,
                       detail=detail)


#: Global rule registry: name -> rule class.  Packs register at import.
REGISTRY: Dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ConfigError(f"rule {cls.__name__} has no name")
    REGISTRY[cls.name] = cls
    return cls


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule (all the packs)."""
    # Importing the packs populates REGISTRY; deferred to avoid cycles.
    from repro.analysis import lifecycle_rules  # noqa: F401
    from repro.analysis import plan_rules  # noqa: F401
    from repro.analysis import reuse_rules  # noqa: F401
    from repro.analysis import signature_rules  # noqa: F401
    from repro.analysis.concurrency import rules as concurrency_rules  # noqa: F401,E501
    return [cls() for _, cls in sorted(REGISTRY.items())]


def rule_catalog() -> List[Tuple[str, str, str]]:
    """(name, default severity, description) of every registered rule."""
    default_rules()  # ensure packs are imported
    return [(name, cls.severity, cls.description)
            for name, cls in sorted(REGISTRY.items())]


@dataclass
class AnalysisContext:
    """What the rules may consult beyond the plan itself.

    Every field is optional: rules degrade gracefully (skip checks) when
    the catalog, view store, or salt is not supplied.
    """

    catalog: object = None          # repro.catalog.Catalog
    view_store: object = None       # repro.storage.views.ViewStore
    lineage: object = None          # repro.lifecycle.LineageRegistry
    salt: str = ""                  # runtime-version signature salt
    now: float = 0.0                # simulated time of the analysis
    job_id: str = ""


class Report:
    """Aggregated findings with rendering and exit-code semantics."""

    def __init__(self, findings: Optional[Iterable[Finding]] = None) -> None:
        self.findings: List[Finding] = list(findings or ())
        self.plans_analyzed = 0
        self.rules_run = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, other: "Report") -> "Report":
        self.findings.extend(other.findings)
        self.plans_analyzed += other.plans_analyzed
        self.rules_run = max(self.rules_run, other.rules_run)
        return self

    def by_severity(self, severity: str) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity("error")

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity("warn")

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def exit_code(self) -> int:
        """CI contract: non-zero iff any error-severity finding."""
        return 0 if self.ok else 1

    def exit_code_at(self, fail_on: str = "error") -> int:
        """Exit code with a configurable severity threshold.

        ``fail_on="warn"`` fails on warnings *or* errors; ``"info"``
        fails on any finding at all.  The default matches
        :attr:`exit_code`.
        """
        if fail_on not in _RANK:
            raise ConfigError(f"unknown fail-on severity {fail_on!r}")
        threshold = _RANK[fail_on]
        return 1 if any(f.rank >= threshold for f in self.findings) else 0

    def counts(self) -> Dict[str, int]:
        return {severity: len(self.by_severity(severity))
                for severity in SEVERITIES}

    def sorted_findings(self) -> List[Finding]:
        # The full key (through operator and message) makes the JSON
        # rendering byte-stable across runs for CI diffing.
        return sorted(self.findings,
                      key=lambda f: (-f.rank, f.rule, f.job_id, f.path,
                                     f.operator, f.message))

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.sorted_findings():
            lines.append(finding.render())
        counts = self.counts()
        lines.append(
            f"{'ok' if self.ok else 'FAIL'}: {counts['error']} errors, "
            f"{counts['warn']} warnings, {counts['info']} info "
            f"({self.plans_analyzed} plans, {self.rules_run} rules)")
        return "\n".join(lines)

    def to_json(self, indent: int = 2) -> str:
        payload = {
            "ok": self.ok,
            "counts": self.counts(),
            "plans_analyzed": self.plans_analyzed,
            "rules_run": self.rules_run,
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


def safe_walk(plan: LogicalPlan) -> Tuple[List[Tuple[LogicalPlan, str]],
                                          Optional[str]]:
    """Pre-order (node, path) pairs, stopping at the first back-edge.

    Plans are meant to be trees (sharing is fine, cycles are not);
    ``LogicalPlan.walk`` would recurse forever on a corrupted cyclic
    plan, so the analyzer uses this traversal exclusively.  Returns the
    visited pairs and the path of the cycle-closing edge, if any.
    """
    pairs: List[Tuple[LogicalPlan, str]] = []
    on_path: set = set()
    cycle: List[Optional[str]] = [None]

    def visit(node: LogicalPlan, path: str) -> None:
        if cycle[0] is not None:
            return
        if id(node) in on_path:
            cycle[0] = path
            return
        pairs.append((node, path))
        on_path.add(id(node))
        for index, child in enumerate(node.children()):
            visit(child, f"{path}/{child.op_label}[{index}]")
        on_path.discard(id(node))

    visit(plan, plan.op_label)
    return pairs, cycle[0]


class Analyzer:
    """Walks plans/workloads and dispatches to the registered rules.

    ``suppress`` names rules to skip entirely; ``recorder`` receives one
    ``lint.finding`` event per finding (no-op under the null recorder).
    A rule that raises does not abort the analysis: the exception is
    converted into an error finding against that rule, because a crash
    while checking an invariant is itself a soundness signal.
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 suppress: Iterable[str] = (),
                 recorder=NULL_RECORDER) -> None:
        self.suppress = frozenset(suppress)
        all_rules = list(rules) if rules is not None else default_rules()
        self.rules = [r for r in all_rules if r.name not in self.suppress]
        self.recorder = recorder

    # ------------------------------------------------------------------ #
    # entry points

    def analyze_plan(self, plan: LogicalPlan,
                     ctx: Optional[AnalysisContext] = None,
                     job_id: str = "") -> Report:
        """Run node- and plan-scoped rules over one plan."""
        ctx = ctx or AnalysisContext()
        report = Report()
        report.plans_analyzed = 1
        report.rules_run = len(self.rules)
        pairs, cycle = safe_walk(plan)
        if cycle is not None:
            if ACYCLICITY_RULE not in self.suppress:
                self._record(report, Finding(
                    rule=ACYCLICITY_RULE, severity="error",
                    message="plan contains a cycle; downstream rules "
                            "skipped (signatures would not terminate)",
                    path=cycle, operator=type(plan).__name__), job_id, ctx)
            return report  # nothing else is safe to run on a cyclic plan
        for rule in self.rules:
            for finding in self._guard(rule, rule.check_plan, plan, ctx):
                self._record(report, finding, job_id, ctx)
            for node, path in pairs:
                for finding in self._guard(rule, rule.check_node,
                                           node, path, ctx):
                    self._record(report, finding, job_id, ctx)
        return report

    def analyze_workload(self, plans: Sequence[Tuple[str, LogicalPlan]],
                         ctx: Optional[AnalysisContext] = None,
                         include_plans: bool = True) -> Report:
        """Cross-plan rules (collision audits etc.) over a workload.

        ``plans`` is a sequence of ``(job_id, plan)`` pairs.  With
        ``include_plans`` (the default) each plan is also analyzed
        individually first.
        """
        ctx = ctx or AnalysisContext()
        report = Report()
        report.rules_run = len(self.rules)
        acyclic: List[Tuple[str, LogicalPlan]] = []
        for job_id, plan in plans:
            if include_plans:
                report.extend(self.analyze_plan(plan, ctx, job_id=job_id))
            _, cycle = safe_walk(plan)
            if cycle is None:
                acyclic.append((job_id, plan))
        for rule in self.rules:
            for finding in self._guard(rule, rule.check_workload,
                                       acyclic, ctx):
                self._record(report, finding, "", ctx)
        return report

    def analyze_source(self, index: object,
                       ctx: Optional[AnalysisContext] = None) -> Report:
        """Static rules over an extracted source index.

        ``index`` is a :class:`repro.analysis.concurrency.SourceIndex`;
        rules without a ``check_source`` implementation contribute
        nothing, so the plan/signature packs coexist transparently.
        """
        ctx = ctx or AnalysisContext()
        report = Report()
        report.rules_run = len(self.rules)
        for rule in self.rules:
            for finding in self._guard(rule, rule.check_source, index, ctx):
                self._record(report, finding, "", ctx)
        return report

    def analyze_matches(self, matches: Sequence[object],
                        ctx: Optional[AnalysisContext] = None,
                        job_id: str = "") -> Report:
        """Rules over recorded reuse decisions (ViewMatch records)."""
        ctx = ctx or AnalysisContext()
        report = Report()
        report.rules_run = len(self.rules)
        for rule in self.rules:
            for match in matches:
                for finding in self._guard(rule, rule.check_match,
                                           match, ctx):
                    self._record(report, finding, job_id, ctx)
        return report

    # ------------------------------------------------------------------ #
    # internals

    def _guard(self, rule: Rule, hook, *args) -> List[Finding]:
        try:
            return list(hook(*args))
        except Exception as exc:  # noqa: BLE001 - converted to a finding
            return [Finding(
                rule=rule.name, severity="error",
                message=f"rule crashed: {type(exc).__name__}: {exc}",
                detail={"crash": True})]

    def _record(self, report: Report, finding: Finding, job_id: str,
                ctx: AnalysisContext) -> None:
        if not finding.job_id and (job_id or ctx.job_id):
            finding = replace(finding, job_id=job_id or ctx.job_id)
        report.add(finding)
        self.recorder.event(
            obs_events.LINT_FINDING, at=ctx.now, job_id=finding.job_id,
            rule=finding.rule, severity=finding.severity,
            message=finding.message, path=finding.path)
