"""Static soundness analysis for the reuse pipeline (``repro lint``).

A small rule engine (:mod:`repro.analysis.framework`) plus three rule
packs: structural plan validation (:mod:`repro.analysis.plan_rules`),
signature soundness (:mod:`repro.analysis.signature_rules`), and reuse
safety (:mod:`repro.analysis.reuse_rules`).  The optimizer pipeline can
run the same rules as debug-mode assertions via
:mod:`repro.analysis.hooks`.
"""

from repro.analysis.framework import (
    ACYCLICITY_RULE,
    SEVERITIES,
    AnalysisContext,
    Analyzer,
    Finding,
    Report,
    Rule,
    default_rules,
    register,
    rule_catalog,
    safe_walk,
)
from repro.analysis.hooks import assert_stage_sound, stage_analyzer

__all__ = [
    "ACYCLICITY_RULE",
    "SEVERITIES",
    "AnalysisContext",
    "Analyzer",
    "Finding",
    "Report",
    "Rule",
    "assert_stage_sound",
    "default_rules",
    "register",
    "rule_catalog",
    "safe_walk",
    "stage_analyzer",
]
