"""The ``concurrency-*`` lint rule family (static half of soundness).

Five rules over the :class:`~.model.SourceIndex` extracted by
:mod:`repro.analysis.concurrency.extract`, registered into the same
framework as the plan/signature/reuse packs and surfaced through
``repro lint --workload source``:

* ``concurrency-lock-order`` -- cycles in the lock-acquisition-order
  graph, and acquisitions that violate the documented descending-rank
  hierarchy (a thread holding a lock may only take strictly
  lower-ranked locks).
* ``concurrency-blocking-under-lock`` -- sleeps, unbounded joins/waits,
  queue gets and future results without timeouts, and network calls
  made while holding a lock (error); file I/O under a lock is flagged
  warn -- the catalog journal's WAL append is a sanctioned site.
* ``concurrency-unbalanced-acquire`` -- manual ``acquire()`` /
  ``release()`` counts that do not match within one method (wrapper
  classes defining both are the API and are exempt).
* ``concurrency-unguarded-shared-write`` -- an attribute written both
  from a thread entry point and from the main path with no common lock.
* ``concurrency-untracked-lock`` -- raw ``threading`` locks that bypass
  the tracked wrappers (info; they are invisible to the sanitizer).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.analysis.framework import (
    AnalysisContext,
    Finding,
    Rule,
    register,
)
from repro.analysis.concurrency.model import (
    AttrWrite,
    LockKey,
    SourceIndex,
    find_cycles,
)

#: Methods whose job *is* split acquire/release bookkeeping.
_BALANCE_EXEMPT_METHODS = frozenset(
    {"acquire", "release", "__enter__", "__exit__", "locked",
     "_slow_acquire"})

#: Files allowed to construct raw threading primitives (the wrappers).
_RAW_LOCK_ALLOWED = ("common/sync.py",)

#: Constructors allowed pre-thread: writes in them are never racy.
_CTOR_METHODS = frozenset({"__init__", "__post_init__"})


class SourceRule(Rule):
    """Base for rules that consume the statically-extracted index."""

    def check_source(self, index: SourceIndex,
                     ctx: AnalysisContext) -> Iterable[Finding]:
        return ()


@register
class LockOrderRule(SourceRule):
    """Lock-order inversions: graph cycles and rank violations."""

    name = "concurrency-lock-order"
    severity = "error"
    description = ("lock acquisition order must be acyclic and follow "
                   "the descending rank hierarchy")

    def check_source(self, index: SourceIndex,
                     ctx: AnalysisContext) -> Iterable[Finding]:
        edges = index.acquisition_edges()
        for cycle in find_cycles(edges):
            names = [index.display(key) for key in cycle]
            yield self.finding(
                "lock-order cycle: " + " -> ".join(names + [names[0]]),
                path=self._cycle_path(index, edges, cycle),
                locks=names)
        for edge in edges:
            holder = index.lock(edge.holder)
            acquired = index.lock(edge.acquired)
            if holder is None or acquired is None:
                continue
            if holder.rank is None or acquired.rank is None:
                continue
            if acquired.rank >= holder.rank:
                yield self.finding(
                    f"hierarchy violation in {edge.method}: acquiring "
                    f"{acquired.display} (rank {acquired.rank}) while "
                    f"holding {holder.display} (rank {holder.rank}); "
                    f"held locks may only take strictly lower ranks",
                    path=f"{edge.file}:{edge.line}",
                    operator=edge.method, via=edge.via)

    @staticmethod
    def _cycle_path(index: SourceIndex, edges, cycle) -> str:
        pairs = set(zip(cycle, cycle[1:] + cycle[:1]))
        for edge in edges:
            if (edge.holder, edge.acquired) in pairs:
                return f"{edge.file}:{edge.line}"
        return ""


@register
class BlockingUnderLockRule(SourceRule):
    """Blocking calls made while holding a lock."""

    name = "concurrency-blocking-under-lock"
    severity = "error"
    description = ("no sleeping, unbounded waiting, or network I/O while "
                   "holding a lock; file I/O under a lock is flagged warn")

    def check_source(self, index: SourceIndex,
                     ctx: AnalysisContext) -> Iterable[Finding]:
        for method in index.all_methods():
            for call in method.blocking_calls:
                held = ", ".join(sorted(index.display(k)
                                        for k in call.held))
                if call.kind == "io":
                    severity = "warn"
                    why = "file I/O"
                elif call.kind in ("join", "wait", "queue-get", "future") \
                        and call.has_timeout:
                    severity = "warn"
                    why = f"bounded {call.kind}"
                else:
                    severity = "error"
                    why = {"sleep": "sleep", "network": "network call",
                           "join": "unbounded join",
                           "wait": "unbounded wait",
                           "queue-get": "queue get without timeout",
                           "future": "future result without timeout",
                           }.get(call.kind, call.kind)
                yield self.finding(
                    f"{why} ({call.call}) in {method.qualname} while "
                    f"holding [{held}]",
                    severity=severity,
                    path=f"{call.file}:{call.line}",
                    operator=method.qualname, kind=call.kind)


@register
class UnbalancedAcquireRule(SourceRule):
    """Manual acquire()/release() counts must match per method."""

    name = "concurrency-unbalanced-acquire"
    severity = "error"
    description = ("explicit lock acquire() and release() calls must "
                   "balance within a method")

    def check_source(self, index: SourceIndex,
                     ctx: AnalysisContext) -> Iterable[Finding]:
        for cls in index.classes.values():
            if cls.is_lock_wrapper:
                continue  # wrappers re-export the split as their API
            for method in cls.methods.values():
                if method.name in _BALANCE_EXEMPT_METHODS:
                    continue
                keys = set(method.manual_acquires) | \
                    set(method.manual_releases)
                for key in sorted(keys):
                    acquired = method.manual_acquires.get(key, 0)
                    released = method.manual_releases.get(key, 0)
                    if acquired != released:
                        yield self.finding(
                            f"{method.qualname} acquires "
                            f"{index.display(key)} {acquired}x but "
                            f"releases it {released}x; use a with-block "
                            f"or balance the calls",
                            path=f"{method.file}:{method.line}",
                            operator=method.qualname,
                            acquires=acquired, releases=released)


@register
class UnguardedSharedWriteRule(SourceRule):
    """Attributes written from a thread and the main path need one lock."""

    name = "concurrency-unguarded-shared-write"
    severity = "error"
    description = ("an attribute written from both a thread entry point "
                   "and the main path must share a guarding lock")

    def check_source(self, index: SourceIndex,
                     ctx: AnalysisContext) -> Iterable[Finding]:
        reachable = index.thread_reachable()
        for cls in index.classes.values():
            writes: Dict[str, Tuple[List[AttrWrite], List[AttrWrite]]] = {}
            for method in cls.methods.values():
                if method.name in _CTOR_METHODS:
                    continue  # pre-thread construction is never racy
                side = 0 if method.qualname in reachable else 1
                for write in method.attr_writes:
                    writes.setdefault(write.attr,
                                      ([], []))[side].append(write)
            for attr in sorted(writes):
                thread_side, main_side = writes[attr]
                if not thread_side or not main_side:
                    continue
                for tw in thread_side:
                    for mw in main_side:
                        if tw.held & mw.held:
                            continue
                        yield self.finding(
                            f"{cls.name}.{attr} is written from thread "
                            f"path {cls.name}.{tw.method} (holding "
                            f"{self._held(index, tw)}) and main path "
                            f"{cls.name}.{mw.method} (holding "
                            f"{self._held(index, mw)}) with no common "
                            f"lock",
                            path=f"{tw.file}:{tw.line}",
                            operator=f"{cls.name}.{tw.method}",
                            attr=attr,
                            main_site=f"{mw.file}:{mw.line}")
                        break  # one finding per offending thread write
                    else:
                        continue
                    break  # and one per attribute

    @staticmethod
    def _held(index: SourceIndex, write: AttrWrite) -> str:
        if not write.held:
            return "nothing"
        return "[" + ", ".join(sorted(index.display(k)
                                      for k in write.held)) + "]"


@register
class UntrackedLockRule(SourceRule):
    """Raw threading locks bypass the sanitizer and the histograms."""

    name = "concurrency-untracked-lock"
    severity = "info"
    description = ("raw threading.Lock/RLock/Condition declarations are "
                   "invisible to the runtime sanitizer; prefer "
                   "TrackedLock/TrackedRLock from repro.common.sync")

    def check_source(self, index: SourceIndex,
                     ctx: AnalysisContext) -> Iterable[Finding]:
        for decl in index.all_locks():
            if decl.tracked:
                continue
            normalized = decl.file.replace("\\", "/")
            if any(normalized.endswith(allowed)
                   for allowed in _RAW_LOCK_ALLOWED):
                continue
            yield self.finding(
                f"{decl.key[0]}.{decl.key[1]} is a raw "
                f"threading.{decl.lock_type}; the sanitizer cannot see "
                f"it -- wrap it in a tracked lock with a rank",
                path=f"{decl.file}:{decl.line}",
                operator=decl.key[0], lock_type=decl.lock_type)
