"""AST extraction: source tree -> :class:`~.model.SourceIndex`.

Two passes over every ``*.py`` file under the root, using only the
stdlib ``ast`` module (the analyzed code is never imported):

* **Pass 1** walks class bodies collecting lock declarations
  (``self.X = threading.Lock()`` / ``TrackedLock("name", RANK, ...)``)
  and constructor-based attribute types (``self.store = ViewStore(...)``)
  so pass 2 can resolve cross-class calls.

* **Pass 2** walks each method body *in source order* with a mutable
  held-lock stack: ``with self.X:`` pushes for its body, explicit
  ``.acquire()`` / ``.release()`` pairs push/pop linearly.  Every
  acquisition, potentially-blocking call, attribute write, resolvable
  method call, and thread launch is recorded together with the lock set
  held at that point.

Rank expressions on tracked locks (``RANK_INSIGHTS + 20``) are folded
against the real constants in :mod:`repro.common.sync`, so the static
hierarchy check and the runtime sanitizer share one source of truth.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.concurrency.model import (
    Acquisition,
    AttrWrite,
    BlockingCall,
    ClassInfo,
    LockDecl,
    LockKey,
    LOCK_TYPES,
    MethodInfo,
    SourceIndex,
    TRACKED_TYPES,
)
from repro.common import sync as _sync

#: Names that never count as lock-protected state (the locks themselves
#: and debug bookkeeping).
_NON_STATE_SUFFIXES = ("mutex", "lock", "cond")

#: ``time.sleep``-style unconditional blockers (error severity).
_SLEEP_CALLS = {("time", "sleep")}

#: Network-ish module calls flagged as blocking I/O under a lock.
_NETWORK_MODULES = ("socket", "requests", "urllib", "http")

#: Receiver-name fragments that make ``.join()`` / ``.result()`` /
#: ``.get()`` count as thread/future/queue blocking (``dict.get`` and
#: ``str.join`` are far too common to flag unconditionally).
_THREADISH = ("thread", "worker", "janitor")
_FUTUREISH = ("future", "fut")
_QUEUEISH = ("queue",)

#: File-handle-ish receiver fragments for ``.write()`` / ``.flush()``.
_FILEISH = ("wal", "file", "handle", "fh", "log")


def _dotted(node: ast.AST) -> str:
    """Render a Name/Attribute chain (``a.b.c``); '' when not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _has_timeout(call: ast.Call) -> bool:
    if any(kw.arg == "timeout" for kw in call.keywords):
        return True
    return bool(call.args)  # positional timeout (e.g. wait(5.0))


def _fold_rank(node: ast.AST) -> Optional[int]:
    """Fold a rank expression against repro.common.sync's constants."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        value = getattr(_sync, node.id, None)
        return value if isinstance(value, int) else None
    if isinstance(node, ast.Attribute):
        value = getattr(_sync, node.attr, None)
        return value if isinstance(value, int) else None
    if isinstance(node, ast.BinOp) and isinstance(node.op,
                                                  (ast.Add, ast.Sub)):
        left, right = _fold_rank(node.left), _fold_rank(node.right)
        if left is None or right is None:
            return None
        return left + right if isinstance(node.op, ast.Add) else left - right
    return None


def _lock_ctor(call: ast.Call) -> Optional[str]:
    """The lock type name when ``call`` constructs a recognized lock."""
    name = _dotted(call.func)
    if not name:
        return None
    tail = name.rsplit(".", 1)[-1]
    return tail if tail in LOCK_TYPES else None


class _ClassScanner:
    """Pass 1: lock declarations and attribute types for one class."""

    def __init__(self, cls: ClassInfo, relpath: str) -> None:
        self.cls = cls
        self.relpath = relpath

    def scan(self, node: ast.ClassDef, index: SourceIndex) -> None:
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for stmt in ast.walk(item):
                    if isinstance(stmt, ast.Assign):
                        self._scan_assign(stmt, index)

    def _scan_assign(self, stmt: ast.Assign, index: SourceIndex) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.value, ast.Call):
            return
        target = stmt.targets[0]
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return
        attr = target.attr
        call = stmt.value
        lock_type = _lock_ctor(call)
        if lock_type is not None:
            tracked_name = ""
            rank: Optional[int] = None
            if lock_type in TRACKED_TYPES:
                if call.args and isinstance(call.args[0], ast.Constant) \
                        and isinstance(call.args[0].value, str):
                    tracked_name = call.args[0].value
                if len(call.args) > 1:
                    rank = _fold_rank(call.args[1])
                for kw in call.keywords:
                    if kw.arg == "name" and isinstance(kw.value,
                                                       ast.Constant):
                        tracked_name = str(kw.value.value)
                    elif kw.arg == "rank":
                        rank = _fold_rank(kw.value)
            self.cls.locks[attr] = LockDecl(
                key=(self.cls.name, attr), lock_type=lock_type,
                file=self.relpath, line=stmt.lineno,
                tracked_name=tracked_name, rank=rank)
            return
        ctor = _dotted(call.func)
        if ctor:
            # Constructor-based attribute typing, resolved against the
            # index's class set after all files are parsed.
            self.cls.attr_types[attr] = ctor.rsplit(".", 1)[-1]


class _MethodScanner:
    """Pass 2: source-order walk of one method body with a held stack."""

    def __init__(self, cls: ClassInfo, method: MethodInfo,
                 relpath: str) -> None:
        self.cls = cls
        self.method = method
        self.relpath = relpath
        self.held: List[LockKey] = []
        #: Local variable -> class name (``v = ViewStore(...)``).
        self.local_types: Dict[str, str] = {}

    # -------------------------------------------------------------- #
    # resolution helpers

    def _lock_key(self, node: ast.AST) -> Optional[LockKey]:
        """Resolve ``self.X`` (or ``self.a._mutex``-style) to a LockKey."""
        if not isinstance(node, ast.Attribute):
            return None
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            if node.attr in self.cls.locks:
                return (self.cls.name, node.attr)
            # Undeclared but lock-named attribute: still track it so
            # with-nesting order is visible even without a decl.
            if any(node.attr.strip("_").endswith(s)
                   for s in _NON_STATE_SUFFIXES):
                return (self.cls.name, node.attr)
            return None
        # self.child._mutex -> the child's lock, when typed.
        if isinstance(node.value, ast.Attribute) \
                and isinstance(node.value.value, ast.Name) \
                and node.value.value.id == "self":
            child_cls = self.cls.attr_types.get(node.value.attr)
            if child_cls:
                return (child_cls, node.attr)
        return None

    def _callee(self, call: ast.Call) -> Optional[Tuple[str, str]]:
        """Resolve a call to (class, method) when statically possible."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        owner = func.value
        if isinstance(owner, ast.Name):
            if owner.id == "self":
                return (self.cls.name, func.attr)
            local = self.local_types.get(owner.id)
            if local:
                return (local, func.attr)
            return None
        if isinstance(owner, ast.Attribute) \
                and isinstance(owner.value, ast.Name) \
                and owner.value.id == "self":
            typed = self.cls.attr_types.get(owner.attr)
            if typed:
                return (typed, func.attr)
        return None

    def _held_set(self) -> FrozenSet[LockKey]:
        return frozenset(self.held)

    # -------------------------------------------------------------- #
    # the walk

    def scan(self, node: ast.FunctionDef) -> None:
        for stmt in node.body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With):
            self._with(stmt)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs run later, under their own locks
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = getattr(stmt, "value", None)
            if value is not None:
                self._expr(value)
            self._assign(stmt)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
            return
        # Leaf statements (Expr, Return, Raise, Assert, Delete, ...):
        # scan their expression children for calls.
        for child in ast.iter_child_nodes(stmt):
            if not isinstance(child, ast.stmt):
                self._expr(child)

    def _block(self, stmts) -> None:
        for child in stmts:
            self._stmt(child)

    def _with(self, stmt: ast.With) -> None:
        pushed: List[LockKey] = []
        for item in stmt.items:
            ctx = item.context_expr
            # ``with self._mutex:`` or ``with self._mutex.acquire…``
            key = self._lock_key(ctx)
            if key is None and isinstance(ctx, ast.Call):
                self._expr(ctx)
                continue
            if key is not None:
                self.method.acquisitions.append(Acquisition(
                    key=key, file=self.relpath, line=ctx.lineno,
                    held=self._held_set(), via="with"))
                self.held.append(key)
                pushed.append(key)
            else:
                self._expr(ctx)
        for child in stmt.body:
            self._stmt(child)
        for key in reversed(pushed):
            self.held.remove(key)

    def _assign(self, stmt: ast.stmt) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        # Local constructor typing: ``v = ViewStore(...)``.
        if value is not None and isinstance(value, ast.Call):
            ctor = _dotted(value.func)
            if ctor and len(targets) == 1 \
                    and isinstance(targets[0], ast.Name):
                self.local_types[targets[0].id] = ctor.rsplit(".", 1)[-1]
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                attr = target.attr
                if any(attr.strip("_").endswith(s)
                       for s in _NON_STATE_SUFFIXES):
                    continue
                self.method.attr_writes.append(AttrWrite(
                    attr=attr, file=self.relpath, line=target.lineno,
                    method=self.method.name, held=self._held_set()))

    def _expr(self, node: ast.AST) -> None:
        for call in [n for n in ast.walk(node) if isinstance(n, ast.Call)]:
            self._call(call)

    def _call(self, call: ast.Call) -> None:
        func = call.func
        name = _dotted(func)
        # ---- manual acquire/release on a resolvable lock ---------- #
        if isinstance(func, ast.Attribute) \
                and func.attr in ("acquire", "release"):
            key = self._lock_key(func.value)
            if key is not None:
                if func.attr == "acquire":
                    self.method.manual_acquires[key] = \
                        self.method.manual_acquires.get(key, 0) + 1
                    self.method.acquisitions.append(Acquisition(
                        key=key, file=self.relpath, line=call.lineno,
                        held=self._held_set(), via="manual"))
                    self.held.append(key)
                else:
                    self.method.manual_releases[key] = \
                        self.method.manual_releases.get(key, 0) + 1
                    if key in self.held:
                        # Remove the innermost occurrence.
                        for i in range(len(self.held) - 1, -1, -1):
                            if self.held[i] == key:
                                del self.held[i]
                                break
                return
        # ---- thread launches -------------------------------------- #
        tail = name.rsplit(".", 1)[-1] if name else ""
        if tail == "Thread":
            for kw in call.keywords:
                if kw.arg == "target":
                    target = kw.value
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        self.method.thread_targets.append(target.attr)
        elif isinstance(func, ast.Attribute) and func.attr == "submit":
            if call.args:
                target = call.args[0]
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    self.method.thread_targets.append(target.attr)
        # ---- blocking calls under a lock -------------------------- #
        if self.held:
            self._classify_blocking(call, name)
        # ---- resolvable method calls ------------------------------ #
        callee = self._callee(call)
        if callee is not None:
            self.method.calls.append(callee)
            self.method.calls_held.append(
                (callee, self._held_set(), call.lineno))

    def _classify_blocking(self, call: ast.Call, name: str) -> None:
        held = self._held_set()
        func = call.func
        attr = func.attr if isinstance(func, ast.Attribute) else ""
        receiver = _dotted(func.value) if isinstance(func,
                                                     ast.Attribute) else ""
        receiver_low = receiver.lower()

        def emit(kind: str, has_timeout: bool = False) -> None:
            self.method.blocking_calls.append(BlockingCall(
                kind=kind, call=name or attr, file=self.relpath,
                line=call.lineno, held=held, has_timeout=has_timeout))

        parts = tuple(name.split(".")) if name else ()
        if parts[-2:] == ("time", "sleep") or parts == ("time", "sleep") \
                or (len(parts) == 2 and parts in _SLEEP_CALLS):
            emit("sleep")
            return
        if name and name.split(".", 1)[0] in _NETWORK_MODULES:
            emit("network")
            return
        if attr == "join" and any(s in receiver_low for s in _THREADISH):
            emit("join", _has_timeout(call))
            return
        if attr == "wait":
            emit("wait", _has_timeout(call))
            return
        if attr == "result" and any(s in receiver_low for s in _FUTUREISH):
            emit("future", _has_timeout(call))
            return
        if attr == "get" and any(s in receiver_low for s in _QUEUEISH):
            emit("queue-get", _has_timeout(call))
            return
        if name == "open" or parts[-2:] in (("os", "fsync"),
                                            ("os", "replace"),
                                            ("os", "makedirs")) \
                or parts[-2:] == ("json", "dump") \
                or (attr in ("write", "flush")
                    and any(s in receiver_low for s in _FILEISH)):
            emit("io")


def build_index(root: str) -> SourceIndex:
    """Parse every ``*.py`` under ``root`` into a SourceIndex."""
    index = SourceIndex(root=root)
    paths: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d not in ("__pycache__",))
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    trees: List[Tuple[str, ast.Module]] = []
    for path in paths:
        relpath = os.path.relpath(path, root)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError:
            continue  # not this analyzer's problem
        index.files.append(relpath)
        trees.append((relpath, tree))
    # Pass 1: declarations and attribute types.
    for relpath, tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                cls = index.classes.setdefault(
                    node.name, ClassInfo(name=node.name, file=relpath,
                                         line=node.lineno))
                _ClassScanner(cls, relpath).scan(node, index)
    # Pass 2: method bodies.
    for relpath, tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = index.classes[node.name]
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                method = MethodInfo(class_name=cls.name, name=item.name,
                                    file=relpath, line=item.lineno)
                cls.methods[item.name] = method
                _MethodScanner(cls, method, relpath).scan(item)
    return index
