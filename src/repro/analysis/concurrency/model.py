"""Data model of the statically-extracted concurrency facts.

Everything the ``concurrency-*`` rules consume is collected here, fully
decoupled from the AST walk that produces it: lock declarations keyed by
``(class, attribute)``, per-method acquisition/call/write facts, and the
whole-tree :class:`SourceIndex` with the derived lock-acquisition-order
graph (direct ``with``-nesting edges plus call-mediated edges through
the per-method transitive acquire sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

#: A lock's identity: (class name, attribute name), e.g.
#: ``("ViewStore", "_mutex")``.
LockKey = Tuple[str, str]

#: Lock constructor names recognized as lock declarations.  Deliberately
#: excludes Semaphore/BoundedSemaphore/Event: those are counting or
#: signalling primitives whose acquire/release legitimately split across
#: methods (e.g. the scheduler's admission slots).
LOCK_TYPES = ("Lock", "RLock", "Condition", "TrackedLock", "TrackedRLock")

#: Lock types wrapped by :mod:`repro.common.sync` (carry name + rank).
TRACKED_TYPES = ("TrackedLock", "TrackedRLock")

#: Lock types that tolerate same-thread re-acquisition.
REENTRANT_TYPES = ("RLock", "TrackedRLock", "Condition")


@dataclass(frozen=True)
class LockDecl:
    """One ``self.X = threading.Lock()``-style declaration."""

    key: LockKey
    lock_type: str          # one of LOCK_TYPES
    file: str
    line: int
    #: Tracked name literal (``TrackedLock("storage.data", ...)``), if
    #: statically resolvable; empty otherwise.
    tracked_name: str = ""
    #: Hierarchy rank, if statically resolvable (RANK_* constant folding).
    rank: Optional[int] = None

    @property
    def tracked(self) -> bool:
        return self.lock_type in TRACKED_TYPES

    @property
    def reentrant(self) -> bool:
        return self.lock_type in REENTRANT_TYPES

    @property
    def display(self) -> str:
        """Human-facing lock label: tracked name, else Class.attr."""
        return self.tracked_name or f"{self.key[0]}.{self.key[1]}"


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition site inside a method body."""

    key: LockKey
    file: str
    line: int
    #: Locks already held (statically) at this acquisition.
    held: FrozenSet[LockKey] = frozenset()
    #: ``"with"`` or ``"manual"`` (explicit ``.acquire()`` call).
    via: str = "with"


@dataclass(frozen=True)
class BlockingCall:
    """A potentially-blocking call made while at least one lock is held."""

    kind: str               # sleep | join | wait | queue-get | future | io
    call: str               # rendered call expression, e.g. "time.sleep"
    file: str
    line: int
    held: FrozenSet[LockKey] = frozenset()
    #: True when the call carries a timeout argument (bounded blocking).
    has_timeout: bool = False


@dataclass(frozen=True)
class AttrWrite:
    """One ``self.X = ...`` / ``self.X += ...`` site."""

    attr: str
    file: str
    line: int
    method: str
    #: Locks held (statically) at the write.
    held: FrozenSet[LockKey] = frozenset()


@dataclass
class MethodInfo:
    """Per-method concurrency facts."""

    class_name: str
    name: str
    file: str
    line: int
    acquisitions: List[Acquisition] = field(default_factory=list)
    blocking_calls: List[BlockingCall] = field(default_factory=list)
    attr_writes: List[AttrWrite] = field(default_factory=list)
    #: Methods this body calls, as (class name, method name); class name
    #: resolved via self-calls and constructor-based attribute typing.
    calls: List[Tuple[str, str]] = field(default_factory=list)
    #: The same calls with the lock set held at the call site and the
    #: line: ((class, method), held, line).
    calls_held: List[Tuple[Tuple[str, str], FrozenSet[LockKey], int]] = \
        field(default_factory=list)
    #: ``target=self.m`` / ``pool.submit(self.m, ...)`` launch sites:
    #: method names handed to another thread.
    thread_targets: List[str] = field(default_factory=list)
    #: Manual lock-call counts for the unbalanced-acquire rule.
    manual_acquires: Dict[LockKey, int] = field(default_factory=dict)
    manual_releases: Dict[LockKey, int] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.class_name}.{self.name}"


@dataclass
class ClassInfo:
    """Per-class concurrency facts."""

    name: str
    file: str
    line: int
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    #: Attribute name -> class name, inferred from ``self.X = Cls(...)``.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: Wrapper classes defining both ``acquire`` and ``release`` are
    #: exempt from the unbalanced-acquire rule (their split is the API).
    @property
    def is_lock_wrapper(self) -> bool:
        return "acquire" in self.methods and "release" in self.methods


@dataclass(frozen=True)
class AcquisitionEdge:
    """``holder`` was held when ``acquired`` was taken."""

    holder: LockKey
    acquired: LockKey
    file: str
    line: int
    #: The method whose body establishes the edge.
    method: str
    #: "direct" for with-nesting in one body; "call" when the inner lock
    #: is acquired by a (transitively) called method.
    via: str = "direct"


class SourceIndex:
    """Everything extracted from one source tree, plus derived views."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.files: List[str] = []
        self.classes: Dict[str, ClassInfo] = {}
        #: Non-lock ``threading.*`` sites for the untracked-lock rule:
        #: (class, attr, type, file, line).
        self.raw_locks: List[Tuple[str, str, str, str, int]] = []

    # ------------------------------------------------------------------ #
    # lookups

    def lock(self, key: LockKey) -> Optional[LockDecl]:
        cls = self.classes.get(key[0])
        return cls.locks.get(key[1]) if cls else None

    def all_locks(self) -> List[LockDecl]:
        return [decl for cls in self.classes.values()
                for decl in cls.locks.values()]

    def all_methods(self) -> List[MethodInfo]:
        return [m for cls in self.classes.values()
                for m in cls.methods.values()]

    def method(self, class_name: str, name: str) -> Optional[MethodInfo]:
        cls = self.classes.get(class_name)
        return cls.methods.get(name) if cls else None

    def display(self, key: LockKey) -> str:
        decl = self.lock(key)
        return decl.display if decl else f"{key[0]}.{key[1]}"

    # ------------------------------------------------------------------ #
    # derived: transitive acquire sets and the acquisition-order graph

    def transitive_acquires(self) -> Dict[str, Set[LockKey]]:
        """Method qualname -> every lock its call tree may acquire.

        Fixpoint over the (statically resolvable) call graph; cycles in
        the call graph converge because the sets only grow.
        """
        acquires: Dict[str, Set[LockKey]] = {}
        for method in self.all_methods():
            acquires[method.qualname] = {a.key for a in method.acquisitions}
        changed = True
        while changed:
            changed = False
            for method in self.all_methods():
                mine = acquires[method.qualname]
                before = len(mine)
                for cls_name, callee in method.calls:
                    target = self.method(cls_name, callee)
                    if target is not None:
                        mine |= acquires[target.qualname]
                if len(mine) != before:
                    changed = True
        return acquires

    def acquisition_edges(self) -> List[AcquisitionEdge]:
        """Every held->acquired edge, direct and call-mediated."""
        edges: List[AcquisitionEdge] = []
        seen: Set[Tuple[LockKey, LockKey, str]] = set()
        transitive = self.transitive_acquires()

        def add(holder: LockKey, acquired: LockKey, file: str, line: int,
                method: str, via: str) -> None:
            if holder == acquired:
                return  # reentrance is the sanitizer's business
            dedup = (holder, acquired, via)
            if dedup in seen:
                return
            seen.add(dedup)
            edges.append(AcquisitionEdge(holder, acquired, file, line,
                                         method, via))

        for method in self.all_methods():
            for acq in method.acquisitions:
                for held in acq.held:
                    add(held, acq.key, acq.file, acq.line,
                        method.qualname, "direct")
        # Call-mediated: a call made while holding H reaches every lock
        # in the callee's transitive acquire set.
        for method in self.all_methods():
            for (cls_name, callee), held, line in method.calls_held:
                target = self.method(cls_name, callee)
                if target is None or not held:
                    continue
                for inner in transitive[target.qualname]:
                    for holder in held:
                        add(holder, inner, method.file, line,
                            method.qualname, "call")
        return edges

    # ------------------------------------------------------------------ #
    # derived: thread-entry reachability

    def thread_reachable(self) -> Set[str]:
        """Method qualnames reachable from any thread entry point."""
        entries: List[str] = []
        for method in self.all_methods():
            for target in method.thread_targets:
                if self.method(method.class_name, target) is not None:
                    entries.append(f"{method.class_name}.{target}")
        reachable: Set[str] = set()
        frontier = list(entries)
        while frontier:
            qualname = frontier.pop()
            if qualname in reachable:
                continue
            reachable.add(qualname)
            cls_name, _, name = qualname.rpartition(".")
            method = self.method(cls_name, name)
            if method is None:
                continue
            for callee_cls, callee in method.calls:
                if self.method(callee_cls, callee) is not None:
                    frontier.append(f"{callee_cls}.{callee}")
        return reachable


def find_cycles(edges: List[AcquisitionEdge]) -> List[List[LockKey]]:
    """Elementary cycles in the acquisition-order graph (DFS).

    Returns each cycle once as a node list (first node repeated at the
    end is implied, not included); deterministic order for stable output.
    """
    graph: Dict[LockKey, List[AcquisitionEdge]] = {}
    for edge in edges:
        graph.setdefault(edge.holder, []).append(edge)
    cycles: List[List[LockKey]] = []
    seen_cycles: Set[FrozenSet[LockKey]] = set()

    def dfs(node: LockKey, path: List[LockKey], on_path: Set[LockKey]):
        for edge in graph.get(node, ()):  # noqa: B023
            nxt = edge.acquired
            if nxt in on_path:
                start = path.index(nxt)
                cycle = path[start:]
                ident = frozenset(cycle)
                if ident not in seen_cycles:
                    seen_cycles.add(ident)
                    cycles.append(list(cycle))
                continue
            path.append(nxt)
            on_path.add(nxt)
            dfs(nxt, path, on_path)
            on_path.discard(nxt)
            path.pop()

    for start in sorted(graph):
        dfs(start, [start], {start})
    return cycles
