"""Static concurrency analysis: lock-order soundness for the source tree.

The runtime half of concurrency soundness lives in
:mod:`repro.common.sync` (tracked locks + the lock sanitizer); this
package is the static half.  It never imports the code under analysis:
:mod:`repro.analysis.concurrency.extract` parses the source tree with
the stdlib ``ast`` module into a :class:`~.model.SourceIndex` (lock
declarations, acquisition sites, call graph, thread entry points), and
:mod:`repro.analysis.concurrency.rules` contributes a ``concurrency-*``
rule family to the existing lint framework via the ``check_source``
hook.

Wired into ``repro lint`` as the ``source`` workload::

    repro lint --workload source --format json --fail-on error
"""

from repro.analysis.concurrency.extract import build_index
from repro.analysis.concurrency.model import (
    AcquisitionEdge,
    ClassInfo,
    LockDecl,
    LockKey,
    MethodInfo,
    SourceIndex,
)

__all__ = [
    "AcquisitionEdge",
    "ClassInfo",
    "LockDecl",
    "LockKey",
    "MethodInfo",
    "SourceIndex",
    "build_index",
]
