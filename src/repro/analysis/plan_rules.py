"""Rule pack 1: structural plan validation.

These rules re-check invariants that operator constructors enforce at
build time but that nothing re-verifies after rewrites, matching, and
buildout have transformed the tree.  A refactor that mutates plans through
``object.__setattr__``, builds nodes through a path that skips
``__post_init__``, or wires a ViewScan with the wrong schema corrupts
reuse silently — these rules make that loud.

Acyclicity is enforced by the analyzer itself (rule name
``plan-dag-acyclic``) because no other rule is safe to run on a cyclic
plan.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.analysis.framework import AnalysisContext, Finding, Rule, register
from repro.plan.expressions import ColumnRef, Expr, Star
from repro.plan.logical import (
    Filter,
    GroupBy,
    Join,
    LogicalPlan,
    Project,
    Sort,
    Spool,
    Union,
    ViewScan,
)

# --------------------------------------------------------------------- #
# helpers


def _column_refs(exprs: Iterable[Expr]) -> Iterator[ColumnRef]:
    for expr in exprs:
        for node in expr.walk():
            if isinstance(node, ColumnRef):
                yield node


def _resolves(ref: ColumnRef, schema: Sequence[str]) -> bool:
    """Mirror of ``ColumnRef.evaluate``'s resolution order."""
    if ref.key in schema or ref.name in schema:
        return True
    suffix = "." + ref.name
    return sum(1 for column in schema if column.endswith(suffix)) == 1


def _unresolved(exprs: Iterable[Expr],
                schema: Sequence[str]) -> List[str]:
    missing = []
    for ref in _column_refs(exprs):
        if isinstance(ref, Star):
            continue
        if not _resolves(ref, schema) and ref.key not in missing:
            missing.append(ref.key)
    return missing


# --------------------------------------------------------------------- #
# arity rules


@register
class ProjectArityRule(Rule):
    name = "plan-project-arity"
    severity = "error"
    description = "Project exprs and names lists must have equal length"

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if not isinstance(node, Project):
            return
        if len(node.exprs) != len(node.names):
            yield self.finding(
                f"Project has {len(node.exprs)} exprs but "
                f"{len(node.names)} names",
                operator=node.op_label, path=path,
                exprs=len(node.exprs), names=len(node.names))


@register
class GroupByArityRule(Rule):
    name = "plan-groupby-arity"
    severity = "error"
    description = "GroupBy names must cover keys then aggregates, 1:1"

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if not isinstance(node, GroupBy):
            return
        expected = len(node.keys) + len(node.aggregates)
        if len(node.names) != expected:
            yield self.finding(
                f"GroupBy has {len(node.keys)} keys + "
                f"{len(node.aggregates)} aggregates but "
                f"{len(node.names)} names",
                operator=node.op_label, path=path)
        for aggregate in node.aggregates:
            if not aggregate.is_aggregate():
                yield self.finding(
                    f"GroupBy aggregate {aggregate.to_sql()} contains no "
                    "aggregate function", severity="warn",
                    operator=node.op_label, path=path)


@register
class JoinKeysRule(Rule):
    name = "plan-join-keys"
    severity = "error"
    description = ("Join key lists must align (signature hashing zips "
                   "them, silently truncating the longer side) and each "
                   "side's keys must resolve against that side's child")

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if not isinstance(node, Join):
            return
        if len(node.left_keys) != len(node.right_keys):
            yield self.finding(
                f"Join has {len(node.left_keys)} left keys but "
                f"{len(node.right_keys)} right keys; "
                "zip() would silently drop the extras from the signature",
                operator=node.op_label, path=path)
        for side, keys, child in (("left", node.left_keys, node.left),
                                  ("right", node.right_keys, node.right)):
            missing = _unresolved(keys, child.schema)
            if missing:
                yield self.finding(
                    f"Join {side} keys reference columns missing from the "
                    f"{side} child schema: {', '.join(missing)}",
                    operator=node.op_label, path=path)
        dropped = [c for c in node.drop_right if c not in node.right.schema]
        if dropped:
            yield self.finding(
                f"Join drop_right names columns not in the right child "
                f"schema: {', '.join(dropped)}",
                severity="warn", operator=node.op_label, path=path)


@register
class UnionArityRule(Rule):
    name = "plan-union-arity"
    severity = "error"
    description = "Union inputs must agree on arity (and number >= 2)"

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if not isinstance(node, Union):
            return
        if len(node.inputs) < 2:
            yield self.finding(
                f"Union has {len(node.inputs)} inputs (needs at least 2)",
                operator=node.op_label, path=path)
            return
        arity = len(node.inputs[0].schema)
        for index, child in enumerate(node.inputs[1:], start=1):
            if len(child.schema) != arity:
                yield self.finding(
                    f"Union input {index} has arity {len(child.schema)}, "
                    f"input 0 has arity {arity}",
                    operator=node.op_label, path=path)


# --------------------------------------------------------------------- #
# reference resolution


@register
class ColumnResolutionRule(Rule):
    name = "plan-column-resolution"
    severity = "error"
    description = ("Every column reference must resolve against the "
                   "operator's child schema")

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        exprs: List[Expr] = []
        schema: Sequence[str] = ()
        if isinstance(node, Filter):
            exprs, schema = [node.predicate], node.child.schema
        elif isinstance(node, Project):
            exprs, schema = list(node.exprs), node.child.schema
        elif isinstance(node, GroupBy):
            exprs = list(node.keys) + list(node.aggregates)
            schema = node.child.schema
        elif isinstance(node, Sort):
            exprs, schema = list(node.keys), node.child.schema
        elif isinstance(node, Join):
            # Sidedness of equi-keys is JoinKeysRule's job; the residual
            # sees the merged row (before drop_right is applied).
            if node.residual is None:
                return
            exprs = [node.residual]
            schema = tuple(node.left.schema) + tuple(node.right.schema)
        else:
            return
        missing = _unresolved(exprs, schema)
        if missing:
            yield self.finding(
                f"{node.op_label} references columns missing from its "
                f"input schema: {', '.join(missing)}",
                operator=node.op_label, path=path,
                missing=missing, schema=list(schema))


# --------------------------------------------------------------------- #
# CloudViews operators


@register
class ViewScanSchemaRule(Rule):
    name = "plan-viewscan-schema"
    severity = "error"
    description = ("ViewScan columns must match the schema recorded on "
                   "the materialized view (and on its definition)")

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if not isinstance(node, ViewScan):
            return
        if not node.columns:
            yield self.finding("ViewScan has an empty column list",
                               operator=node.op_label, path=path)
        if not node.signature:
            yield self.finding("ViewScan has no signature",
                               operator=node.op_label, path=path)
        store = ctx.view_store
        if store is None or not node.signature:
            return
        view = store.get(node.signature)
        if view is None:
            return  # reuse-view-liveness reports the missing view
        if view.schema and tuple(view.schema) != tuple(node.columns):
            yield self.finding(
                "ViewScan columns disagree with the view's recorded "
                f"schema: scan={list(node.columns)} "
                f"view={list(view.schema)}",
                operator=node.op_label, path=path)
        definition = view.definition
        if definition is not None:
            def_schema = tuple(definition.schema)
            if def_schema != tuple(node.columns):
                yield self.finding(
                    "ViewScan columns disagree with the view definition's "
                    f"schema: scan={list(node.columns)} "
                    f"definition={list(def_schema)}",
                    operator=node.op_label, path=path)


@register
class SpoolWellFormedRule(Rule):
    name = "plan-spool-wellformed"
    severity = "error"
    description = ("Spools must encode their signature in the output "
                   "path, materialize each signature at most once per "
                   "plan, and never wrap another spool or the view they "
                   "would recreate")

    def check_node(self, node: LogicalPlan, path: str,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        if not isinstance(node, Spool):
            return
        if not node.signature:
            yield self.finding("Spool has no signature",
                               operator=node.op_label, path=path)
        elif node.signature not in node.view_path:
            yield self.finding(
                f"Spool path {node.view_path!r} does not encode its "
                f"strict signature {node.signature[:12]}…",
                operator=node.op_label, path=path)
        if node.expiry_seconds <= 0:
            yield self.finding(
                f"Spool expiry {node.expiry_seconds} is not positive; the "
                "view would be born expired", severity="warn",
                operator=node.op_label, path=path)
        if isinstance(node.child, Spool):
            yield self.finding(
                "Spool directly wraps another Spool (one consumer pair "
                "per materialization)", operator=node.op_label, path=path)
        if isinstance(node.child, ViewScan) and \
                node.child.signature == node.signature:
            yield self.finding(
                "Spool re-materializes the very view it reads "
                f"({node.signature[:12]}…)",
                operator=node.op_label, path=path)

    def check_plan(self, plan: LogicalPlan,
                   ctx: AnalysisContext) -> Iterable[Finding]:
        from repro.analysis.framework import safe_walk

        seen: dict = {}
        for node, path in safe_walk(plan)[0]:
            if isinstance(node, Spool) and node.signature:
                if node.signature in seen:
                    yield self.finding(
                        f"signature {node.signature[:12]}… is spooled "
                        f"twice in one plan ({seen[node.signature]} and "
                        f"{path}); the second producer would race the "
                        "first", operator=node.op_label, path=path)
                else:
                    seen[node.signature] = path
