"""Recursive-descent parser for the SCOPE-like SQL subset.

Grammar (informally)::

    query       := select (UNION [ALL] select)* [ORDER BY order_list] [LIMIT n]
    select      := SELECT [DISTINCT] item (',' item)*
                   FROM relation join*
                   [WHERE expr] [GROUP BY columns] [HAVING expr]
                   [PROCESS USING ident [NONDETERMINISTIC] [DEPTH n]]
    relation    := ident [[AS] ident] | '(' query ')' [AS] ident
    join        := [LEFT] [INNER] JOIN relation [ON expr]
    expr        := standard precedence: OR < AND < NOT < cmp < add < mul < unary

Joins without ON are natural joins, matching the paper's Figure 4 queries
(``FROM Sales JOIN Customer WHERE ...``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import ParseError
from repro.plan.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.ast import (
    JoinClause,
    OrderItem,
    ProcessClause,
    Query,
    Relation,
    SelectItem,
    SelectStmt,
    SubqueryRef,
    TableRef,
)
from repro.sql.lexer import Token, tokenize


def parse(text: str) -> Query:
    """Parse ``text`` into a :class:`Query`, raising :class:`ParseError`."""
    return _Parser(text).parse_query(top_level=True)


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------ #
    # token plumbing

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.pos += 1
        return token

    def check(self, kind: str, value: str = "") -> bool:
        return self.current.matches(kind, value)

    def accept(self, kind: str, value: str = "") -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str = "") -> Token:
        if not self.check(kind, value):
            want = value or kind
            got = self.current.value or self.current.kind
            raise ParseError(f"expected {want}, got {got!r}",
                             self.current.position, self.text)
        return self.advance()

    # ------------------------------------------------------------------ #
    # statements

    def parse_query(self, top_level: bool = False) -> Query:
        selects = [self.parse_select()]
        union_all = True
        while self.accept("KEYWORD", "UNION"):
            union_all = bool(self.accept("KEYWORD", "ALL"))
            selects.append(self.parse_select())
        order_by: Tuple[OrderItem, ...] = ()
        if self.accept("KEYWORD", "ORDER"):
            self.expect("KEYWORD", "BY")
            order_by = tuple(self._order_list())
        limit: Optional[int] = None
        if self.accept("KEYWORD", "LIMIT"):
            token = self.expect("NUMBER")
            limit = int(token.value)
        if top_level:
            self.expect("EOF")
        return Query(tuple(selects), union_all, order_by, limit)

    def parse_select(self) -> SelectStmt:
        self.expect("KEYWORD", "SELECT")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        items = [self._select_item()]
        while self.accept("OP", ","):
            items.append(self._select_item())
        self.expect("KEYWORD", "FROM")
        relation = self._relation()
        joins: List[JoinClause] = []
        while self.check("KEYWORD", "JOIN") or self.check("KEYWORD", "LEFT") \
                or self.check("KEYWORD", "INNER"):
            joins.append(self._join_clause())
        where = self.parse_expr() if self.accept("KEYWORD", "WHERE") else None
        group_by: Tuple[ColumnRef, ...] = ()
        if self.accept("KEYWORD", "GROUP"):
            self.expect("KEYWORD", "BY")
            group_by = tuple(self._column_list())
        having = self.parse_expr() if self.accept("KEYWORD", "HAVING") else None
        process = self._process_clause()
        return SelectStmt(tuple(items), relation, tuple(joins), where,
                          group_by, having, distinct, process)

    def _select_item(self) -> SelectItem:
        if self.check("OP", "*"):
            self.advance()
            return SelectItem(Star())
        expr = self.parse_expr()
        # ``t.*`` parses as ColumnRef(t) '.' '*'; handle the trailing star.
        if isinstance(expr, ColumnRef) and expr.table is None \
                and self.check("OP", ".") is False and self.check("OP", "*"):
            self.advance()
            return SelectItem(Star(expr.name))
        alias: Optional[str] = None
        if self.accept("KEYWORD", "AS"):
            alias = self.expect("IDENT").value
        elif self.check("IDENT"):
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _relation(self) -> Relation:
        if self.accept("OP", "("):
            query = self.parse_query()
            self.expect("OP", ")")
            self.accept("KEYWORD", "AS")
            alias = self.expect("IDENT").value
            return SubqueryRef(query, alias)
        name = self.expect("IDENT").value
        alias: Optional[str] = None
        if self.accept("KEYWORD", "AS"):
            alias = self.expect("IDENT").value
        elif self.check("IDENT"):
            alias = self.advance().value
        return TableRef(name, alias)

    def _join_clause(self) -> JoinClause:
        how = "inner"
        if self.accept("KEYWORD", "LEFT"):
            how = "left"
        self.accept("KEYWORD", "INNER")
        self.expect("KEYWORD", "JOIN")
        relation = self._relation()
        condition = None
        if self.accept("KEYWORD", "ON"):
            condition = self.parse_expr()
        return JoinClause(relation, condition, how)

    def _process_clause(self) -> Optional[ProcessClause]:
        if not self.accept("KEYWORD", "PROCESS"):
            return None
        self.expect("KEYWORD", "USING")
        name = self.expect("IDENT").value
        deterministic = not self.accept("KEYWORD", "NONDETERMINISTIC")
        depth = 0
        if self.accept("KEYWORD", "DEPTH"):
            depth = int(self.expect("NUMBER").value)
        return ProcessClause(name, deterministic, depth)

    def _column_list(self) -> List[ColumnRef]:
        columns = [self._column_ref()]
        while self.accept("OP", ","):
            columns.append(self._column_ref())
        return columns

    def _column_ref(self) -> ColumnRef:
        name = self.expect("IDENT").value
        if self.accept("OP", "."):
            column = self.expect("IDENT").value
            return ColumnRef(column, table=name)
        return ColumnRef(name)

    def _order_list(self) -> List[OrderItem]:
        items = [self._order_item()]
        while self.accept("OP", ","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> OrderItem:
        column = self._column_ref()
        ascending = True
        if self.accept("KEYWORD", "DESC"):
            ascending = False
        else:
            self.accept("KEYWORD", "ASC")
        return OrderItem(column, ascending)

    # ------------------------------------------------------------------ #
    # expressions (precedence climbing)

    def parse_expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        expr = self._and_expr()
        while self.accept("KEYWORD", "OR"):
            expr = BinaryOp("OR", expr, self._and_expr())
        return expr

    def _and_expr(self) -> Expr:
        expr = self._not_expr()
        while self.accept("KEYWORD", "AND"):
            expr = BinaryOp("AND", expr, self._not_expr())
        return expr

    def _not_expr(self) -> Expr:
        if self.accept("KEYWORD", "NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        expr = self._additive()
        if self.check("OP") and self.current.value in ("=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            return BinaryOp(op, expr, self._additive())
        if self.accept("KEYWORD", "IS"):
            negated = bool(self.accept("KEYWORD", "NOT"))
            self.expect("KEYWORD", "NULL")
            return UnaryOp("ISNOTNULL" if negated else "ISNULL", expr)
        negated = False
        if self.check("KEYWORD", "NOT") and self._peek_kind_after_not():
            self.advance()
            negated = True
        if self.accept("KEYWORD", "IN"):
            return self._in_list(expr, negated)
        if self.accept("KEYWORD", "BETWEEN"):
            low = self._additive()
            self.expect("KEYWORD", "AND")
            high = self._additive()
            between = BinaryOp("AND",
                               BinaryOp(">=", expr, low),
                               BinaryOp("<=", expr, high))
            return UnaryOp("NOT", between) if negated else between
        if self.accept("KEYWORD", "LIKE"):
            pattern = self.expect("STRING")
            return Like(expr, pattern.value, negated)
        if negated:  # pragma: no cover - guarded by _peek_kind_after_not
            raise ParseError("expected IN, BETWEEN, or LIKE after NOT",
                             self.current.position, self.text)
        return expr

    def _peek_kind_after_not(self) -> bool:
        """True if NOT starts a postfix predicate (NOT IN/BETWEEN/LIKE)."""
        nxt = self.tokens[self.pos + 1]
        return nxt.kind == "KEYWORD" and nxt.value in ("IN", "BETWEEN",
                                                       "LIKE")

    def _in_list(self, operand: Expr, negated: bool) -> Expr:
        self.expect("OP", "(")
        values: List[Literal] = []
        while True:
            value = self._primary()
            if not isinstance(value, Literal):
                raise ParseError("IN lists support literal values only",
                                 self.current.position, self.text)
            values.append(value)
            if not self.accept("OP", ","):
                break
        self.expect("OP", ")")
        return InList(operand, tuple(values), negated)

    def _additive(self) -> Expr:
        expr = self._multiplicative()
        while self.check("OP") and self.current.value in ("+", "-"):
            op = self.advance().value
            expr = BinaryOp(op, expr, self._multiplicative())
        return expr

    def _multiplicative(self) -> Expr:
        expr = self._unary()
        while self.check("OP") and self.current.value in ("*", "/", "%"):
            op = self.advance().value
            expr = BinaryOp(op, expr, self._unary())
        return expr

    def _unary(self) -> Expr:
        if self.accept("OP", "-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            value: object = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "STRING":
            self.advance()
            return Literal(token.value)
        if token.kind == "PARAM":
            self.advance()
            # Unbound parameter: carries its name; the engine binds a value
            # per job instance (recurring signatures keep only the name).
            return Literal(None, param_name=token.value)
        if token.matches("KEYWORD", "NULL"):
            self.advance()
            return Literal(None)
        if token.matches("KEYWORD", "TRUE"):
            self.advance()
            return Literal(True)
        if token.matches("KEYWORD", "FALSE"):
            self.advance()
            return Literal(False)
        if token.matches("KEYWORD", "CASE"):
            return self._case_expr()
        if token.matches("OP", "("):
            self.advance()
            expr = self.parse_expr()
            self.expect("OP", ")")
            return expr
        if token.kind == "IDENT":
            self.advance()
            if self.check("OP", "("):
                return self._func_call(token.value)
            if self.accept("OP", "."):
                if self.accept("OP", "*"):
                    return Star(token.value)
                column = self.expect("IDENT").value
                return ColumnRef(column, table=token.value)
            return ColumnRef(token.value)
        raise ParseError(f"unexpected token {token.value or token.kind!r}",
                         token.position, self.text)

    def _func_call(self, name: str) -> Expr:
        self.expect("OP", "(")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        args: List[Expr] = []
        if self.accept("OP", "*"):
            # COUNT(*) -- model as zero-argument COUNT.
            self.expect("OP", ")")
            return FuncCall(name, (), distinct)
        if not self.check("OP", ")"):
            args.append(self.parse_expr())
            while self.accept("OP", ","):
                args.append(self.parse_expr())
        self.expect("OP", ")")
        return FuncCall(name, tuple(args), distinct)

    def _case_expr(self) -> Expr:
        self.expect("KEYWORD", "CASE")
        conditions: List[Expr] = []
        results: List[Expr] = []
        while self.accept("KEYWORD", "WHEN"):
            conditions.append(self.parse_expr())
            self.expect("KEYWORD", "THEN")
            results.append(self.parse_expr())
        if not conditions:
            raise ParseError("CASE requires at least one WHEN",
                             self.current.position, self.text)
        default = self.parse_expr() if self.accept("KEYWORD", "ELSE") else None
        self.expect("KEYWORD", "END")
        return CaseWhen(tuple(conditions), tuple(results), default)
