"""Abstract syntax tree for the SCOPE-like SQL subset.

The AST is deliberately thin: scalar expressions reuse the plan-level
:mod:`repro.plan.expressions` nodes, so the plan builder only needs to
resolve names and lower relational structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple, Union as TypingUnion

if TYPE_CHECKING:  # avoid a runtime cycle with repro.plan
    from repro.plan.expressions import ColumnRef, Expr
else:  # pragma: no cover - annotations only
    ColumnRef = Expr = object


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A named dataset in FROM, with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef:
    """A parenthesized subquery in FROM; alias is required."""

    query: "SelectStmt"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


Relation = TypingUnion[TableRef, SubqueryRef]


@dataclass(frozen=True)
class JoinClause:
    """``[LEFT] JOIN <relation> [ON <condition>]``.

    A missing condition means a *natural join*: the builder equates all
    column names common to both sides, matching the bare ``JOIN`` syntax of
    the paper's Figure 4 queries.
    """

    relation: Relation
    condition: Optional[Expr] = None
    how: str = "inner"


@dataclass(frozen=True)
class ProcessClause:
    """``PROCESS USING <udo> [NONDETERMINISTIC] [DEPTH <n>]``.

    Models a SCOPE user-defined operator applied to the query result.
    """

    udo_name: str
    deterministic: bool = True
    dependency_depth: int = 0


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: ColumnRef
    ascending: bool = True


@dataclass(frozen=True)
class SelectStmt:
    """A single SELECT block (no set operators)."""

    items: Tuple[SelectItem, ...]
    relation: Relation
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[ColumnRef, ...] = ()
    having: Optional[Expr] = None
    distinct: bool = False
    process: Optional[ProcessClause] = None


@dataclass(frozen=True)
class Query:
    """Top-level statement: one or more SELECTs joined by UNION [ALL],
    with optional trailing ORDER BY / LIMIT."""

    selects: Tuple[SelectStmt, ...]
    union_all: bool = True
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None

    @property
    def is_union(self) -> bool:
        return len(self.selects) > 1
