"""Tokenizer for the SCOPE-like SQL subset.

Produces a flat token stream for the recursive-descent parser.  Keywords are
case-insensitive; identifiers preserve case.  Parameters are written
``@name`` and model the time-varying parameters of recurring SCOPE jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.common.errors import ParseError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "JOIN", "LEFT", "INNER", "ON", "AS", "AND", "OR", "NOT", "UNION",
    "ALL", "CASE", "WHEN", "THEN", "ELSE", "END", "ASC", "DESC", "NULL",
    "IS", "PROCESS", "USING", "NONDETERMINISTIC", "DEPTH", "TRUE", "FALSE",
    "IN", "BETWEEN", "LIKE",
}

#: Multi-character operators first so maximal munch applies.
OPERATORS = ["<>", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%",
             "(", ")", ",", "."]


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str       # KEYWORD | IDENT | NUMBER | STRING | OP | PARAM | EOF
    value: str
    position: int

    def matches(self, kind: str, value: str = "") -> bool:
        if self.kind != kind:
            return False
        return not value or self.value == value


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``, raising :class:`ParseError` on bad input."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            yield _string_token(text, i)
            # Skip past the token we just produced (including doubled quotes).
            j = i + 1
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a qualifier, not a decimal.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token("NUMBER", text[i:j], i)
            i = j
            continue
        if ch == "@":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise ParseError("expected parameter name after '@'", i, text)
            yield Token("PARAM", text[i + 1:j], i)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("KEYWORD", upper, i)
            else:
                yield Token("IDENT", word, i)
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                yield Token("OP", op, i)
                i += len(op)
                matched = True
                break
        if not matched:
            raise ParseError(f"unexpected character {ch!r}", i, text)
    yield Token("EOF", "", n)


def _string_token(text: str, start: int) -> Token:
    """Lex a single-quoted string starting at ``start`` (quote doubling)."""
    parts: List[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return Token("STRING", "".join(parts), start)
        parts.append(ch)
        i += 1
    raise ParseError("unterminated string literal", start, text)
