"""SCOPE-like SQL frontend: lexer, parser, AST."""

from repro.sql.ast import (
    JoinClause,
    OrderItem,
    ProcessClause,
    Query,
    SelectItem,
    SelectStmt,
    SubqueryRef,
    TableRef,
)
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse

__all__ = [
    "JoinClause", "OrderItem", "ProcessClause", "Query", "SelectItem",
    "SelectStmt", "SubqueryRef", "TableRef", "Token", "tokenize", "parse",
]
