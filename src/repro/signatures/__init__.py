"""Subexpression signatures: strict, recurring, tags, eligibility."""

from repro.signatures.signature import (
    MAX_DEPENDENCY_DEPTH,
    Subexpression,
    enumerate_subexpressions,
    is_reuse_eligible,
    recurring_signature,
    signature_tag,
    strict_signature,
)

__all__ = [
    "MAX_DEPENDENCY_DEPTH", "Subexpression", "enumerate_subexpressions",
    "is_reuse_eligible", "recurring_signature", "signature_tag",
    "strict_signature",
]
