"""Strict and recurring subexpression signatures.

The paper (Section 2.3): "we identify the common subexpressions across
queries using a strict subexpression hash, known as *signature*, that
uniquely captures a subexpression instance including its inputs used", and
"for the selected views, we collect their corresponding *recurring
signatures* that discard time varying attributes like parameter values and
input GUIDs, and are likely to remain the same in future instances of the
recurring workloads".

* **Strict signature** -- recursive hash over the normalized logical
  subtree, including scanned stream GUIDs and literal parameter values.
  Two subexpressions with equal strict signatures compute the same result
  over the same inputs, so view matching is a hash-equality check
  ("lightweight view matching", Section 2.4).
* **Recurring signature** -- same hash with stream GUIDs replaced by
  dataset names and parameter-bound literals replaced by their parameter
  names.  It identifies the *template* of a subexpression across recurring
  job instances, and is what view selection operates on.

Signatures are salted with the engine's runtime version: "sometimes they
also evolve with new SCOPE runtime ... as a result, all existing
materialized views get invalidated" (Section 4).

UDO handling mirrors Section 4 ("Signature correctness"): subtrees
containing non-deterministic user code or too-deep dependency chains are
excluded from reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.hashing import combine_unordered, short_tag, stable_hash
from repro.plan.expressions import Expr, Literal, rewrite
from repro.plan.logical import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    LogicalPlan,
    Process,
    Project,
    Scan,
    Sort,
    Spool,
    Union,
    ViewScan,
)

#: Dependency chains deeper than this are "too long" to hash safely.
MAX_DEPENDENCY_DEPTH = 16


def strict_signature(plan: LogicalPlan, salt: str = "") -> str:
    """Hash of the subexpression *instance*, inputs included."""
    return _signature(plan, recurring=False, salt=salt)


def recurring_signature(plan: LogicalPlan, salt: str = "") -> str:
    """Hash of the subexpression *template*: GUIDs and params discarded."""
    return _signature(plan, recurring=True, salt=salt)


def is_reuse_eligible(plan: LogicalPlan,
                      max_dependency_depth: int = MAX_DEPENDENCY_DEPTH) -> bool:
    """False if the subtree contains user code we refuse to sign.

    "We skip any computation reuse if the dependency chain is too long or
    if a UDO is found to contain non-determinism" (Section 4).
    """
    for node in plan.walk():
        if isinstance(node, Process):
            if not node.deterministic:
                return False
            if node.dependency_depth > max_dependency_depth:
                return False
    return True


def signature_tag(recurring_sig: str) -> str:
    """Short tag for insights-service indexing and access control."""
    return short_tag(recurring_sig)


@dataclass(frozen=True)
class Subexpression:
    """One subexpression of a query plan with its signature bundle."""

    plan: LogicalPlan
    strict: str
    recurring: str
    tag: str
    eligible: bool
    depth: int    # distance from the query root
    height: int   # longest path down to a leaf
    operator: str

    @property
    def is_leaf(self) -> bool:
        return self.height == 0


def enumerate_subexpressions(plan: LogicalPlan,
                             salt: str = "") -> List[Subexpression]:
    """All subexpressions of ``plan``, root first.

    This is the unit of the paper's workload analysis ("4.3 billion
    sub-computations, referred to as query subexpressions").

    Child hashes are memoized across the enumeration, so the whole pass is
    O(n) in the number of operators instead of re-hashing every subtree
    from scratch at each node; eligibility is likewise computed bottom-up
    in the same pass.
    """
    result: List[Subexpression] = []
    strict_memo: Dict[int, str] = {}
    recurring_memo: Dict[int, str] = {}
    _enumerate(plan, salt, 0, result, strict_memo, recurring_memo)
    result.reverse()
    return result


def _enumerate(plan: LogicalPlan, salt: str, depth: int,
               out: List[Subexpression],
               strict_memo: Dict[int, str],
               recurring_memo: Dict[int, str]) -> Tuple[int, bool]:
    height = 0
    eligible = True
    for child in plan.children():
        child_height, child_eligible = _enumerate(
            child, salt, depth + 1, out, strict_memo, recurring_memo)
        height = max(height, child_height + 1)
        eligible = eligible and child_eligible
    if isinstance(plan, Process):
        if not plan.deterministic:
            eligible = False
        elif plan.dependency_depth > MAX_DEPENDENCY_DEPTH:
            eligible = False
    recurring = _signature(plan, True, salt, recurring_memo)
    out.append(Subexpression(
        plan=plan,
        strict=_signature(plan, False, salt, strict_memo),
        recurring=recurring,
        tag=signature_tag(recurring),
        eligible=eligible,
        depth=depth,
        height=height,
        operator=plan.op_label,
    ))
    return height, eligible


# --------------------------------------------------------------------- #
# hashing internals


def _signature(plan: LogicalPlan, recurring: bool, salt: str,
               memo: Optional[Dict[int, str]] = None) -> str:
    """Recursive signature with optional per-call memoization.

    ``memo`` maps ``id(node)`` to its digest; it is only valid while the
    plan objects it indexes stay alive, so callers either pass a dict
    scoped to one traversal (:func:`enumerate_subexpressions`) or let each
    top-level call allocate its own.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(plan))
    if cached is not None:
        return cached
    kind = type(plan)
    if kind is Spool:
        # A spool is transparent: the materialized view *is* its child.
        digest = _signature(plan.child, recurring, salt, memo)
    else:
        children = [_signature(child, recurring, salt, memo)
                    for child in plan.children()]
        digest = _node_digest(plan, kind, recurring, salt, children)
    memo[id(plan)] = digest
    return digest


def _node_digest(plan: LogicalPlan, kind: type, recurring: bool, salt: str,
                 children: List[str]) -> str:
    if kind is Scan:
        source = plan.dataset if recurring else (plan.stream_guid or plan.dataset)
        return stable_hash(salt, "scan", plan.dataset, source)
    if kind is ViewScan:
        # A ViewScan stands for the exact subexpression it replaced, so it
        # inherits that subexpression's signature.  Plans that reuse a view
        # therefore keep the same signatures as plans that recompute it,
        # and larger overlaps remain discoverable above a reuse site.
        if recurring:
            return plan.recurring or plan.signature
        return plan.signature
    if kind is Filter:
        return stable_hash(salt, "filter",
                           _expr(plan.predicate, recurring), children)
    if kind is Project:
        return stable_hash(salt, "project",
                           [_expr(e, recurring) for e in plan.exprs],
                           list(plan.names), children)
    if kind is Join:
        pairs = sorted(
            (_expr(l, recurring), _expr(r, recurring))
            for l, r in zip(plan.left_keys, plan.right_keys))
        residual = _expr(plan.residual, recurring) if plan.residual else ""
        return stable_hash(salt, "join", plan.how, pairs, residual,
                           list(plan.drop_right), children)
    if kind is GroupBy:
        return stable_hash(salt, "groupby",
                           [_expr(k, recurring) for k in plan.keys],
                           [_expr(a, recurring) for a in plan.aggregates],
                           list(plan.names), children)
    if kind is Union:
        # UNION inputs are an unordered bag.
        marker = "unionall" if plan.all else "union"
        return stable_hash(salt, marker, combine_unordered(children))
    if kind is Distinct:
        return stable_hash(salt, "distinct", children)
    if kind is Sort:
        keys = [(_expr(k, recurring), asc)
                for k, asc in zip(plan.keys, plan.ascending)]
        return stable_hash(salt, "sort", keys, children)
    if kind is Limit:
        return stable_hash(salt, "limit", plan.count, children)
    if kind is Process:
        return stable_hash(salt, "process", plan.udo_name,
                           plan.deterministic, plan.dependency_depth,
                           list(plan.output_columns), children)
    # Unknown operator: include its label so signatures stay total.
    return stable_hash(salt, "op", plan.op_label, children)


def _expr(expr: Expr, recurring: bool) -> str:
    """Canonical string of an expression, in strict or recurring form."""
    if not recurring:
        return expr.canonical()
    rewritten = rewrite(expr, _mask_param_literal)
    return rewritten.canonical()


def _mask_param_literal(expr: Expr) -> Optional[Expr]:
    if isinstance(expr, Literal) and expr.param_name is not None:
        return Literal(f"«param:{expr.param_name}»")
    return None
