"""Dataset catalog: schemas and versioned stream GUIDs."""

from repro.catalog.catalog import Catalog, DatasetEntry, StreamVersion
from repro.catalog.schema import ColumnDef, TableSchema, schema_of

__all__ = ["Catalog", "DatasetEntry", "StreamVersion", "ColumnDef",
           "TableSchema", "schema_of"]
