"""Dataset catalog: named streams with versioned GUIDs.

Shared datasets in Cosmos are "written once and read many times" and "get
regenerated periodically without requiring any fine-grained updates"
(Section 1).  The catalog models each dataset as a sequence of immutable
*stream versions*, each identified by a GUID:

* a **bulk update** (the periodic regeneration of a cooked dataset)
  installs a new GUID;
* a **GDPR forget request** also installs a new GUID even when most data is
  unchanged -- Section 4 ("Handling GDPR requirements"): "we handled input
  changes by ensuring that the input GUIDs are updated both with recurring
  updates and with GDPR related updates".

Because strict signatures include the scanned stream GUIDs, every GUID
change automatically invalidates all views derived from the old version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import CatalogError
from repro.common.hashing import stable_hash
from repro.common.sync import RANK_CATALOG, TrackedRLock
from repro.catalog.schema import TableSchema

#: Version observer: ``observer(version, previous)`` with ``previous``
#: ``None`` for a dataset's initial registration.  The lifecycle
#: subsystem subscribes to turn GUID changes into invalidation events.
VersionObserver = Callable[["StreamVersion", Optional["StreamVersion"]], None]


@dataclass(frozen=True)
class StreamVersion:
    """One immutable version of a dataset."""

    dataset: str
    guid: str
    created_at: float
    row_count: int
    size_bytes: int
    reason: str = "initial"  # initial | bulk-update | gdpr-forget


@dataclass
class DatasetEntry:
    """Catalog record for one dataset: schema plus version history."""

    schema: TableSchema
    versions: List[StreamVersion] = field(default_factory=list)

    @property
    def current(self) -> StreamVersion:
        if not self.versions:
            raise CatalogError(f"dataset {self.schema.name!r} has no versions")
        return self.versions[-1]


class Catalog:
    """Registry of datasets and their stream versions.

    Thread-safe: bulk updates and GDPR forgets arrive from operator
    tooling and the lifecycle manager while compiling worker threads look
    up schemas and current GUIDs.  The mutex sits at the *bottom* of the
    lock hierarchy (rank ``catalog``) because every other subsystem reads
    the catalog; version observers are therefore dispatched *after* the
    mutex is released -- the lifecycle bus they publish into ranks far
    above this lock.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, DatasetEntry] = {}
        self._guid_counter = 0
        self._observers: List[VersionObserver] = []
        self._mutex = TrackedRLock("catalog", RANK_CATALOG)

    # ------------------------------------------------------------------ #
    # version observers

    def subscribe(self, observer: VersionObserver) -> None:
        """Deliver every future stream-version installation, in order."""
        with self._mutex:
            self._observers.append(observer)

    def unsubscribe(self, observer: VersionObserver) -> None:
        with self._mutex:
            if observer in self._observers:
                self._observers.remove(observer)

    # ------------------------------------------------------------------ #
    # registration and lookup

    def register(self, schema: TableSchema, row_count: int = 0,
                 created_at: float = 0.0) -> StreamVersion:
        """Register a new dataset and create its initial stream version."""
        with self._mutex:
            if schema.name in self._entries:
                raise CatalogError(
                    f"dataset {schema.name!r} already registered")
            self._entries[schema.name] = DatasetEntry(schema)
        return self._new_version(schema.name, row_count, created_at, "initial")

    def has(self, name: str) -> bool:
        with self._mutex:
            return name in self._entries

    def entry(self, name: str) -> DatasetEntry:
        with self._mutex:
            try:
                return self._entries[name]
            except KeyError:
                raise CatalogError(f"unknown dataset {name!r}") from None

    def schema(self, name: str) -> TableSchema:
        return self.entry(name).schema

    def current_version(self, name: str) -> StreamVersion:
        return self.entry(name).current

    def current_guid(self, name: str) -> str:
        return self.current_version(name).guid

    def datasets(self) -> List[str]:
        with self._mutex:
            return sorted(self._entries)

    # ------------------------------------------------------------------ #
    # updates

    def bulk_update(self, name: str, row_count: Optional[int] = None,
                    at: float = 0.0) -> StreamVersion:
        """Regenerate a dataset (periodic cooking run): new GUID."""
        previous = self.current_version(name)
        rows = previous.row_count if row_count is None else row_count
        return self._new_version(name, rows, at, "bulk-update")

    def gdpr_forget(self, name: str, rows_removed: int = 0,
                    at: float = 0.0) -> StreamVersion:
        """Apply a right-to-erasure request: new GUID, slightly fewer rows."""
        previous = self.current_version(name)
        rows = max(0, previous.row_count - rows_removed)
        return self._new_version(name, rows, at, "gdpr-forget")

    def set_row_count(self, name: str, row_count: int) -> None:
        """Adjust the current version's statistics in place (used when a
        data store materializes actual rows for an abstract registration)."""
        with self._mutex:
            entry = self.entry(name)
            current = entry.current
            entry.versions[-1] = StreamVersion(
                current.dataset, current.guid, current.created_at,
                row_count, row_count * entry.schema.row_width, current.reason)

    # ------------------------------------------------------------------ #
    # internals

    def _new_version(self, name: str, row_count: int, at: float,
                     reason: str) -> StreamVersion:
        with self._mutex:
            entry = self.entry(name)
            previous = entry.versions[-1] if entry.versions else None
            self._guid_counter += 1
            guid = stable_hash("stream", name, self._guid_counter, reason)
            version = StreamVersion(
                dataset=name,
                guid=guid,
                created_at=at,
                row_count=row_count,
                size_bytes=row_count * entry.schema.row_width,
                reason=reason,
            )
            entry.versions.append(version)
            observers = list(self._observers)
        # Observers run the invalidation cascade (bus, store, insights),
        # all of which rank above the catalog mutex -- dispatch unlocked.
        for observer in observers:
            observer(version, previous)
        return version
