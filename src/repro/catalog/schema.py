"""Table schemas and column metadata.

Cosmos datasets are *streams* of structured rows; a schema describes the
columns of one dataset.  Byte-size estimates here feed the optimizer's cost
model and the storage accounting used by view selection ("storage cost for
materialization", Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.common.errors import CatalogError

#: Approximate on-disk width of each supported column type, in bytes.
TYPE_WIDTHS: Dict[str, int] = {
    "int": 8,
    "float": 8,
    "bool": 1,
    "str": 24,
    "date": 10,
}


@dataclass(frozen=True)
class ColumnDef:
    """A named, typed column."""

    name: str
    dtype: str = "str"

    def __post_init__(self) -> None:
        if self.dtype not in TYPE_WIDTHS:
            raise CatalogError(f"unsupported column type {self.dtype!r} "
                               f"for column {self.name!r}")

    @property
    def width(self) -> int:
        return TYPE_WIDTHS[self.dtype]


@dataclass(frozen=True)
class TableSchema:
    """Ordered collection of columns for one dataset."""

    name: str
    columns: Tuple[ColumnDef, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in schema {self.name!r}")
        if not self.columns:
            raise CatalogError(f"schema {self.name!r} has no columns")

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def row_width(self) -> int:
        """Estimated bytes per row."""
        return sum(c.width for c in self.columns)

    def column(self, name: str) -> ColumnDef:
        for col in self.columns:
            if col.name == name:
                return col
        raise CatalogError(f"no column {name!r} in schema {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)


def schema_of(name: str, columns: Iterable[Tuple[str, str]]) -> TableSchema:
    """Convenience constructor: ``schema_of("Sales", [("Price", "float")])``."""
    return TableSchema(name, tuple(ColumnDef(n, t) for n, t in columns))
