"""CloudViews reproduction: automatic computation reuse for a SCOPE-like
big-data engine.

Reproduces *Production Experiences from Computation Reuse at Microsoft*
(EDBT 2021).  The primary entry points:

* :class:`repro.api.Session` -- the unified facade: engine + insights
  client + concurrent scheduler, every job returning a
  :class:`repro.api.JobResult`;
* :class:`repro.core.WorkloadSimulation` /
  :class:`repro.scheduler.ConcurrentSimulation` -- the cluster-level and
  wave-parallel co-simulations behind the paper's Table 1, Figures 6-7;
* :mod:`repro.workload` -- the data-cooking workload generator and the
  denormalized subexpression repository;
* :mod:`repro.extensions` -- the Section-5 prototypes (generalized reuse,
  concurrent joins, checkpointing, sampling, bit-vector filters,
  SparkCruise-style integration).

The layered classes (:class:`~repro.engine.engine.ScopeEngine`,
:class:`~repro.core.cloudviews.CloudViews`, ...) remain importable from
their canonical modules; the top-level re-exports of those entry points
are deprecated in favor of :mod:`repro.api`.
"""

import warnings

from repro.api import (
    FaultInjector,
    FaultPlan,
    FaultRuntime,
    InsightsClientConfig,
    JobRequest,
    JobResult,
    SchedulerConfig,
    Session,
)
from repro.catalog import Catalog, TableSchema, schema_of
from repro.core import (
    DeploymentMode,
    MultiLevelControls,
    SimulationConfig,
    SimulationReport,
)
from repro.engine import EngineConfig
from repro.selection import SelectionPolicy, SelectionResult
from repro.workload import CookingWorkload, WorkloadRepository, generate_workload

__version__ = "1.3.0"

#: Old top-level entry points, still importable but deprecated: the
#: attribute access warns and forwards to the canonical module.
_DEPRECATED = {
    "CloudViews": ("repro.core.cloudviews", "CloudViews",
                   "repro.api.Session"),
    "ScopeEngine": ("repro.engine.engine", "ScopeEngine",
                    "repro.api.Session (or repro.engine.ScopeEngine)"),
    "WorkloadSimulation": ("repro.core.runner", "WorkloadSimulation",
                           "repro.core.WorkloadSimulation"),
    "CompiledJob": ("repro.engine.engine", "CompiledJob",
                    "repro.api.JobResult (or repro.engine.CompiledJob)"),
    "JobRun": ("repro.engine.engine", "JobRun",
               "repro.api.JobResult (or repro.engine.JobRun)"),
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        module_name, attr, replacement = _DEPRECATED[name]
        warnings.warn(
            f"importing {name!r} from the top-level 'repro' package is "
            f"deprecated and will be removed in repro 2.0; "
            f"use {replacement}",
            DeprecationWarning, stacklevel=2)
        import importlib
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "Session", "JobResult", "JobRequest", "EngineConfig", "SchedulerConfig",
    "InsightsClientConfig", "FaultInjector", "FaultPlan", "FaultRuntime",
    "Catalog", "TableSchema", "schema_of", "CloudViews", "DeploymentMode",
    "MultiLevelControls", "SimulationConfig", "SimulationReport",
    "WorkloadSimulation", "CompiledJob", "JobRun",
    "ScopeEngine", "SelectionPolicy", "SelectionResult", "CookingWorkload",
    "WorkloadRepository", "generate_workload", "__version__",
]
