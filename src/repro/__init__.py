"""CloudViews reproduction: automatic computation reuse for a SCOPE-like
big-data engine.

Reproduces *Production Experiences from Computation Reuse at Microsoft*
(EDBT 2021).  The primary entry points:

* :class:`repro.core.CloudViews` -- the reuse manager over a
  :class:`repro.engine.ScopeEngine` (interactive use, examples);
* :class:`repro.core.WorkloadSimulation` -- the full cluster-level
  co-simulation behind the paper's Table 1 and Figures 6-7;
* :mod:`repro.workload` -- the data-cooking workload generator and the
  denormalized subexpression repository;
* :mod:`repro.extensions` -- the Section-5 prototypes (generalized reuse,
  concurrent joins, checkpointing, sampling, bit-vector filters,
  SparkCruise-style integration).
"""

from repro.catalog import Catalog, TableSchema, schema_of
from repro.core import (
    CloudViews,
    DeploymentMode,
    MultiLevelControls,
    SimulationConfig,
    SimulationReport,
    WorkloadSimulation,
)
from repro.engine import CompiledJob, EngineConfig, JobRun, ScopeEngine
from repro.selection import SelectionPolicy, SelectionResult
from repro.workload import CookingWorkload, WorkloadRepository, generate_workload

__version__ = "1.0.0"

__all__ = [
    "Catalog", "TableSchema", "schema_of", "CloudViews", "DeploymentMode",
    "MultiLevelControls", "SimulationConfig", "SimulationReport",
    "WorkloadSimulation", "CompiledJob", "EngineConfig", "JobRun",
    "ScopeEngine", "SelectionPolicy", "SelectionResult", "CookingWorkload",
    "WorkloadRepository", "generate_workload", "__version__",
]
