"""Stage-graph construction for the cluster simulator.

A SCOPE job executes as a DAG of *stages*, each running as a set of
parallel containers over partitions of its input.  This module lowers an
optimized logical plan (plus the row counts observed by the executor) into
that stage DAG:

* pipelined unary operators (Filter, Project, Limit, Process) fuse into
  their child's stage;
* blocking operators (Join, GroupBy, Sort, Distinct, Union) start a new
  stage that depends on its input stages;
* a :class:`~repro.plan.logical.Spool` puts its *materializing* consumer
  into a separate writer stage that runs in parallel with the rest of the
  job -- "we materialize CloudViews in an online fashion in a separate
  stage that runs in parallel and hence the impact of latency is typically
  less" (Section 3.2).  The job finishes only when the writer finishes
  (the overhead is real processing time), but downstream operators do not
  wait for it.

Two numbers drive the simulation, and they deliberately come from
different sources:

* ``partitions`` (how many containers the stage asks for) comes from
  *compile-time estimates*, reproducing SCOPE's over-partitioning from
  cardinality over-estimation (Section 3.5).  A ViewScan carries its true
  row count, so stages over reused views request fewer containers.
* ``work`` (how much computation the stage actually performs) comes from
  *observed* executor statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.executor.executor import ExecutionResult, OperatorStats
from repro.optimizer.stats import CardinalityEstimator
from repro.plan.logical import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    LogicalPlan,
    Process,
    Project,
    Scan,
    Sort,
    Spool,
    Union,
    ViewScan,
)

#: Rows a single container comfortably processes in one stage.
DEFAULT_ROWS_PER_PARTITION = 25.0
DEFAULT_MAX_PARTITIONS = 64

#: Work units charged per row by operator family (matches the cost model's
#: spirit: UDOs are expensive, spool writes cost extra I/O).
_WORK_IN = {
    "Filter": 1.0, "Project": 1.0, "Join": 1.5, "GroupBy": 1.2,
    "Union": 0.2, "Distinct": 1.0, "Sort": 1.6, "Limit": 0.1,
    "Process": 3.0, "Spool": 2.0, "Scan": 0.0, "ViewScan": 0.0,
}
_WORK_OUT = {
    "Scan": 1.0, "ViewScan": 1.0, "Join": 0.5, "GroupBy": 0.3,
}


@dataclass
class Stage:
    """One schedulable unit of a job."""

    stage_id: int
    dependencies: List[int] = field(default_factory=list)
    work: float = 0.0
    partitions: int = 1
    est_rows: float = 0.0
    actual_rows: int = 0
    is_spool_writer: bool = False
    spool_signature: Optional[str] = None
    operators: List[str] = field(default_factory=list)


@dataclass
class StageGraph:
    """The complete stage DAG of one job."""

    stages: List[Stage] = field(default_factory=list)

    def new_stage(self) -> Stage:
        stage = Stage(stage_id=len(self.stages))
        self.stages.append(stage)
        return stage

    @property
    def total_work(self) -> float:
        return sum(s.work for s in self.stages)

    @property
    def total_partitions(self) -> int:
        return sum(s.partitions for s in self.stages)

    def critical_path_work(self) -> float:
        """Longest dependency chain by work (latency lower bound)."""
        memo: Dict[int, float] = {}

        def depth(stage_id: int) -> float:
            if stage_id not in memo:
                stage = self.stages[stage_id]
                below = max((depth(d) for d in stage.dependencies), default=0.0)
                memo[stage_id] = stage.work + below
            return memo[stage_id]

        return max((depth(s.stage_id) for s in self.stages), default=0.0)

    def roots(self) -> List[Stage]:
        """Stages with no dependencies (runnable at job start)."""
        return [s for s in self.stages if not s.dependencies]


def build_stage_graph(plan: LogicalPlan,
                      result: ExecutionResult,
                      estimator: CardinalityEstimator,
                      rows_per_partition: float = DEFAULT_ROWS_PER_PARTITION,
                      max_partitions: int = DEFAULT_MAX_PARTITIONS) -> StageGraph:
    """Lower an executed plan into its stage DAG."""
    stats = {id(node): s for node, s in result.node_stats}
    graph = StageGraph()
    builder = _Builder(graph, stats, estimator,
                       rows_per_partition, max_partitions)
    builder.lower(plan)
    return graph


class _Builder:
    def __init__(self, graph: StageGraph, stats: Dict[int, OperatorStats],
                 estimator: CardinalityEstimator,
                 rows_per_partition: float, max_partitions: int):
        self.graph = graph
        self.stats = stats
        self.estimator = estimator
        self.rows_per_partition = rows_per_partition
        self.max_partitions = max_partitions

    def lower(self, plan: LogicalPlan) -> Stage:
        kind = type(plan)

        if kind in (Scan, ViewScan):
            stage = self.graph.new_stage()
            self._charge(stage, plan)
            return stage

        if kind is Spool:
            # Pass-through consumer stays in the child's stage; the
            # materializing consumer becomes a parallel writer stage.
            child_stage = self.lower(plan.child)
            writer = self.graph.new_stage()
            writer.dependencies.append(child_stage.stage_id)
            writer.is_spool_writer = True
            writer.spool_signature = plan.signature
            self._charge(writer, plan)
            return child_stage

        if kind in (Filter, Project, Limit, Process):
            stage = self.lower(plan.child)
            self._charge(stage, plan)
            return stage

        # Blocking operators start a new stage.
        stage = self.graph.new_stage()
        for child in plan.children():
            child_stage = self.lower(child)
            stage.dependencies.append(child_stage.stage_id)
        self._charge(stage, plan)
        return stage

    def _charge(self, stage: Stage, plan: LogicalPlan) -> None:
        stats = self.stats.get(id(plan))
        rows_in = stats.rows_in if stats else 0
        rows_out = stats.rows_out if stats else 0
        label = plan.op_label
        stage.work += (rows_in * _WORK_IN.get(label, 1.0)
                       + rows_out * _WORK_OUT.get(label, 0.0)
                       + 1.0)  # per-operator fixed overhead
        stage.actual_rows = max(stage.actual_rows, rows_out)
        est = self.estimator.estimate(plan)
        stage.est_rows = max(stage.est_rows, est)
        stage.partitions = _clamp_partitions(
            stage.est_rows, self.rows_per_partition, self.max_partitions)
        stage.operators.append(label)


def _clamp_partitions(est_rows: float, rows_per_partition: float,
                      max_partitions: int) -> int:
    wanted = math.ceil(max(est_rows, 1.0) / rows_per_partition)
    return max(1, min(max_partitions, wanted))
