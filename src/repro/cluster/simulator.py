"""Discrete-event cluster simulator.

Models the Cosmos execution environment the paper measures against:

* **virtual clusters** with guaranteed container quotas ("a sub-cluster
  that is dedicated for one particular customer or business unit");
* **job queues**: "users submit their jobs and they are queued until there
  are enough resources available for them to be scheduled" (Section 3.8);
* **opportunistic bonus containers**: "allocate unused resources
  opportunistically to jobs in case they could use them"; work done on
  them is *bonus processing time* (Section 3.4);
* **early sealing**: a spool-writer stage completing notifies the engine
  so the view becomes reusable before the producing job finishes.

The simulator is a co-simulation driver: a job *arrival* invokes a factory
callback (which compiles and row-executes the job against the engine at
that simulated moment), and the resulting stage DAG is then scheduled.
Events at equal timestamps process completions before arrivals, so a view
sealed at time *t* is visible to a job compiled at time *t*.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.stages import Stage, StageGraph
from repro.common.errors import SchedulingError
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER

#: Work units one container completes per simulated second.
DEFAULT_WORK_RATE = 500.0
#: Fixed startup cost per stage launch, in seconds.
DEFAULT_CONTAINER_STARTUP = 2.0


@dataclass
class SimulatedJob:
    """A job handed to the simulator, with its observed I/O numbers."""

    job_id: str
    virtual_cluster: str
    submit_time: float
    graph: StageGraph
    input_rows: int = 0
    input_bytes: int = 0
    data_read_bytes: int = 0
    views_built: int = 0
    views_reused: int = 0
    #: Called with (stage, time) when a spool-writer stage completes.
    on_spool_sealed: Optional[Callable[[Stage, float], None]] = None
    #: Called with (job, telemetry) when every stage has completed.
    on_complete: Optional[Callable[["SimulatedJob", "JobTelemetry"], None]] = None


@dataclass
class JobTelemetry:
    """Per-job numbers matching the paper's production metrics."""

    job_id: str
    virtual_cluster: str
    submit_time: float
    start_time: float = 0.0
    finish_time: float = 0.0
    processing_time: float = 0.0
    bonus_processing_time: float = 0.0
    containers: int = 0
    input_rows: int = 0
    input_bytes: int = 0
    data_read_bytes: int = 0
    queue_length_at_submit: int = 0
    views_built: int = 0
    views_reused: int = 0

    @property
    def latency(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def queue_wait(self) -> float:
        return self.start_time - self.submit_time


JobFactory = Callable[[float], Optional[SimulatedJob]]

# Event kinds, ordered so completions at time t precede arrivals at t.
_STAGE_DONE = 0
_ARRIVAL = 1


class ClusterSimulator:
    """Schedules stage DAGs over a container pool with VC quotas."""

    def __init__(self,
                 total_containers: int = 200,
                 vc_quotas: Optional[Dict[str, int]] = None,
                 work_rate: float = DEFAULT_WORK_RATE,
                 container_startup: float = DEFAULT_CONTAINER_STARTUP,
                 vc_job_slots: int = 8,
                 job_overhead_seconds: float = 0.0,
                 recorder=NULL_RECORDER):
        if total_containers <= 0:
            raise SchedulingError("cluster needs at least one container")
        self.total_containers = total_containers
        self.vc_quotas = dict(vc_quotas or {})
        self.work_rate = work_rate
        self.container_startup = container_startup
        #: Concurrent-job admission limit per virtual cluster: jobs beyond
        #: it "are queued until there are enough resources available for
        #: them to be scheduled" (Section 3.8).
        self.vc_job_slots = vc_job_slots
        #: Fixed per-job prologue (compilation, job-manager spin-up) spent
        #: after admission, before any stage can run.  Affects latency but
        #: holds no containers.
        self.job_overhead_seconds = job_overhead_seconds

        self._events: List[Tuple[float, int, int, object]] = []
        self._seq = itertools.count()
        self._free = total_containers
        self._vc_used: Dict[str, int] = {}
        self._waiting: Dict[str, deque] = {}
        self._admit_queue: Dict[str, deque] = {}
        self._slots_used: Dict[str, int] = {}
        self._telemetry: Dict[str, JobTelemetry] = {}
        self._jobs: Dict[str, _JobState] = {}
        self.completed: List[JobTelemetry] = []
        self.now = 0.0
        self._running = False
        #: Flight recorder; the simulator drives its simulated clock.
        self.recorder = recorder

    # ------------------------------------------------------------------ #
    # submission

    def submit(self, job: SimulatedJob) -> None:
        """Submit a fully built job at its submit_time."""
        self.add_arrival(job.submit_time, lambda now, j=job: j)

    def add_arrival(self, time: float, factory: JobFactory) -> None:
        """Schedule a factory to run at ``time`` (co-simulation hook).

        The factory may return ``None`` to signal that no job materialized
        (e.g. compilation skipped).
        """
        heapq.heappush(self._events,
                       (time, _ARRIVAL, next(self._seq), factory))

    # ------------------------------------------------------------------ #
    # main loop

    def run(self) -> List[JobTelemetry]:
        """Process every event; returns telemetry in completion order.

        The discrete-event loop is strictly single-threaded (determinism
        depends on total event ordering); the guard below catches the
        misuse of driving one simulator from the concurrent scheduler's
        worker pool.  Use :class:`repro.scheduler.ConcurrentSimulation`
        for real-parallelism experiments instead.
        """
        if self._running:
            raise SchedulingError(
                "ClusterSimulator.run() is not reentrant: the event loop "
                "is single-threaded by design")
        self._running = True
        try:
            while self._events:
                time, kind, _, payload = heapq.heappop(self._events)
                self.now = max(self.now, time)
                self.recorder.advance_to(self.now)
                if kind == _ARRIVAL:
                    self._handle_arrival(payload)
                else:
                    self._handle_stage_done(payload)
                self._schedule_waiting()
        finally:
            self._running = False
        return self.completed

    # ------------------------------------------------------------------ #
    # event handlers

    def _handle_arrival(self, factory: JobFactory) -> None:
        job = factory(self.now)
        if job is None:
            return
        vc = job.virtual_cluster
        admit_queue = self._admit_queue.setdefault(vc, deque())
        telemetry = JobTelemetry(
            job_id=job.job_id,
            virtual_cluster=vc,
            submit_time=self.now,
            queue_length_at_submit=len(admit_queue),
            input_rows=job.input_rows,
            input_bytes=job.input_bytes,
            data_read_bytes=job.data_read_bytes,
            views_built=job.views_built,
            views_reused=job.views_reused,
        )
        state = _JobState(job=job, telemetry=telemetry)
        state.span = self.recorder.start_span(
            "cluster.schedule", trace_id=job.job_id, at=self.now,
            virtual_cluster=vc, stages=len(job.graph.stages))
        self.recorder.observe("cluster.queue_length_at_submit",
                              len(admit_queue))
        for stage in job.graph.stages:
            state.remaining_deps[stage.stage_id] = len(stage.dependencies)
        self._jobs[job.job_id] = state
        self._telemetry[job.job_id] = telemetry
        if self._slots_used.get(vc, 0) < self.vc_job_slots:
            self._admit(state)
        else:
            admit_queue.append(job.job_id)

    def _admit(self, state: "_JobState") -> None:
        """Grant the job its VC slot; its root stages become schedulable
        after the fixed job prologue."""
        job = state.job
        vc = job.virtual_cluster
        self._slots_used[vc] = self._slots_used.get(vc, 0) + 1
        state.admitted = True
        if self.job_overhead_seconds > 0:
            heapq.heappush(self._events, (
                self.now + self.job_overhead_seconds, _STAGE_DONE,
                next(self._seq), ("__ready__", job.job_id)))
            return
        self._make_ready(state)

    def _make_ready(self, state: "_JobState") -> None:
        job = state.job
        queue = self._waiting.setdefault(job.virtual_cluster, deque())
        for stage in job.graph.roots():
            queue.append((job.job_id, stage.stage_id))
        if not job.graph.stages:
            self._finish_job(state)

    def _handle_stage_done(self, payload: object) -> None:
        if payload[0] == "__ready__":  # job prologue finished
            state = self._jobs.get(payload[1])
            if state is not None:
                self._make_ready(state)
            return
        job_id, stage_id, guaranteed, bonus = payload  # type: ignore[misc]
        state = self._jobs[job_id]
        job = state.job
        vc = job.virtual_cluster
        self._vc_used[vc] = self._vc_used.get(vc, 0) - guaranteed
        self._free += guaranteed + bonus
        stage = job.graph.stages[stage_id]
        state.completed.add(stage_id)
        if stage.is_spool_writer and job.on_spool_sealed is not None:
            job.on_spool_sealed(stage, self.now)
        # Wake dependents.
        queue = self._waiting.setdefault(vc, deque())
        for dependent in job.graph.stages:
            if stage_id in dependent.dependencies:
                state.remaining_deps[dependent.stage_id] -= 1
                if state.remaining_deps[dependent.stage_id] == 0:
                    queue.append((job_id, dependent.stage_id))
        if len(state.completed) == len(job.graph.stages):
            self._finish_job(state)

    def _finish_job(self, state: "_JobState") -> None:
        telemetry = state.telemetry
        telemetry.finish_time = self.now
        if not state.started:
            telemetry.start_time = self.now
            state.started = True
        self.completed.append(telemetry)
        state.span.annotate("containers", telemetry.containers)
        state.span.annotate("processing_time", telemetry.processing_time)
        state.span.finish(at=self.now)
        self.recorder.inc("cluster.jobs.completed")
        self.recorder.observe("cluster.job.latency", telemetry.latency)
        self.recorder.observe("cluster.job.queue_wait", telemetry.queue_wait)
        self.recorder.event(
            obs_events.JOB_FINISHED, at=self.now, job_id=telemetry.job_id,
            virtual_cluster=telemetry.virtual_cluster,
            submit_time=telemetry.submit_time,
            start_time=telemetry.start_time,
            finish_time=telemetry.finish_time,
            processing_time=telemetry.processing_time,
            bonus_processing_time=telemetry.bonus_processing_time,
            containers=telemetry.containers,
            input_rows=telemetry.input_rows,
            input_bytes=telemetry.input_bytes,
            data_read_bytes=telemetry.data_read_bytes,
            queue_length_at_submit=telemetry.queue_length_at_submit,
            views_built=telemetry.views_built,
            views_reused=telemetry.views_reused,
        )
        del self._jobs[state.job.job_id]
        # Release the VC slot and admit the next queued job, if any.
        vc = state.job.virtual_cluster
        self._slots_used[vc] = max(0, self._slots_used.get(vc, 0) - 1)
        admit_queue = self._admit_queue.setdefault(vc, deque())
        while admit_queue and self._slots_used.get(vc, 0) < self.vc_job_slots:
            next_id = admit_queue.popleft()
            next_state = self._jobs.get(next_id)
            if next_state is not None:
                self._admit(next_state)
        if state.job.on_complete is not None:
            state.job.on_complete(state.job, telemetry)

    # ------------------------------------------------------------------ #
    # scheduling

    def _schedule_waiting(self) -> None:
        """Start every waiting stage that can get at least one container."""
        progress = True
        while progress:
            progress = False
            for vc in list(self._waiting):
                queue = self._waiting[vc]
                if not queue:
                    continue
                job_id, stage_id = queue[0]
                if self._try_start(vc, job_id, stage_id):
                    queue.popleft()
                    progress = True

    def _try_start(self, vc: str, job_id: str, stage_id: int) -> bool:
        state = self._jobs.get(job_id)
        if state is None:
            return True  # job vanished (defensive); drop the entry
        stage = state.job.graph.stages[stage_id]
        want = stage.partitions
        quota = self.vc_quotas.get(vc, self.total_containers)
        quota_free = max(0, quota - self._vc_used.get(vc, 0))
        guaranteed = min(want, quota_free, self._free)
        bonus = min(want - guaranteed, self._free - guaranteed)
        total = guaranteed + bonus
        if total <= 0:
            return False
        self._vc_used[vc] = self._vc_used.get(vc, 0) + guaranteed
        self._free -= total
        duration = self.container_startup + stage.work / (self.work_rate * total)
        telemetry = state.telemetry
        telemetry.processing_time += total * duration
        telemetry.bonus_processing_time += bonus * duration
        telemetry.containers += total
        if not state.started:
            state.started = True
            telemetry.start_time = self.now
        heapq.heappush(self._events, (
            self.now + duration, _STAGE_DONE, next(self._seq),
            (job_id, stage_id, guaranteed, bonus)))
        return True


@dataclass
class _JobState:
    job: SimulatedJob
    telemetry: JobTelemetry
    remaining_deps: Dict[int, int] = field(default_factory=dict)
    completed: set = field(default_factory=set)
    started: bool = False
    admitted: bool = False
    #: The job's ``cluster.schedule`` span (a null span when unrecorded).
    span: object = None
