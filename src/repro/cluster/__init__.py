"""Discrete-event cluster simulation: stages, containers, queues, bonus."""

from repro.cluster.simulator import (
    DEFAULT_CONTAINER_STARTUP,
    DEFAULT_WORK_RATE,
    ClusterSimulator,
    JobTelemetry,
    SimulatedJob,
)
from repro.cluster.stages import (
    DEFAULT_MAX_PARTITIONS,
    DEFAULT_ROWS_PER_PARTITION,
    Stage,
    StageGraph,
    build_stage_graph,
)

__all__ = [
    "DEFAULT_CONTAINER_STARTUP", "DEFAULT_WORK_RATE", "ClusterSimulator",
    "JobTelemetry", "SimulatedJob", "DEFAULT_MAX_PARTITIONS",
    "DEFAULT_ROWS_PER_PARTITION", "Stage", "StageGraph", "build_stage_graph",
]
