"""Simulated stable storage: stream data and materialized views."""

from repro.storage.store import DataStore
from repro.storage.views import DEFAULT_VIEW_TTL, MaterializedView, ViewStore

__all__ = ["DataStore", "DEFAULT_VIEW_TTL", "MaterializedView", "ViewStore"]
