"""Materialized-view store with expiry, sealing, and storage accounting.

CloudViews treats views as "cheap throwaway views that are recreated
whenever the inputs change" (Section 2.4).  This store captures their
production lifecycle:

* **creation** happens as a side effect of query processing (the Spool
  operator writes here);
* **early sealing**: "the job manager makes the view available even before
  the query finishes" (Section 2.3) -- a view starts unsealed and becomes
  visible to matching the moment its producing stage completes;
* **expiry**: "our current eviction policies expire each of the views after
  one week of creation, thus consuming a fixed amount of storage" (§3.1);
* **purging**: users "can see the CloudViews-generated files ... and even
  purge views whenever necessary" (§2.4).

The store is shared by every concurrently compiling and executing job, so
all mutations and multi-view reads hold one reentrant lock.  The
concurrency invariant (at most one materialization per strict signature)
is *not* enforced here -- the insights service's exclusive view lock is
the guard; this lock only keeps the catalog's own bookkeeping consistent.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.clock import SECONDS_PER_WEEK
from repro.common.errors import StorageError
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER

DEFAULT_VIEW_TTL = SECONDS_PER_WEEK


@dataclass
class MaterializedView:
    """Metadata for one materialized common subexpression."""

    signature: str
    path: str
    schema: Tuple[str, ...]
    virtual_cluster: str
    created_at: float
    expires_at: float
    recurring_signature: str = ""
    row_count: int = 0
    size_bytes: int = 0
    sealed: bool = False
    sealed_at: Optional[float] = None
    purged: bool = False
    reuse_count: int = 0
    #: The defining logical subplan (used by the optional containment
    #: matcher of Section 5.3); None for views restored from metadata.
    definition: object = None

    def available(self, now: float) -> bool:
        """Visible to view matching: sealed by ``now``, unexpired, not purged."""
        if not self.sealed or self.purged:
            return False
        if self.sealed_at is not None and now < self.sealed_at:
            return False
        return now < self.expires_at

    def catalog_record(self) -> Dict[str, object]:
        """The view's identity-free canonical record (see
        :meth:`ViewStore.catalog_digest`)."""
        return {
            "signature": self.signature,
            "path": self.path,
            "schema": list(self.schema),
            "virtual_cluster": self.virtual_cluster,
            "created_at": self.created_at,
            "expires_at": self.expires_at,
            "recurring": self.recurring_signature,
            "rows": self.row_count,
            "bytes": self.size_bytes,
            "sealed": self.sealed,
            "sealed_at": self.sealed_at,
            "purged": self.purged,
            "reuse_count": self.reuse_count,
        }


class ViewStore:
    """Catalog of materialized views, keyed by strict signature."""

    def __init__(self, ttl_seconds: float = DEFAULT_VIEW_TTL,
                 recorder=NULL_RECORDER):
        self.ttl_seconds = ttl_seconds
        self._views: Dict[str, MaterializedView] = {}
        self._mutex = threading.RLock()
        self.total_created = 0
        self.total_reused = 0
        self.total_expired = 0
        #: Flight recorder (no-op unless a real one is installed).
        self.recorder = recorder

    # ------------------------------------------------------------------ #
    # lifecycle

    def begin_materialize(self, signature: str, path: str,
                          schema: Tuple[str, ...], virtual_cluster: str,
                          now: float,
                          ttl_seconds: Optional[float] = None,
                          recurring_signature: str = "",
                          definition: object = None) -> MaterializedView:
        """Register a view whose materialization has started (unsealed)."""
        with self._mutex:
            existing = self._views.get(signature)
            if existing is not None and existing.available(now):
                raise StorageError(
                    f"view {signature[:8]} already materialized and available")
            ttl = self.ttl_seconds if ttl_seconds is None else ttl_seconds
            view = MaterializedView(
                signature=signature,
                path=path,
                schema=tuple(schema),
                virtual_cluster=virtual_cluster,
                created_at=now,
                expires_at=now + ttl,
                recurring_signature=recurring_signature,
                definition=definition,
            )
            self._views[signature] = view
        self.recorder.event(obs_events.VIEW_CREATED, at=now,
                            signature=signature[:12], path=path,
                            virtual_cluster=virtual_cluster)
        return view

    def seal(self, signature: str, now: float, row_count: int,
             size_bytes: int, sealed_by: str = "") -> MaterializedView:
        """Early-seal a view: it becomes visible for reuse immediately."""
        with self._mutex:
            view = self._require(signature)
            view.sealed = True
            view.sealed_at = now
            view.row_count = row_count
            view.size_bytes = size_bytes
            self.total_created += 1
        self.recorder.event(obs_events.VIEW_SEALED, at=now,
                            job_id=sealed_by,
                            signature=signature[:12], rows=row_count,
                            bytes=size_bytes)
        self.recorder.set_gauge("views.live_bytes", self.storage_in_use(now))
        return view

    def abandon(self, signature: str) -> None:
        """Forget an unsealed view (producing job failed before sealing)."""
        with self._mutex:
            view = self._views.get(signature)
            if view is None or view.sealed:
                return
            del self._views[signature]
        self.recorder.event(obs_events.VIEW_INVALIDATED,
                            signature=signature[:12], reason="abandoned")

    def purge(self, signature: str) -> None:
        """User-initiated deletion of a view's files."""
        with self._mutex:
            self._require(signature).purged = True
        self.recorder.event(obs_events.VIEW_INVALIDATED,
                            signature=signature[:12], reason="purged")

    # ------------------------------------------------------------------ #
    # lookup

    def lookup(self, signature: str, now: float) -> Optional[MaterializedView]:
        """Return the view if it is available for reuse at ``now``."""
        with self._mutex:
            view = self._views.get(signature)
            if view is not None and view.available(now):
                return view
            return None

    def get(self, signature: str) -> Optional[MaterializedView]:
        """Raw metadata access, regardless of availability.

        Used by the soundness analyzer to distinguish a ViewScan over a
        missing view from one over an expired/unsealed/purged view.
        """
        with self._mutex:
            return self._views.get(signature)

    def record_reuse(self, signature: str, reused_by: str = "") -> None:
        with self._mutex:
            view = self._require(signature)
            view.reuse_count += 1
            self.total_reused += 1
            reuse_count = view.reuse_count
        self.recorder.event(obs_events.VIEW_REUSED, job_id=reused_by,
                            signature=signature[:12],
                            reuse_count=reuse_count)

    def is_materializing(self, signature: str, now: float) -> bool:
        """True while a producing job holds the view-in-progress slot."""
        with self._mutex:
            view = self._views.get(signature)
            return view is not None and not view.sealed and not view.purged

    def evict_expired(self, now: float) -> List[MaterializedView]:
        """Drop expired views; returns what was evicted."""
        with self._mutex:
            expired = [v for v in self._views.values()
                       if v.sealed and now >= v.expires_at]
            for view in expired:
                del self._views[view.signature]
                self.total_expired += 1
        for view in expired:
            self.recorder.event(obs_events.VIEW_EVICTED, at=now,
                                signature=view.signature[:12],
                                reuse_count=view.reuse_count)
        if expired:
            self.recorder.set_gauge("views.live_bytes",
                                    self.storage_in_use(now))
        return expired

    # ------------------------------------------------------------------ #
    # accounting

    def storage_in_use(self, now: float) -> int:
        """Bytes held by currently available views (the paper's "fixed
        amount of storage in the stable state")."""
        with self._mutex:
            return sum(v.size_bytes for v in self._views.values()
                       if v.available(now))

    def views(self) -> List[MaterializedView]:
        with self._mutex:
            return list(self._views.values())

    def catalog_digest(self) -> str:
        """Deterministic fingerprint of the whole catalog.

        Serializes every view's canonical record (sorted by signature;
        producing-job identity is deliberately absent, since which of two
        racing jobs won the build lock is schedule-dependent) and hashes
        it.  Two runs produced the same catalog iff the digests match --
        this is what ``repro simulate --workers N`` compares against a
        serial run.
        """
        with self._mutex:
            records = [self._views[s].catalog_record()
                       for s in sorted(self._views)]
        payload = json.dumps(records, sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def _require(self, signature: str) -> MaterializedView:
        view = self._views.get(signature)
        if view is None:
            raise StorageError(f"unknown view {signature[:8]}")
        return view
