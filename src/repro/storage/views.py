"""Materialized-view store with expiry, sealing, and storage accounting.

CloudViews treats views as "cheap throwaway views that are recreated
whenever the inputs change" (Section 2.4).  This store captures their
production lifecycle:

* **creation** happens as a side effect of query processing (the Spool
  operator writes here);
* **early sealing**: "the job manager makes the view available even before
  the query finishes" (Section 2.3) -- a view starts unsealed and becomes
  visible to matching the moment its producing stage completes;
* **expiry**: "our current eviction policies expire each of the views after
  one week of creation, thus consuming a fixed amount of storage" (§3.1);
* **purging**: users "can see the CloudViews-generated files ... and even
  purge views whenever necessary" (§2.4).

The store is shared by every concurrently compiling and executing job, so
all mutations and multi-view reads hold one reentrant lock.  The
concurrency invariant (at most one materialization per strict signature)
is *not* enforced here -- the insights service's exclusive view lock is
the guard; this lock only keeps the catalog's own bookkeeping consistent.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.clock import SECONDS_PER_WEEK
from repro.common.errors import StorageError
from repro.common.sync import RANK_STORAGE, TrackedRLock
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER

DEFAULT_VIEW_TTL = SECONDS_PER_WEEK

#: Mutation listener: ``listener(op, **payload)``.  Called with the store
#: mutex held so the observed order equals the applied order (the durable
#: catalog journal depends on this); listeners must not block.
StoreListener = Callable[..., None]


@dataclass
class MaterializedView:
    """Metadata for one materialized common subexpression."""

    signature: str
    path: str
    schema: Tuple[str, ...]
    virtual_cluster: str
    created_at: float
    expires_at: float
    recurring_signature: str = ""
    row_count: int = 0
    size_bytes: int = 0
    sealed: bool = False
    sealed_at: Optional[float] = None
    purged: bool = False
    reuse_count: int = 0
    #: In-flight readers (jobs currently scanning the view).  Transient --
    #: never serialized, never part of the catalog digest -- but a pinned
    #: view survives eviction and hard removal until the last reader
    #: unpins it.
    pins: int = 0
    #: The defining logical subplan (used by the optional containment
    #: matcher of Section 5.3); None for views restored from metadata.
    definition: object = None

    def available(self, now: float) -> bool:
        """Visible to view matching: sealed by ``now``, unexpired, not purged."""
        if not self.sealed or self.purged:
            return False
        if self.sealed_at is not None and now < self.sealed_at:
            return False
        return now < self.expires_at

    def catalog_record(self) -> Dict[str, object]:
        """The view's identity-free canonical record (see
        :meth:`ViewStore.catalog_digest`)."""
        return {
            "signature": self.signature,
            "path": self.path,
            "schema": list(self.schema),
            "virtual_cluster": self.virtual_cluster,
            "created_at": self.created_at,
            "expires_at": self.expires_at,
            "recurring": self.recurring_signature,
            "rows": self.row_count,
            "bytes": self.size_bytes,
            "sealed": self.sealed,
            "sealed_at": self.sealed_at,
            "purged": self.purged,
            "reuse_count": self.reuse_count,
        }


class ViewStore:
    """Catalog of materialized views, keyed by strict signature."""

    def __init__(self, ttl_seconds: float = DEFAULT_VIEW_TTL,
                 recorder=NULL_RECORDER):
        self.ttl_seconds = ttl_seconds
        self._views: Dict[str, MaterializedView] = {}
        # Reentrant: listener dispatch holds the mutex and the journal's
        # snapshot path re-enters through :meth:`views`.  Ranked a notch
        # above the blob store so a view mutation may consult it.
        self._mutex = TrackedRLock("storage.views", RANK_STORAGE + 10,
                                   recorder)
        self.total_created = 0
        self.total_reused = 0
        self.total_expired = 0
        self.total_purged = 0
        self.total_gc_evicted = 0
        #: Flight recorder (no-op unless a real one is installed).
        self.recorder = recorder
        #: Mutation listeners (the lifecycle manager's journal/lineage
        #: feed); see :data:`StoreListener`.
        self._listeners: List[StoreListener] = []

    # ------------------------------------------------------------------ #
    # recorder plumbing (FlightRecorder.install sets ``.recorder``)

    @property
    def recorder(self):
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value
        self._mutex.recorder = value

    # ------------------------------------------------------------------ #
    # listeners (the lifecycle subsystem's feed)

    def add_listener(self, listener: StoreListener) -> None:
        """Subscribe to every catalog mutation, in applied order."""
        with self._mutex:
            self._listeners.append(listener)

    def remove_listener(self, listener: StoreListener) -> None:
        with self._mutex:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(self, op: str, **payload) -> None:
        """Dispatch one mutation to the listeners (mutex held by caller)."""
        for listener in self._listeners:
            listener(op, **payload)

    # ------------------------------------------------------------------ #
    # lifecycle

    def begin_materialize(self, signature: str, path: str,
                          schema: Tuple[str, ...], virtual_cluster: str,
                          now: float,
                          ttl_seconds: Optional[float] = None,
                          recurring_signature: str = "",
                          definition: object = None) -> MaterializedView:
        """Register a view whose materialization has started (unsealed)."""
        with self._mutex:
            existing = self._views.get(signature)
            if existing is not None and existing.available(now):
                raise StorageError(
                    f"view {signature[:8]} already materialized and available")
            ttl = self.ttl_seconds if ttl_seconds is None else ttl_seconds
            view = MaterializedView(
                signature=signature,
                path=path,
                schema=tuple(schema),
                virtual_cluster=virtual_cluster,
                created_at=now,
                expires_at=now + ttl,
                recurring_signature=recurring_signature,
                definition=definition,
            )
            self._views[signature] = view
            self._notify("created", view=view, now=now)
        self.recorder.event(obs_events.VIEW_CREATED, at=now,
                            signature=signature[:12], path=path,
                            virtual_cluster=virtual_cluster)
        return view

    def seal(self, signature: str, now: float, row_count: int,
             size_bytes: int, sealed_by: str = "") -> MaterializedView:
        """Early-seal a view: it becomes visible for reuse immediately."""
        with self._mutex:
            view = self._require(signature)
            view.sealed = True
            view.sealed_at = now
            view.row_count = row_count
            view.size_bytes = size_bytes
            self.total_created += 1
            self._notify("sealed", view=view, now=now)
        self.recorder.event(obs_events.VIEW_SEALED, at=now,
                            job_id=sealed_by,
                            signature=signature[:12], rows=row_count,
                            bytes=size_bytes)
        self.recorder.set_gauge("views.live_bytes", self.storage_in_use(now))
        return view

    def abandon(self, signature: str) -> None:
        """Forget an unsealed view (producing job failed before sealing)."""
        with self._mutex:
            view = self._views.get(signature)
            if view is None or view.sealed:
                return
            del self._views[signature]
            self._notify("abandoned", signature=signature)
        self.recorder.event(obs_events.VIEW_INVALIDATED,
                            signature=signature[:12], reason="abandoned")

    def purge(self, signature: str, reason: str = "purged") -> None:
        """Deletion of a view's files (user-initiated or cascade).

        The view stops matching immediately; its catalog entry lingers
        (flagged ``purged``) until the GC janitor hard-removes it, so
        in-flight readers keep a consistent record to unpin.
        """
        with self._mutex:
            view = self._require(signature)
            if not view.purged:
                view.purged = True
                self.total_purged += 1
                self._notify("purged", signature=signature, reason=reason)
        self.recorder.event(obs_events.VIEW_INVALIDATED,
                            signature=signature[:12], reason=reason)

    def remove(self, signature: str, reason: str = "gc") -> bool:
        """Hard-remove a view's catalog entry (GC janitor only).

        Refuses while any reader holds a pin; returns whether the entry
        was removed.
        """
        with self._mutex:
            view = self._views.get(signature)
            if view is None or view.pins > 0:
                return False
            del self._views[signature]
            self.total_gc_evicted += 1
            self._notify("removed", signature=signature, reason=reason)
        self.recorder.event(obs_events.VIEW_EVICTED,
                            signature=signature[:12], reason=reason,
                            reuse_count=view.reuse_count)
        return True

    def restore(self, view: MaterializedView) -> None:
        """Reinstall a view record verbatim (journal replay only).

        Does not notify listeners -- replay must not re-journal itself --
        and does not touch the aggregate counters (the journal restores
        those separately).
        """
        with self._mutex:
            self._views[view.signature] = view

    def discard(self, signature: str) -> None:
        """Silently drop a view record (journal replay only; no
        listeners, no counters)."""
        with self._mutex:
            self._views.pop(signature, None)

    # ------------------------------------------------------------------ #
    # pinning (in-flight readers)

    def pin(self, signature: str) -> bool:
        """Mark one in-flight reader; pinned views are never removed.

        Only a sealed, unpurged view is pinnable: a reader expects the
        sealed blob, and after a GC sweep another producer may have
        re-begun the same signature, leaving an unsealed record whose
        data does not exist yet.  Refusing the pin routes the reader to
        the reuse-free fallback instead of a missing blob.
        """
        with self._mutex:
            view = self._views.get(signature)
            if view is None or not view.sealed or view.purged:
                return False
            view.pins += 1
            return True

    def unpin(self, signature: str) -> None:
        """Release one reader's pin (tolerant of a vanished view)."""
        with self._mutex:
            view = self._views.get(signature)
            if view is not None and view.pins > 0:
                view.pins -= 1

    def pinned_views(self) -> List[str]:
        """Signatures currently held by at least one reader."""
        with self._mutex:
            return [s for s, v in self._views.items() if v.pins > 0]

    # ------------------------------------------------------------------ #
    # lookup

    def lookup(self, signature: str, now: float) -> Optional[MaterializedView]:
        """Return the view if it is available for reuse at ``now``."""
        with self._mutex:
            view = self._views.get(signature)
            if view is not None and view.available(now):
                return view
            return None

    def get(self, signature: str) -> Optional[MaterializedView]:
        """Raw metadata access, regardless of availability.

        Used by the soundness analyzer to distinguish a ViewScan over a
        missing view from one over an expired/unsealed/purged view.
        """
        with self._mutex:
            return self._views.get(signature)

    def record_reuse(self, signature: str, reused_by: str = "") -> None:
        with self._mutex:
            view = self._require(signature)
            view.reuse_count += 1
            self.total_reused += 1
            reuse_count = view.reuse_count
            self._notify("reused", signature=signature)
        self.recorder.event(obs_events.VIEW_REUSED, job_id=reused_by,
                            signature=signature[:12],
                            reuse_count=reuse_count)

    def claim_for_reuse(self, signature: str, now: float,
                        reused_by: str = "") -> Optional[MaterializedView]:
        """Atomic availability re-check + reuse accounting at match time.

        With the GC janitor running concurrently, a view seen by
        ``lookup`` may be purged or hard-removed before the optimizer
        commits the match; this re-checks availability and records the
        reuse under one lock so matching never claims a vanished view.
        Returns ``None`` when the view is no longer available.

        A successful claim also takes a *pin*: the rest of compilation
        (cost finalization, debug-mode soundness lints) sees the claimed
        record sealed and present instead of racing the janitor.  The
        optimizer releases the pin when compilation finishes
        (:meth:`~repro.optimizer.view_matching.MatchOutcome.release_claims`);
        execution re-pins for the duration of the actual scan.
        """
        with self._mutex:
            view = self._views.get(signature)
            if view is None or not view.available(now):
                return None
            view.pins += 1
            view.reuse_count += 1
            self.total_reused += 1
            reuse_count = view.reuse_count
            self._notify("reused", signature=signature)
        self.recorder.event(obs_events.VIEW_REUSED, job_id=reused_by,
                            signature=signature[:12],
                            reuse_count=reuse_count)
        return view

    def is_materializing(self, signature: str, now: float) -> bool:
        """True while a producing job holds the view-in-progress slot."""
        with self._mutex:
            view = self._views.get(signature)
            return view is not None and not view.sealed and not view.purged

    def evict_expired(self, now: float) -> List[MaterializedView]:
        """Drop expired views; returns what was evicted.

        Views pinned by an in-flight reader are skipped (they expire but
        stay resident until the last reader unpins; the GC janitor's next
        sweep collects them).
        """
        with self._mutex:
            expired = [v for v in self._views.values()
                       if v.sealed and now >= v.expires_at and v.pins == 0]
            for view in expired:
                del self._views[view.signature]
                self.total_expired += 1
                self._notify("evicted", signature=view.signature, now=now)
        for view in expired:
            self.recorder.event(obs_events.VIEW_EVICTED, at=now,
                                signature=view.signature[:12],
                                reuse_count=view.reuse_count)
        if expired:
            self.recorder.set_gauge("views.live_bytes",
                                    self.storage_in_use(now))
        return expired

    # ------------------------------------------------------------------ #
    # accounting

    def storage_in_use(self, now: float) -> int:
        """Bytes held by currently available views (the paper's "fixed
        amount of storage in the stable state")."""
        with self._mutex:
            return sum(v.size_bytes for v in self._views.values()
                       if v.available(now))

    def views(self) -> List[MaterializedView]:
        with self._mutex:
            return list(self._views.values())

    def catalog_digest(self) -> str:
        """Deterministic fingerprint of the whole catalog.

        Serializes every view's canonical record (sorted by signature;
        producing-job identity is deliberately absent, since which of two
        racing jobs won the build lock is schedule-dependent) and hashes
        it.  Two runs produced the same catalog iff the digests match --
        this is what ``repro simulate --workers N`` compares against a
        serial run.
        """
        with self._mutex:
            records = [self._views[s].catalog_record()
                       for s in sorted(self._views)]
        payload = json.dumps(records, sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def counters(self) -> Dict[str, int]:
        """Aggregate lifetime counters (journaled alongside the catalog)."""
        with self._mutex:
            return {
                "total_created": self.total_created,
                "total_reused": self.total_reused,
                "total_expired": self.total_expired,
                "total_purged": self.total_purged,
                "total_gc_evicted": self.total_gc_evicted,
            }

    def restore_counters(self, counters: Dict[str, int]) -> None:
        """Reinstall journaled counters (replay only)."""
        with self._mutex:
            for name, value in counters.items():
                if hasattr(self, name):
                    setattr(self, name, int(value))

    def _require(self, signature: str) -> MaterializedView:
        view = self._views.get(signature)
        if view is None:
            raise StorageError(f"unknown view {signature[:8]}")
        return view
