"""Simulated stable storage for stream data.

Rows live in memory, keyed by stream GUID.  The executor reads rows for a
:class:`~repro.plan.logical.Scan` through this store; materialized views
write their rows here too (under their view path), so reuse reads exactly
what the producing job wrote.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import StorageError
from repro.common.sync import RANK_STORAGE, TrackedLock
from repro.plan.expressions import Row


class DataStore:
    """In-memory blob store: GUID/path -> list of rows.

    Concurrently executing jobs write distinct view paths and read shared
    stream GUIDs; a lock keeps the blob map and the byte counters exact
    under that parallelism.
    """

    def __init__(self) -> None:
        self._blobs: Dict[str, List[Row]] = {}
        self._mutex = TrackedLock("storage.data", RANK_STORAGE)
        self.bytes_written = 0
        self.bytes_read = 0

    def put(self, key: str, rows: List[Row], row_bytes: int = 0) -> None:
        """Store ``rows`` under ``key`` (overwrites: streams are immutable
        per GUID, so an overwrite only happens when re-materializing the
        same view path)."""
        rows = list(rows)
        size = row_bytes or _estimate_bytes(rows)
        with self._mutex:
            self._blobs[key] = rows
            self.bytes_written += size

    def get(self, key: str) -> List[Row]:
        with self._mutex:
            try:
                rows = self._blobs[key]
            except KeyError:
                raise StorageError(
                    f"no data stored under key {key!r}") from None
            self.bytes_read += _estimate_bytes(rows)
            return rows

    def has(self, key: str) -> bool:
        with self._mutex:
            return key in self._blobs

    def delete(self, key: str) -> None:
        with self._mutex:
            self._blobs.pop(key, None)

    def size_of(self, key: str) -> int:
        with self._mutex:
            rows = self._blobs.get(key)
            return 0 if rows is None else _estimate_bytes(rows)

    def keys(self) -> List[str]:
        with self._mutex:
            return sorted(self._blobs)


def _estimate_bytes(rows: List[Row]) -> int:
    """Exact byte size of a row list: per-value widths, summed.

    The width rule (strings are their character count, booleans one byte,
    everything else -- numbers, NULLs, dates -- eight bytes) is shared with
    the SQL-side accounting in :mod:`repro.backends.sqlite`, and the sum is
    *row-order invariant*: two backends that produce the same multiset of
    rows report the same byte count, which keeps per-node statistics,
    selection inputs, and the view-catalog digest backend-independent.
    """
    total = 0
    for row in rows:
        for value in row.values():
            if isinstance(value, bool):
                total += 1
            elif isinstance(value, str):
                total += max(1, len(value))
            else:
                total += 8
    return total
