"""Structured event log: the flight recorder's third pillar.

One append-only stream of typed events covering the whole reuse feedback
loop — the view lifecycle (created / sealed / invalidated / evicted /
reused), the insights-service lock table (acquired / denied / released),
kill-switch flips, per-job compile/finish records, and selection epochs.

Consumers subscribe for live delivery (the query-monitoring tool of
Figure 5 is one such subscriber) or read the JSONL export after the fact.
The export is *replayable*: :func:`replay_counters` recomputes per-kind
totals from the serialized stream, which tests compare against the live
:class:`~repro.obs.metrics.MetricsRegistry` counters to prove the log is
a faithful record rather than a parallel guess.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.common.clock import SECONDS_PER_DAY

# ---------------------------------------------------------------------- #
# event kinds (the schema's closed vocabulary)

VIEW_CREATED = "view.created"
VIEW_SEALED = "view.sealed"
VIEW_REUSED = "view.reused"
VIEW_INVALIDATED = "view.invalidated"
VIEW_EVICTED = "view.evicted"
LOCK_ACQUIRED = "lock.acquired"
LOCK_DENIED = "lock.denied"
LOCK_RELEASED = "lock.released"
KILL_SWITCH_FLIPPED = "killswitch.flip"
JOB_COMPILED = "job.compiled"
JOB_FINISHED = "job.finished"
JOB_FAILED = "job.failed"
SELECTION_EPOCH = "selection.epoch"
LINT_FINDING = "lint.finding"
# Concurrent frontend: the fault-tolerant insights client's circuit
# breaker and degradation path, plus scheduler wave boundaries.
BREAKER_OPEN = "breaker.open"
BREAKER_HALF_OPEN = "breaker.half_open"
BREAKER_CLOSED = "breaker.closed"
FETCH_DEGRADED = "insights.degraded"
FETCH_RETRY = "insights.retry"
SCHEDULER_WAVE = "scheduler.wave"
# View lifecycle subsystem: invalidation cascades, the background GC
# janitor's sweeps, runtime epoch bumps, and the durable catalog journal.
LIFECYCLE_CASCADE = "lifecycle.cascade"
GC_SWEEP = "gc.sweep"
EPOCH_BUMPED = "epoch.bumped"
JOURNAL_SNAPSHOT = "journal.snapshot"
JOURNAL_RECOVERED = "journal.recovered"
# Concurrency soundness: the runtime lock sanitizer's findings (hierarchy
# violations, wait-for cycles) and the GC janitor failing to shut down.
SANITIZER_VIOLATION = "sanitizer.violation"
GC_STOP_TIMEOUT = "gc.stop_timeout"
# A claimed view vanished between compile and execute (the GC sweep won
# the race); the job fell back to a reuse-free recompile.
REUSE_FALLBACK = "execute.reuse_fallback"
# Failure hardening (the fault-injection subsystem's degradation trail):
# every retry, quarantine, torn journal record, and aborted sweep leaves
# a flight-recorder event so chaos campaigns can audit the reuse path's
# graceful-degradation guarantees after the fact.
EXECUTE_RETRY = "execute.retry"
VIEW_QUARANTINED = "view.quarantined"
WORKER_RETRIED = "scheduler.worker_retried"
JOURNAL_TORN_TAIL = "journal.torn_tail"
JOURNAL_WRITE_FAILED = "journal.write_failed"
GC_SWEEP_ABORTED = "gc.sweep_aborted"
VIEW_DROP_FAILED = "view.drop_failed"
# Sharded insights deployment (repro.shard): worker-process lifecycle as
# seen by the supervisor, plus router-observed RPC failures.  Per-shard
# latency/queue-depth land in the metrics registry, not here.
SHARD_SPAWNED = "shard.spawned"
SHARD_DIED = "shard.died"
SHARD_RESTARTED = "shard.restarted"
SHARD_RPC_FAILED = "shard.rpc_failed"

ALL_KINDS = (
    VIEW_CREATED, VIEW_SEALED, VIEW_REUSED, VIEW_INVALIDATED, VIEW_EVICTED,
    LOCK_ACQUIRED, LOCK_DENIED, LOCK_RELEASED, KILL_SWITCH_FLIPPED,
    JOB_COMPILED, JOB_FINISHED, JOB_FAILED, SELECTION_EPOCH, LINT_FINDING,
    BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_CLOSED,
    FETCH_DEGRADED, FETCH_RETRY, SCHEDULER_WAVE,
    LIFECYCLE_CASCADE, GC_SWEEP, EPOCH_BUMPED,
    JOURNAL_SNAPSHOT, JOURNAL_RECOVERED,
    SANITIZER_VIOLATION, GC_STOP_TIMEOUT, REUSE_FALLBACK,
    EXECUTE_RETRY, VIEW_QUARANTINED, WORKER_RETRIED,
    JOURNAL_TORN_TAIL, JOURNAL_WRITE_FAILED,
    GC_SWEEP_ABORTED, VIEW_DROP_FAILED,
    SHARD_SPAWNED, SHARD_DIED, SHARD_RESTARTED, SHARD_RPC_FAILED,
)


@dataclass(frozen=True)
class Event:
    """One structured record: what happened, when, to which job."""

    kind: str
    at: float
    job_id: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"kind": self.kind, "at": self.at}
        if self.job_id:
            payload["job_id"] = self.job_id
        if self.attrs:
            payload["attrs"] = self.attrs
        return json.dumps(payload, sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "Event":
        payload = json.loads(line)
        return Event(
            kind=payload["kind"],
            at=float(payload["at"]),
            job_id=payload.get("job_id", ""),
            attrs=payload.get("attrs", {}),
        )


Subscriber = Callable[[Event], None]


class EventLog:
    """Append-only structured log with live subscribers."""

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._subscribers: List[Subscriber] = []

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------ #
    # writes

    def append(self, event: Event) -> Event:
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def emit(self, kind: str, at: float, job_id: str = "",
             **attrs: object) -> Event:
        return self.append(Event(kind=kind, at=at, job_id=job_id,
                                 attrs=attrs))

    def subscribe(self, subscriber: Subscriber) -> None:
        """Live delivery of every future event (monitoring tools)."""
        self._subscribers.append(subscriber)

    # ------------------------------------------------------------------ #
    # reads

    def events(self, kind: Optional[str] = None,
               since: Optional[float] = None,
               job_id: Optional[str] = None) -> List[Event]:
        out = self._events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if since is not None:
            out = [e for e in out if e.at >= since]
        if job_id is not None:
            out = [e for e in out if e.job_id == job_id]
        return list(out)

    def since_day(self, day: int) -> List[Event]:
        """Events at or after simulated midnight of ``day``."""
        return self.events(since=day * SECONDS_PER_DAY)

    def counts(self) -> Dict[str, int]:
        """Per-kind totals of the live stream."""
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    # export / replay

    def to_jsonl(self) -> str:
        return "\n".join(e.to_json() for e in self._events)

    def dump_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(event.to_json() + "\n")
        return len(self._events)

    @staticmethod
    def load_jsonl(path: str) -> List[Event]:
        events: List[Event] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(Event.from_json(line))
        return events


def replay_counters(events: Iterable[Event]) -> Dict[str, float]:
    """Recompute the ``events.<kind>`` counter totals from a serialized
    stream.  A capture is consistent iff this equals the registry's
    ``events.*`` counters from the live run."""
    out: Dict[str, float] = {}
    for event in events:
        name = f"events.{event.kind}"
        out[name] = out.get(name, 0.0) + 1.0
    return out


#: Attribute values longer than this are elided in :func:`render_events`
#: (full values live in the JSONL export; think ``plan_text`` / ``sql``).
_ATTR_DISPLAY_WIDTH = 48


def _display_value(value: object) -> str:
    text = str(value).replace("\n", "\\n")
    if len(text) > _ATTR_DISPLAY_WIDTH:
        text = text[:_ATTR_DISPLAY_WIDTH - 3] + "..."
    return text


def render_events(events: Iterable[Event], limit: Optional[int] = None) -> str:
    """Operator-facing rendering of an event stream."""
    lines = [f"{'time':>12}  {'kind':<20} {'job':<12} attrs"]
    shown = 0
    for event in events:
        if limit is not None and shown >= limit:
            lines.append("  ... (truncated)")
            break
        attrs = " ".join(f"{k}={_display_value(event.attrs[k])}"
                         for k in sorted(event.attrs))
        lines.append(f"{event.at:>12.3f}  {event.kind:<20} "
                     f"{event.job_id:<12} {attrs}")
        shown += 1
    return "\n".join(lines)
