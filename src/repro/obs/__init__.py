"""Flight recorder: unified tracing, metrics, and structured event log.

The observability substrate for the reuse feedback loop (Figure 5's
monitoring and telemetry boxes).  See ``DESIGN.md`` § Observability for
the span taxonomy and capture schemas.
"""

from repro.obs.events import (
    ALL_KINDS,
    Event,
    EventLog,
    JOB_COMPILED,
    JOB_FINISHED,
    KILL_SWITCH_FLIPPED,
    LINT_FINDING,
    LOCK_ACQUIRED,
    LOCK_DENIED,
    LOCK_RELEASED,
    SELECTION_EPOCH,
    VIEW_CREATED,
    VIEW_EVICTED,
    VIEW_INVALIDATED,
    VIEW_REUSED,
    VIEW_SEALED,
    render_events,
    replay_counters,
)
from repro.obs.metrics import Histogram, MetricsRegistry, percentile
from repro.obs.recorder import (
    EVENTS_FILE,
    METRICS_FILE,
    NULL_RECORDER,
    SPANS_FILE,
    FlightRecorder,
    NullRecorder,
    load_capture,
)
from repro.obs.tracing import Span, Tracer, render_flamegraph

__all__ = [
    "ALL_KINDS",
    "Event",
    "EventLog",
    "EVENTS_FILE",
    "FlightRecorder",
    "Histogram",
    "JOB_COMPILED",
    "JOB_FINISHED",
    "KILL_SWITCH_FLIPPED",
    "LINT_FINDING",
    "LOCK_ACQUIRED",
    "LOCK_DENIED",
    "LOCK_RELEASED",
    "METRICS_FILE",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "SELECTION_EPOCH",
    "Span",
    "SPANS_FILE",
    "Tracer",
    "VIEW_CREATED",
    "VIEW_EVICTED",
    "VIEW_INVALIDATED",
    "VIEW_REUSED",
    "VIEW_SEALED",
    "load_capture",
    "percentile",
    "render_events",
    "render_flamegraph",
    "replay_counters",
]
