"""Metrics pillar of the flight recorder.

Counters, gauges, and histograms for the reuse feedback loop, in the
spirit of the paper's operational telemetry: "the modified query plans are
... logged into the telemetry for future analyses" (Figure 5), and the
Section-4 controls assume operators can watch lock contention,
annotation-serving latency, and view hit rates while a rollout is in
flight.

Everything runs off the *simulated* clock (:mod:`repro.common.clock`), so
a metrics dump from a deterministic simulation is itself deterministic and
can be diffed across runs.  Histograms keep their raw observations (the
simulated workloads are laptop-scale), so the p50/p95/p99 summaries are
exact rather than sketched.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple
from repro.common.errors import ConfigError

#: The summary percentiles every histogram reports.
SUMMARY_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


def percentile(values: Iterable[float], pct: float) -> float:
    """Nearest-rank-with-interpolation percentile in [0, 100].

    Shared by the histogram summaries here and the baseline-comparison
    harness in :mod:`repro.telemetry.comparison`.
    """
    ordered = sorted(values)
    if not ordered:
        raise ConfigError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass
class Histogram:
    """Exact distribution of one measurement (e.g. fetch latency)."""

    name: str
    values: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def quantile(self, pct: float) -> float:
        """The pct-th percentile; 0.0 on an empty histogram."""
        if not self.values:
            return 0.0
        return percentile(self.values, pct)

    def summary(self) -> Dict[str, float]:
        out = {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for pct in SUMMARY_PERCENTILES:
            out[f"p{pct:g}"] = self.quantile(pct)
        return out


class MetricsRegistry:
    """Named counters, gauges, and histograms.

    Names are dotted strings (``insights.fetch.latency``); the registry is
    intentionally label-free — the simulation is single-tenant enough that
    per-VC splits belong in the event log, not in metric cardinality.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # writes

    def inc(self, name: str, value: float = 1.0) -> float:
        """Increment (and return) a monotonic counter."""
        self.counters[name] = self.counters.get(name, 0.0) + value
        return self.counters[name]

    def set_gauge(self, name: str, value: float) -> None:
        """Set an instantaneous level (storage in use, free containers)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        histogram.observe(value)

    # ------------------------------------------------------------------ #
    # reads

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, 0.0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        return {name: value for name, value in self.counters.items()
                if name.startswith(prefix)}

    # ------------------------------------------------------------------ #
    # export

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable dump (the ``metrics.json`` capture schema)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: self.histograms[name].summary()
                for name in sorted(self.histograms)
            },
        }

    def dump_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @staticmethod
    def render_dict(dump: Dict[str, object]) -> str:
        """Render a :meth:`to_dict`-shaped dump as the operator report."""
        lines = ["Flight recorder — metrics"]
        counters = dump.get("counters", {})
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name:<44}{counters[name]:>14,.0f}")
        gauges = dump.get("gauges", {})
        if gauges:
            lines.append("gauges:")
            for name in sorted(gauges):
                lines.append(f"  {name:<44}{gauges[name]:>14,.1f}")
        histograms = dump.get("histograms", {})
        if histograms:
            lines.append("histograms (count / mean / p50 / p95 / p99):")
            for name in sorted(histograms):
                s = histograms[name]
                lines.append(
                    f"  {name:<34}{s['count']:>8,.0f}  "
                    f"{s['mean']:>10.4f} {s['p50']:>10.4f} "
                    f"{s['p95']:>10.4f} {s['p99']:>10.4f}")
        return "\n".join(lines)

    def render(self) -> str:
        return self.render_dict(self.to_dict())
