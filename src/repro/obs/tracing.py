"""Tracing pillar: hierarchical spans over the reuse feedback loop.

Every compiled job gets a trace (trace id = job id) whose spans follow a
fixed taxonomy mirroring Figure 5's query-processing path:

    job.compile
      insights.fetch        annotation round trip(s) to the serving layer
      view.match            top-down core search
      view.buildout         bottom-up follow-up optimization (spools)
    cluster.schedule        admission -> last stage completion
      spool.seal            early-seal moment of each produced view

Two non-job trace families ride alongside: ``selection.epoch`` (one trace
per feedback-loop run, trace id ``epoch-N``) and the cluster spans above.

Timestamps are *simulated* seconds, so span durations are the durations
the simulation charged (e.g. the ~15 ms insights round trip of
Section 5.2), and traces replay identically across runs.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Span:
    """One timed operation within a trace."""

    span_id: int
    name: str
    trace_id: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, key: str, value: object) -> "Span":
        self.attrs[key] = value
        return self

    def finish(self, at: float) -> "Span":
        self.end = at
        return self

    def to_json(self) -> str:
        payload = {
            "span_id": self.span_id,
            "name": self.name,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.attrs:
            payload["attrs"] = self.attrs
        return json.dumps(payload, sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "Span":
        payload = json.loads(line)
        return Span(
            span_id=int(payload["span_id"]),
            name=payload["name"],
            trace_id=payload["trace_id"],
            start=float(payload["start"]),
            end=payload.get("end"),
            parent_id=payload.get("parent_id"),
            attrs=payload.get("attrs", {}),
        )


class Tracer:
    """Creates, stores, exports, and renders spans."""

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------ #
    # creation

    def start_span(self, name: str, trace_id: str, at: float,
                   parent: Optional[Span] = None,
                   **attrs: object) -> Span:
        span = Span(
            span_id=next(self._ids),
            name=name,
            trace_id=trace_id,
            start=at,
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
        )
        self._spans.append(span)
        return span

    def record_span(self, name: str, trace_id: str, start: float,
                    end: float, parent: Optional[Span] = None,
                    **attrs: object) -> Span:
        """Record an already-finished operation as one span."""
        return self.start_span(name, trace_id, start,
                               parent=parent, **attrs).finish(end)

    # ------------------------------------------------------------------ #
    # queries

    def spans(self, name: Optional[str] = None) -> List[Span]:
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def trace(self, trace_id: str) -> List[Span]:
        return [s for s in self._spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    # ------------------------------------------------------------------ #
    # export

    def to_jsonl(self) -> str:
        return "\n".join(s.to_json() for s in self._spans)

    def dump_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as handle:
            for span in self._spans:
                handle.write(span.to_json() + "\n")
        return len(self._spans)

    @staticmethod
    def load_jsonl(path: str) -> List[Span]:
        spans: List[Span] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(Span.from_json(line))
        return spans

    def render_flamegraph(self, trace_id: str, width: int = 40) -> str:
        return render_flamegraph(self.trace(trace_id), trace_id, width)


def render_flamegraph(spans: List[Span], trace_id: str,
                      width: int = 40) -> str:
    """Text flamegraph of one trace: nested spans with duration bars.

    Children are indented under their parents and every span gets a bar
    proportional to its share of the trace's wall-clock extent.
    """
    if not spans:
        return f"no spans recorded for trace {trace_id!r}"
    start = min(s.start for s in spans)
    end = max(s.end if s.end is not None else s.start for s in spans)
    extent = max(end - start, 1e-12)
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))

    lines = [f"trace {trace_id} — {len(spans)} spans, "
             f"{extent:.3f}s simulated"]

    def visit(span: Span, depth: int) -> None:
        offset = int((span.start - start) / extent * width)
        length = max(1, int(span.duration / extent * width))
        length = min(length, width - offset) or 1
        bar = " " * offset + "█" * length
        attrs = " ".join(f"{k}={span.attrs[k]}"
                         for k in sorted(span.attrs))
        label = "  " * depth + span.name
        lines.append(f"{label:<28} {span.duration:>9.4f}s "
                     f"|{bar:<{width}}| {attrs}")
        for child in children.get(span.span_id, ()):
            visit(child, depth + 1)

    # Roots: spans whose parent is absent from this trace.
    present = {s.span_id for s in spans}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        if span.parent_id is None or span.parent_id not in present:
            visit(span, 0)
    return "\n".join(lines)
