"""The flight recorder: one facade over metrics, traces, and events.

Components never construct their own telemetry; they hold a ``recorder``
attribute that defaults to the shared :data:`NULL_RECORDER`, whose every
operation is a no-op.  This keeps the zero-instrumentation cost down to an
attribute lookup and a cheap call (measured by
``benchmarks/bench_obs_overhead.py``) and means recorder-disabled runs are
behaviourally identical to uninstrumented code — the recorder only ever
*observes*.

Time: the recorder owns a :class:`~repro.common.clock.SimClock`.  Call
sites that know the simulated moment pass ``at=`` explicitly (and the
driver advances the clock via :meth:`FlightRecorder.advance_to`); call
sites deep in the stack (e.g. the insights lock table) omit ``at`` and the
recorder stamps them with the clock's current simulated time.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.obs.events import Event, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer

#: Capture-directory file names (shared by the dumper and the CLI reader).
METRICS_FILE = "metrics.json"
SPANS_FILE = "spans.jsonl"
EVENTS_FILE = "events.jsonl"


class FlightRecorder:
    """Unified tracing + metrics + structured event log."""

    enabled = True

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.events = EventLog()

    # ------------------------------------------------------------------ #
    # time

    @property
    def now(self) -> float:
        return self.clock.now

    def advance_to(self, timestamp: float) -> None:
        """Pull the recorder clock forward to the simulation's time."""
        self.clock.advance_to(timestamp)

    # ------------------------------------------------------------------ #
    # pillar shortcuts

    def inc(self, name: str, value: float = 1.0) -> None:
        self.metrics.inc(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def start_span(self, name: str, trace_id: str,
                   at: Optional[float] = None,
                   parent: Optional[Span] = None,
                   **attrs: object) -> Span:
        when = self.now if at is None else at
        self.advance_to(when)
        return self.tracer.start_span(name, trace_id, when,
                                      parent=parent, **attrs)

    def event(self, kind: str, at: Optional[float] = None,
              job_id: str = "", **attrs: object) -> Optional[Event]:
        """Append a structured event and bump its ``events.<kind>`` counter.

        The counter mirror is what makes the JSONL export *replayable*:
        recomputing per-kind totals from the file must reproduce these
        counters exactly.
        """
        when = self.now if at is None else at
        self.advance_to(when)
        self.metrics.inc(f"events.{kind}")
        return self.events.emit(kind, when, job_id=job_id, **attrs)

    # ------------------------------------------------------------------ #
    # wiring

    def install(self, engine) -> "FlightRecorder":
        """Attach this recorder to an engine and its owned components."""
        engine.recorder = self
        engine.insights.recorder = self
        engine.view_store.recorder = self
        return self

    # ------------------------------------------------------------------ #
    # capture

    def dump(self, directory: str) -> Dict[str, str]:
        """Write the capture files; returns name -> path."""
        os.makedirs(directory, exist_ok=True)
        paths = {
            "metrics": os.path.join(directory, METRICS_FILE),
            "spans": os.path.join(directory, SPANS_FILE),
            "events": os.path.join(directory, EVENTS_FILE),
        }
        self.metrics.dump_json(paths["metrics"])
        self.tracer.dump_jsonl(paths["spans"])
        self.events.dump_jsonl(paths["events"])
        return paths

    def render_summary(self) -> str:
        """Compact operator summary for CLI output."""
        counts = self.events.counts()
        event_line = ", ".join(f"{kind}={counts[kind]}"
                               for kind in sorted(counts))
        lines = [
            "Flight recorder — "
            f"{len(self.tracer)} spans, {len(self.events)} events",
        ]
        if event_line:
            lines.append(f"  events: {event_line}")
        fetch = self.metrics.histogram("insights.fetch.latency")
        if fetch is not None and fetch.count:
            lines.append(
                "  insights.fetch.latency: "
                f"count={fetch.count} mean={fetch.mean * 1000:.2f}ms "
                f"p50={fetch.quantile(50) * 1000:.2f}ms "
                f"p95={fetch.quantile(95) * 1000:.2f}ms "
                f"p99={fetch.quantile(99) * 1000:.2f}ms")
        return "\n".join(lines)


class _NullSpan:
    """Inert span: absorbs annotate/finish without recording anything."""

    __slots__ = ()
    span_id = 0
    name = ""
    trace_id = ""
    start = 0.0
    end: Optional[float] = 0.0
    parent_id: Optional[int] = None
    attrs: Dict[str, object] = {}
    duration = 0.0

    def annotate(self, key: str, value: object) -> "_NullSpan":
        return self

    def finish(self, at: float) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class NullRecorder:
    """No-op recorder with the full :class:`FlightRecorder` surface.

    Used as the default everywhere so uninstrumented runs pay only the
    cost of these empty calls — and produce results identical to code
    that predates the flight recorder.
    """

    enabled = False

    def __init__(self) -> None:
        self.clock = SimClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.events = EventLog()

    @property
    def now(self) -> float:
        return 0.0

    def advance_to(self, timestamp: float) -> None:
        pass

    def inc(self, name: str, value: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def start_span(self, name: str, trace_id: str,
                   at: Optional[float] = None,
                   parent: Optional[Span] = None,
                   **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def event(self, kind: str, at: Optional[float] = None,
              job_id: str = "", **attrs: object) -> None:
        return None

    def install(self, engine) -> "NullRecorder":
        engine.recorder = self
        engine.insights.recorder = self
        engine.view_store.recorder = self
        return self

    def dump(self, directory: str) -> Dict[str, str]:
        return {}

    def render_summary(self) -> str:
        return "Flight recorder — disabled"


#: Shared inert recorder; components default to this.
NULL_RECORDER = NullRecorder()


def load_capture(directory: str) -> Dict[str, object]:
    """Read a capture directory back: metrics dict, spans, events."""
    out: Dict[str, object] = {}
    metrics_path = os.path.join(directory, METRICS_FILE)
    spans_path = os.path.join(directory, SPANS_FILE)
    events_path = os.path.join(directory, EVENTS_FILE)
    if os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as handle:
            out["metrics"] = json.load(handle)
    if os.path.exists(spans_path):
        out["spans"] = Tracer.load_jsonl(spans_path)
    if os.path.exists(events_path):
        out["events"] = EventLog.load_jsonl(events_path)
    return out
