"""Lowering from SQL AST to logical plans, with name binding.

The builder resolves dataset names against the catalog (binding the current
stream GUID into each :class:`Scan`, which is what makes strict signatures
input-version specific), resolves column references, decomposes join
conditions into equi-key/residual form, and lowers aggregation into
GroupBy + Project.

Joins written without ``ON`` are *natural joins* on the column names common
to both sides, matching the paper's Figure 4 queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.common.errors import BindError, PlanError
from repro.plan.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    Star,
    conjoin,
    conjuncts,
    rewrite,
)
from repro.plan.logical import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    LogicalPlan,
    Process,
    Project,
    Scan,
    Sort,
    Union,
)
from repro.sql.ast import (
    JoinClause,
    Query,
    Relation,
    SelectStmt,
    SubqueryRef,
    TableRef,
)


@dataclass
class _Scope:
    """Name-resolution scope for one FROM clause.

    ``bindings`` maps a table alias to {column name -> key in the plan
    schema}.  Keys equal plain column names unless a collision forced a
    qualified rename (``alias.column``).
    """

    bindings: Dict[str, Dict[str, str]] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)  # schema keys, in order

    def add(self, binding: str, columns: Sequence[str],
            keys: Sequence[str]) -> None:
        if binding in self.bindings:
            raise BindError(f"duplicate table alias {binding!r}")
        self.bindings[binding] = dict(zip(columns, keys))
        self.order.extend(keys)

    def resolve(self, ref: ColumnRef) -> str:
        if ref.table is not None:
            mapping = self.bindings.get(ref.table)
            if mapping is None:
                raise BindError(f"unknown table alias {ref.table!r}")
            key = mapping.get(ref.name)
            if key is None:
                raise BindError(
                    f"no column {ref.name!r} in table {ref.table!r}")
            return key
        hits = [m[ref.name] for m in self.bindings.values() if ref.name in m]
        if not hits:
            raise BindError(f"unknown column {ref.name!r}")
        if len(set(hits)) > 1:
            raise BindError(f"ambiguous column {ref.name!r}; qualify it")
        return hits[0]

    def all_keys(self, table: Optional[str] = None) -> List[str]:
        if table is not None:
            mapping = self.bindings.get(table)
            if mapping is None:
                raise BindError(f"unknown table alias {table!r}")
            return [k for k in self.order if k in mapping.values()]
        return list(self.order)


class PlanBuilder:
    """Builds bound logical plans from parsed queries."""

    def __init__(self, catalog: Catalog,
                 params: Optional[Dict[str, object]] = None,
                 bind_guids: bool = True):
        self.catalog = catalog
        self.params = dict(params or {})
        self.bind_guids = bind_guids

    # ------------------------------------------------------------------ #
    # entry points

    def build(self, query: Query) -> LogicalPlan:
        plans = [self._build_select(stmt) for stmt in query.selects]
        plan = plans[0]
        if len(plans) > 1:
            plan = Union(tuple(plans), all=query.union_all)
            if not query.union_all:
                plan = Distinct(plan)
        if query.order_by:
            schema = plan.schema
            keys = []
            for item in query.order_by:
                if item.column.name not in schema:
                    raise BindError(
                        f"ORDER BY column {item.column.name!r} not in output")
                keys.append(ColumnRef(item.column.name))
            plan = Sort(plan, tuple(keys),
                        tuple(i.ascending for i in query.order_by))
        if query.limit is not None:
            plan = Limit(plan, query.limit)
        return plan

    # ------------------------------------------------------------------ #
    # SELECT lowering

    def _build_select(self, stmt: SelectStmt) -> LogicalPlan:
        plan, scope = self._build_from(stmt)
        if stmt.where is not None:
            predicate = self._bind_expr(stmt.where, scope)
            if predicate.is_aggregate():
                raise PlanError("aggregates are not allowed in WHERE")
            plan = Filter(plan, predicate)
        plan = self._build_projection(stmt, plan, scope)
        if stmt.distinct:
            plan = Distinct(plan)
        if stmt.process is not None:
            plan = Process(
                plan,
                udo_name=stmt.process.udo_name,
                output_columns=plan.schema,
                deterministic=stmt.process.deterministic,
                dependency_depth=stmt.process.dependency_depth,
            )
        return plan

    def _build_from(self, stmt: SelectStmt) -> Tuple[LogicalPlan, _Scope]:
        scope = _Scope()
        plan = self._build_relation(stmt.relation, scope)
        for clause in stmt.joins:
            plan = self._build_join(plan, clause, scope)
        return plan, scope

    def _build_relation(self, relation: Relation, scope: _Scope) -> LogicalPlan:
        if isinstance(relation, TableRef):
            schema = self.catalog.schema(relation.name)
            guid = self.catalog.current_guid(relation.name) if self.bind_guids else None
            plan: LogicalPlan = Scan(relation.name, schema.column_names, guid)
            columns = list(schema.column_names)
        elif isinstance(relation, SubqueryRef):
            plan = self.build(relation.query)
            columns = list(plan.schema)
        else:  # pragma: no cover - exhaustive over Relation
            raise PlanError(f"unknown relation type {type(relation).__name__}")
        binding = relation.binding_name
        # Rename any column that collides with one already in scope, so
        # every key in the merged schema stays unique.
        taken = set(scope.order)
        keys: List[str] = []
        renames: List[Tuple[str, str]] = []
        for col in columns:
            if col in taken:
                key = f"{binding}.{col}"
                renames.append((col, key))
            else:
                key = col
            keys.append(key)
        if renames:
            exprs = tuple(ColumnRef(c) for c in columns)
            plan = Project(plan, exprs, tuple(keys))
        scope.add(binding, columns, keys)
        return plan

    def _build_join(self, left: LogicalPlan, clause: JoinClause,
                    scope: _Scope) -> LogicalPlan:
        left_keys_in_scope = set(scope.order)
        right = self._build_relation(clause.relation, scope)
        right_schema = set(right.schema)

        if clause.condition is None:
            # Natural join: equate columns common to both sides.  The
            # renamed right-side duplicates are exactly the shared names.
            binding = clause.relation.binding_name
            mapping = scope.bindings[binding]
            shared = sorted(
                col for col, key in mapping.items()
                if key != col and col in left_keys_in_scope)
            if not shared:
                return Join(left, right, how=clause.how)  # cross join
            lkeys = tuple(ColumnRef(col) for col in shared)
            rkeys = tuple(ColumnRef(mapping[col]) for col in shared)
            drop = tuple(mapping[col] for col in shared)
            # Dropped keys disappear from the scope's schema but the
            # binding still resolves them to the surviving left copy.
            for col in shared:
                scope.order.remove(mapping[col])
                mapping[col] = col
            return Join(left, right, lkeys, rkeys, None, clause.how, drop)

        predicate = self._bind_expr(clause.condition, scope)
        lkeys: List[Expr] = []
        rkeys: List[Expr] = []
        residual: List[Expr] = []
        for conjunct in conjuncts(predicate):
            pair = self._equi_pair(conjunct, left_keys_in_scope, right_schema)
            if pair is not None:
                lkeys.append(pair[0])
                rkeys.append(pair[1])
            else:
                residual.append(conjunct)
        return Join(left, right, tuple(lkeys), tuple(rkeys),
                    conjoin(residual), clause.how)

    @staticmethod
    def _equi_pair(conjunct: Expr, left_cols: set,
                   right_cols: set) -> Optional[Tuple[Expr, Expr]]:
        """Split ``a = b`` into (left-side, right-side) key expressions."""
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None

        def side(expr: Expr) -> Optional[str]:
            cols = list(expr.columns())
            if not cols:
                return None
            if all(c in left_cols for c in cols):
                return "left"
            if all(c in right_cols for c in cols):
                return "right"
            return None

        lhs_side, rhs_side = side(conjunct.left), side(conjunct.right)
        if lhs_side == "left" and rhs_side == "right":
            return conjunct.left, conjunct.right
        if lhs_side == "right" and rhs_side == "left":
            return conjunct.right, conjunct.left
        return None

    # ------------------------------------------------------------------ #
    # projection / aggregation

    def _build_projection(self, stmt: SelectStmt, plan: LogicalPlan,
                          scope: _Scope) -> LogicalPlan:
        exprs: List[Expr] = []
        names: List[str] = []
        for item in stmt.items:
            if isinstance(item.expr, Star):
                for key in scope.all_keys(item.expr.table):
                    exprs.append(ColumnRef(key))
                    names.append(key)
                continue
            bound = self._bind_expr(item.expr, scope)
            exprs.append(bound)
            # Name from the *unbound* expression so qualified references
            # keep their bare column name (``c.CustomerId`` -> CustomerId).
            names.append(item.alias or item.expr.output_name())
        if len(set(names)) != len(names):
            names = _dedupe(names)

        group_keys = tuple(
            ColumnRef(scope.resolve(ref)) for ref in stmt.group_by)
        has_aggregates = any(e.is_aggregate() for e in exprs)
        having = (self._bind_expr(stmt.having, scope)
                  if stmt.having is not None else None)

        if not group_keys and not has_aggregates:
            if having is not None:
                raise PlanError("HAVING requires GROUP BY or aggregates")
            return Project(plan, tuple(exprs), tuple(names))

        # Collect every distinct aggregate call in the select list + HAVING.
        agg_calls: List[FuncCall] = []
        agg_names: Dict[FuncCall, str] = {}

        def collect(expr: Expr) -> None:
            for node in expr.walk():
                if isinstance(node, FuncCall) and node.is_aggregate() \
                        and node not in agg_names:
                    agg_names[node] = f"__agg{len(agg_calls)}"
                    agg_calls.append(node)

        for expr in exprs:
            collect(expr)
        if having is not None:
            collect(having)

        key_names = tuple(k.name for k in group_keys)
        group = GroupBy(plan, group_keys, tuple(agg_calls),
                        key_names + tuple(agg_names[a] for a in agg_calls))

        def replace_aggs(expr: Expr) -> Optional[Expr]:
            if isinstance(expr, FuncCall) and expr in agg_names:
                return ColumnRef(agg_names[expr])
            return None

        result: LogicalPlan = group
        if having is not None:
            result = Filter(result, rewrite(having, replace_aggs))
        final_exprs = tuple(rewrite(e, replace_aggs) for e in exprs)
        for expr in final_exprs:
            for col in expr.columns():
                if col not in group.schema:
                    raise PlanError(
                        f"column {col!r} must appear in GROUP BY or an aggregate")
        return Project(result, final_exprs, tuple(names))

    # ------------------------------------------------------------------ #
    # expression binding

    def _bind_expr(self, expr: Expr, scope: _Scope) -> Expr:
        def bind(node: Expr) -> Optional[Expr]:
            if isinstance(node, ColumnRef):
                return ColumnRef(scope.resolve(node))
            if isinstance(node, Literal) and node.param_name is not None \
                    and node.value is None and node.param_name in self.params:
                return Literal(self.params[node.param_name], node.param_name)
            return None

        return rewrite(expr, bind)


def _dedupe(names: Sequence[str]) -> List[str]:
    """Make output column names unique by suffixing duplicates."""
    seen: Dict[str, int] = {}
    result: List[str] = []
    for name in names:
        count = seen.get(name, 0)
        seen[name] = count + 1
        result.append(name if count == 0 else f"{name}_{count}")
    return result
