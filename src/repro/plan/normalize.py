"""Plan normalization for signature stability.

CloudViews "considers only the same logical query subexpressions (with some
normalization) for reuse" (Section 1).  Normalization makes syntactically
different but trivially equivalent plans hash to the same signature:

* nested filters are merged and their conjuncts canonically ordered;
* join equi-key pairs are canonically ordered;
* identity projections are removed;
* commutative expression operands are ordered (handled inside
  :meth:`Expr.canonical`, which signatures use).

Anything beyond this -- true logical equivalence or containment -- is out of
scope for the production path (Section 5.3) and lives in
:mod:`repro.extensions.generalized`.
"""

from __future__ import annotations

from typing import List

from repro.plan.expressions import ColumnRef, Expr, conjoin, conjuncts
from repro.plan.logical import Filter, Join, LogicalPlan, Project


def normalize(plan: LogicalPlan) -> LogicalPlan:
    """Return the canonical form of ``plan`` (bottom-up, non-destructive)."""
    children = plan.children()
    if children:
        new_children = [normalize(child) for child in children]
        if any(n is not o for n, o in zip(new_children, children)):
            plan = plan.with_children(new_children)

    if isinstance(plan, Filter):
        return _normalize_filter(plan)
    if isinstance(plan, Join):
        return _normalize_join(plan)
    if isinstance(plan, Project):
        return _strip_identity_project(plan)
    return plan


def _normalize_filter(plan: Filter) -> LogicalPlan:
    """Merge filter chains and canonically order conjuncts."""
    predicates: List[Expr] = []
    node: LogicalPlan = plan
    while isinstance(node, Filter):
        predicates.extend(conjuncts(node.predicate))
        node = node.child
    unique = {p.canonical(): p for p in predicates}
    ordered = [unique[key] for key in sorted(unique)]
    merged = conjoin(ordered)
    if merged is None:  # pragma: no cover - Filter always has a predicate
        return node
    return Filter(node, merged)


def _normalize_join(plan: Join) -> Join:
    """Order equi-key pairs canonically (they are an unordered set)."""
    if len(plan.left_keys) <= 1:
        return plan
    pairs = sorted(
        zip(plan.left_keys, plan.right_keys),
        key=lambda pair: (pair[0].canonical(), pair[1].canonical()))
    left_keys = tuple(p[0] for p in pairs)
    right_keys = tuple(p[1] for p in pairs)
    if left_keys == plan.left_keys and right_keys == plan.right_keys:
        return plan
    return Join(plan.left, plan.right, left_keys, right_keys,
                plan.residual, plan.how, plan.drop_right)


def _strip_identity_project(plan: Project) -> LogicalPlan:
    """Remove a projection that passes every child column through unchanged."""
    child_schema = plan.child.schema
    if plan.names != child_schema:
        return plan
    for expr, name in zip(plan.exprs, plan.names):
        if not (isinstance(expr, ColumnRef) and expr.key == name):
            return plan
    return plan.child
