"""Scalar and aggregate expression trees.

Expressions appear in filters, projections, join conditions, and aggregate
lists of logical plans.  They are immutable; rewrites build new nodes.

Two representations matter for CloudViews:

* :meth:`Expr.canonical` -- a deterministic string used for plan
  normalization and signature hashing.  Commutative operators order their
  operands canonically here, so ``a = b`` and ``b = a`` produce the same
  strict signature (Section 2.3: per-operator *syntactic* equivalence with
  "some normalization").
* :meth:`Expr.evaluate` -- direct interpretation over a row ``dict``, used
  by the physical executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError, PlanError

Row = Dict[str, object]

#: Operators for which operand order does not change the result.
COMMUTATIVE_OPS = {"=", "<>", "+", "*", "AND", "OR"}

#: Mapping used to flip a comparison when normalization swaps its operands.
_FLIPPED = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def _scalar_registry() -> Dict[str, Callable[..., object]]:
    """Built-in scalar functions available to queries and UDO-free plans."""

    def _substr(s: object, start: object, length: object = None) -> object:
        if s is None:
            return None
        text = str(s)
        begin = int(start)
        if length is None:
            return text[begin:]
        return text[begin:begin + int(length)]

    return {
        "UPPER": lambda s: None if s is None else str(s).upper(),
        "LOWER": lambda s: None if s is None else str(s).lower(),
        "LEN": lambda s: None if s is None else len(str(s)),
        "ABS": lambda x: None if x is None else abs(x),
        "ROUND": lambda x, n=0: None if x is None else round(x, int(n)),
        "FLOOR": lambda x: None if x is None else float(int(x // 1)),
        "YEAR": lambda d: None if d is None else int(str(d)[:4]),
        "MONTH": lambda d: None if d is None else int(str(d)[5:7]),
        "SUBSTR": _substr,
        "COALESCE": lambda *args: next((a for a in args if a is not None), None),
        "IFNULL": lambda a, b: b if a is None else a,
    }


SCALAR_FUNCTIONS = _scalar_registry()


@dataclass(frozen=True)
class Expr:
    """Base class for all expression nodes."""

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def with_children(self, children: Sequence["Expr"]) -> "Expr":
        """Rebuild this node with replacement children (same arity)."""
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self

    def evaluate(self, row: Row) -> object:
        raise NotImplementedError

    def canonical(self) -> str:
        """Deterministic, normalization-aware string form."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Human-readable SQL-ish rendering (no normalization)."""
        raise NotImplementedError

    def output_name(self) -> str:
        """Default column name when this expression is projected unaliased."""
        return self.to_sql()

    def columns(self) -> Iterator[str]:
        """All column names referenced anywhere in this tree."""
        for child in self.children():
            yield from child.columns()

    def is_aggregate(self) -> bool:
        """True if this tree contains an aggregate function call."""
        return any(child.is_aggregate() for child in self.children())

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_sql()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to a column, optionally table-qualified."""

    name: str
    table: Optional[str] = None

    @property
    def key(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def evaluate(self, row: Row) -> object:
        key = self.key
        if key in row:
            return row[key]
        if self.name in row:
            return row[self.name]
        # Fall back to a suffix match for qualified rows (t.col).
        suffix = "." + self.name
        matches = [k for k in row if k.endswith(suffix)]
        if len(matches) == 1:
            return row[matches[0]]
        raise ExecutionError(f"column {key!r} not found in row {sorted(row)!r}")

    def canonical(self) -> str:
        return f"col:{self.name}"

    def to_sql(self) -> str:
        return self.key

    def output_name(self) -> str:
        return self.name

    def columns(self) -> Iterator[str]:
        yield self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value.

    ``param_name`` marks literals that were bound from a job parameter
    (e.g. the date of a recurring run).  Strict signatures include the
    value; *recurring* signatures replace it with the parameter name, which
    is how the paper's recurring signatures "discard time varying attributes
    like parameter values" (Section 2.3).
    """

    value: object
    param_name: Optional[str] = None

    def evaluate(self, row: Row) -> object:
        return self.value

    def canonical(self) -> str:
        return f"lit:{type(self.value).__name__}:{self.value!r}"

    def recurring_canonical(self) -> str:
        if self.param_name is not None:
            return f"param:{self.param_name}"
        return self.canonical()

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operator: arithmetic, comparison, or boolean connective."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Expr]) -> "BinaryOp":
        left, right = children
        return BinaryOp(self.op, left, right)

    def evaluate(self, row: Row) -> object:
        op = self.op
        if op == "AND":
            return bool(self.left.evaluate(row)) and bool(self.right.evaluate(row))
        if op == "OR":
            return bool(self.left.evaluate(row)) or bool(self.right.evaluate(row))
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if lhs is None or rhs is None:
                return False
            if op == "=":
                return lhs == rhs
            if op == "<>":
                return lhs != rhs
            if op == "<":
                return lhs < rhs
            if op == "<=":
                return lhs <= rhs
            if op == ">":
                return lhs > rhs
            return lhs >= rhs
        if lhs is None or rhs is None:
            return None
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                return None
            return lhs / rhs
        if op == "%":
            if rhs == 0:
                return None
            return lhs % rhs
        raise ExecutionError(f"unknown binary operator {op!r}")

    def canonical(self) -> str:
        left = self.left.canonical()
        right = self.right.canonical()
        op = self.op
        if op in COMMUTATIVE_OPS and right < left:
            left, right = right, left
        elif op in _FLIPPED and right < left:
            # a < b  ==  b > a ; order operands, flip the comparison.
            left, right = right, left
            op = _FLIPPED[op]
        return f"({op} {left} {right})"

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: NOT, or arithmetic negation."""

    op: str
    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: Sequence[Expr]) -> "UnaryOp":
        (operand,) = children
        return UnaryOp(self.op, operand)

    def evaluate(self, row: Row) -> object:
        value = self.operand.evaluate(row)
        if self.op == "NOT":
            return not bool(value)
        if self.op == "-":
            return None if value is None else -value
        if self.op == "ISNULL":
            return value is None
        if self.op == "ISNOTNULL":
            return value is not None
        raise ExecutionError(f"unknown unary operator {self.op!r}")

    def canonical(self) -> str:
        return f"({self.op} {self.operand.canonical()})"

    def to_sql(self) -> str:
        if self.op == "ISNULL":
            return f"({self.operand.to_sql()} IS NULL)"
        if self.op == "ISNOTNULL":
            return f"({self.operand.to_sql()} IS NOT NULL)"
        return f"({self.op} {self.operand.to_sql()})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar or aggregate function call."""

    name: str
    args: Tuple[Expr, ...] = field(default_factory=tuple)
    distinct: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.upper())
        object.__setattr__(self, "args", tuple(self.args))

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def with_children(self, children: Sequence[Expr]) -> "FuncCall":
        return FuncCall(self.name, tuple(children), self.distinct)

    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS or super().is_aggregate()

    def evaluate(self, row: Row) -> object:
        if self.name in AGGREGATE_FUNCTIONS:
            raise ExecutionError(
                f"aggregate {self.name} must be evaluated by a GroupBy operator")
        func = SCALAR_FUNCTIONS.get(self.name)
        if func is None:
            raise ExecutionError(f"unknown scalar function {self.name!r}")
        return func(*(arg.evaluate(row) for arg in self.args))

    def canonical(self) -> str:
        inner = " ".join(a.canonical() for a in self.args)
        distinct = "distinct " if self.distinct else ""
        return f"(fn:{self.name} {distinct}{inner})"

    def to_sql(self) -> str:
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{', '.join(a.to_sql() for a in self.args)})"

    def output_name(self) -> str:
        if len(self.args) == 1 and isinstance(self.args[0], ColumnRef):
            return f"{self.name.lower()}_{self.args[0].name}"
        return self.name.lower()


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` over literal values.

    Values are canonically sorted so ``IN (2, 1)`` and ``IN (1, 2)``
    produce the same signature.
    """

    operand: Expr
    values: Tuple[Literal, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,) + self.values

    def with_children(self, children: Sequence[Expr]) -> "InList":
        operand = children[0]
        values = tuple(children[1:])
        return InList(operand, values, self.negated)

    def evaluate(self, row: Row) -> object:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        found = any(value == literal.value for literal in self.values)
        return (not found) if self.negated else found

    def canonical(self) -> str:
        inner = " ".join(sorted(v.canonical() for v in self.values))
        negation = "not-" if self.negated else ""
        return f"({negation}in {self.operand.canonical()} [{inner}])"

    def to_sql(self) -> str:
        values = ", ".join(v.to_sql() for v in self.values)
        negation = " NOT" if self.negated else ""
        return f"({self.operand.to_sql()}{negation} IN ({values}))"


@dataclass(frozen=True)
class Like(Expr):
    """``expr [NOT] LIKE 'pattern'`` with ``%`` and ``_`` wildcards."""

    operand: Expr
    pattern: str
    negated: bool = False

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: Sequence[Expr]) -> "Like":
        (operand,) = children
        return Like(operand, self.pattern, self.negated)

    def evaluate(self, row: Row) -> object:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        matched = _like_match(str(value), self.pattern)
        return (not matched) if self.negated else matched

    def canonical(self) -> str:
        negation = "not-" if self.negated else ""
        return f"({negation}like {self.operand.canonical()} {self.pattern!r})"

    def to_sql(self) -> str:
        escaped = self.pattern.replace("'", "''")
        negation = " NOT" if self.negated else ""
        return f"({self.operand.to_sql()}{negation} LIKE '{escaped}')"


def _like_match(text: str, pattern: str) -> bool:
    """SQL LIKE semantics: ``%`` any run, ``_`` any single character."""
    import re

    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern)
    return re.fullmatch(regex, text) is not None


@dataclass(frozen=True)
class Star(Expr):
    """``*`` in a select list (expanded by the plan builder)."""

    table: Optional[str] = None

    def evaluate(self, row: Row) -> object:
        raise ExecutionError("* must be expanded before execution")

    def canonical(self) -> str:
        return "star"

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    conditions: Tuple[Expr, ...]
    results: Tuple[Expr, ...]
    default: Optional[Expr] = None

    def __post_init__(self) -> None:
        if len(self.conditions) != len(self.results):
            raise PlanError("CASE requires matching WHEN/THEN lists")
        object.__setattr__(self, "conditions", tuple(self.conditions))
        object.__setattr__(self, "results", tuple(self.results))

    def children(self) -> Tuple[Expr, ...]:
        extra = (self.default,) if self.default is not None else ()
        return self.conditions + self.results + extra

    def with_children(self, children: Sequence[Expr]) -> "CaseWhen":
        n = len(self.conditions)
        conditions = tuple(children[:n])
        results = tuple(children[n:2 * n])
        default = children[2 * n] if len(children) > 2 * n else None
        return CaseWhen(conditions, results, default)

    def evaluate(self, row: Row) -> object:
        for cond, result in zip(self.conditions, self.results):
            if cond.evaluate(row):
                return result.evaluate(row)
        return self.default.evaluate(row) if self.default is not None else None

    def canonical(self) -> str:
        pairs = " ".join(
            f"[{c.canonical()} {r.canonical()}]"
            for c, r in zip(self.conditions, self.results))
        default = self.default.canonical() if self.default else "null"
        return f"(case {pairs} {default})"

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, result in zip(self.conditions, self.results):
            parts.append(f"WHEN {cond.to_sql()} THEN {result.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)

    def output_name(self) -> str:
        return "case"


def conjuncts(predicate: Optional[Expr]) -> List[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, BinaryOp) and predicate.op == "AND":
        return conjuncts(predicate.left) + conjuncts(predicate.right)
    return [predicate]


def conjoin(predicates: Sequence[Expr]) -> Optional[Expr]:
    """Combine predicates with AND; returns ``None`` for an empty list."""
    result: Optional[Expr] = None
    for pred in predicates:
        result = pred if result is None else BinaryOp("AND", result, pred)
    return result


def rewrite(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up rewrite: apply ``fn`` to each node; ``None`` keeps the node."""
    children = expr.children()
    if children:
        new_children = [rewrite(child, fn) for child in children]
        if any(n is not o for n, o in zip(new_children, children)):
            expr = expr.with_children(new_children)
    replaced = fn(expr)
    return expr if replaced is None else replaced
