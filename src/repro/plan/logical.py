"""Logical query plan operators.

A logical plan is an immutable tree of relational operators.  This is the
representation that CloudViews works over: signatures hash these trees,
view matching rewrites them, and view buildout inserts :class:`Spool`
operators into them.

Operators follow the SCOPE engine's vocabulary from the paper's Figure 4:
Scan, Filter, Join, GroupBy(+Aggregate), plus the supporting cast needed for
real workloads (Project, Union, Distinct, Sort, Limit) and the two operators
that CloudViews itself introduces:

* :class:`ViewScan` -- a scan over a previously materialized common
  subexpression ("Replace common compute with scan", Figure 5);
* :class:`Spool` -- "a spool operator with two consumers ... one feeds into
  the rest of the query processing while the other materializes the common
  subexpression to stable storage" (Section 2.3).

:class:`Process` models SCOPE user-defined operators (UDOs), including the
operational-challenge cases from Section 4: non-deterministic user code and
deep library dependency chains, both of which make a subtree ineligible for
reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.plan.expressions import ColumnRef, Expr, FuncCall


@dataclass(frozen=True)
class LogicalPlan:
    """Base class for logical operators."""

    def children(self) -> Tuple["LogicalPlan", ...]:
        return ()

    def with_children(self, children: Sequence["LogicalPlan"]) -> "LogicalPlan":
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self

    @property
    def schema(self) -> Tuple[str, ...]:
        """Output column names, in order."""
        raise NotImplementedError

    @property
    def op_label(self) -> str:
        return type(self).__name__

    def walk(self) -> Iterator["LogicalPlan"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def subexpressions(self) -> Iterator["LogicalPlan"]:
        """All subplans (the unit CloudViews considers for reuse)."""
        return self.walk()

    def describe(self) -> str:
        """One-line operator description used by :meth:`explain`."""
        return self.op_label

    def explain(self, indent: int = 0) -> str:
        """Pretty-print the plan tree (as surfaced to users in the paper's
        query monitoring tool)."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.explain()


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Scan of a named dataset (a Cosmos *stream*).

    ``stream_guid`` is bound at compile time from the catalog; it identifies
    the concrete version of the input.  Strict signatures include it, which
    is how views are automatically invalidated when shared datasets are bulk
    updated (Section 1: "automatically replaces older materialized views
    with newer ones when the shared datasets are bulk updated").
    """

    dataset: str
    columns: Tuple[str, ...]
    stream_guid: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.columns

    def describe(self) -> str:
        guid = f" [{self.stream_guid[:8]}]" if self.stream_guid else ""
        return f"Scan {self.dataset}{guid}"


@dataclass(frozen=True)
class Filter(LogicalPlan):
    """Row filter with a boolean predicate."""

    child: LogicalPlan
    predicate: Expr

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Filter":
        (child,) = children
        return Filter(child, self.predicate)

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.child.schema

    def describe(self) -> str:
        return f"Filter {self.predicate.to_sql()}"


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Projection: compute ``exprs`` and name them ``names``."""

    child: LogicalPlan
    exprs: Tuple[Expr, ...]
    names: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "exprs", tuple(self.exprs))
        object.__setattr__(self, "names", tuple(self.names))
        if len(self.exprs) != len(self.names):
            raise PlanError("Project exprs and names must align")

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Project":
        (child,) = children
        return Project(child, self.exprs, self.names)

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.names

    def describe(self) -> str:
        cols = ", ".join(
            f"{e.to_sql()} AS {n}" if e.output_name() != n else n
            for e, n in zip(self.exprs, self.names))
        return f"Project {cols}"


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Binary join in decomposed form.

    ``left_keys[i] = right_keys[i]`` are the equi-join conditions
    (``left_keys[i]`` references only left-side columns, ``right_keys[i]``
    only right-side columns); ``residual`` is any remaining predicate
    evaluated over the merged row.  ``drop_right`` lists right-side columns
    elided from the output (natural-join keys, which duplicate a left
    column).  Empty keys with no residual is a cross join.
    """

    left: LogicalPlan
    right: LogicalPlan
    left_keys: Tuple[Expr, ...] = ()
    right_keys: Tuple[Expr, ...] = ()
    residual: Optional[Expr] = None
    how: str = "inner"
    drop_right: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.how not in ("inner", "left"):
            raise PlanError(f"unsupported join type {self.how!r}")
        object.__setattr__(self, "left_keys", tuple(self.left_keys))
        object.__setattr__(self, "right_keys", tuple(self.right_keys))
        object.__setattr__(self, "drop_right", tuple(self.drop_right))
        if len(self.left_keys) != len(self.right_keys):
            raise PlanError("join key lists must have equal length")

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Join":
        left, right = children
        return Join(left, right, self.left_keys, self.right_keys,
                    self.residual, self.how, self.drop_right)

    @property
    def schema(self) -> Tuple[str, ...]:
        dropped = set(self.drop_right)
        return self.left.schema + tuple(
            c for c in self.right.schema if c not in dropped)

    def describe(self) -> str:
        conds = [f"{l.to_sql()} = {r.to_sql()}"
                 for l, r in zip(self.left_keys, self.right_keys)]
        if self.residual is not None:
            conds.append(self.residual.to_sql())
        on = f" ON {' AND '.join(conds)}" if conds else ""
        return f"Join[{self.how}]{on}"


@dataclass(frozen=True)
class GroupBy(LogicalPlan):
    """Grouped aggregation.

    ``keys`` are the grouping columns; ``aggregates`` are aggregate function
    calls; ``names`` names the output columns (keys first, then aggregates),
    matching the paper's split of "Group By" and "Aggregate" boxes in
    Figure 4.
    """

    child: LogicalPlan
    keys: Tuple[ColumnRef, ...]
    aggregates: Tuple[FuncCall, ...]
    names: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        object.__setattr__(self, "names", tuple(self.names))
        if len(self.names) != len(self.keys) + len(self.aggregates):
            raise PlanError("GroupBy names must cover keys then aggregates")

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "GroupBy":
        (child,) = children
        return GroupBy(child, self.keys, self.aggregates, self.names)

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.names

    def describe(self) -> str:
        keys = ", ".join(k.to_sql() for k in self.keys)
        aggs = ", ".join(a.to_sql() for a in self.aggregates)
        return f"GroupBy [{keys}] Aggregate [{aggs}]"


@dataclass(frozen=True)
class Union(LogicalPlan):
    """N-ary union (ALL or DISTINCT) of schema-compatible inputs."""

    inputs: Tuple[LogicalPlan, ...]
    all: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(self.inputs) < 2:
            raise PlanError("Union requires at least two inputs")
        arity = len(self.inputs[0].schema)
        for child in self.inputs[1:]:
            if len(child.schema) != arity:
                raise PlanError("Union inputs must have equal arity")

    def children(self) -> Tuple[LogicalPlan, ...]:
        return self.inputs

    def with_children(self, children: Sequence[LogicalPlan]) -> "Union":
        return Union(tuple(children), self.all)

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.inputs[0].schema

    def describe(self) -> str:
        return "UnionAll" if self.all else "Union"


@dataclass(frozen=True)
class Distinct(LogicalPlan):
    """Duplicate elimination over the full row."""

    child: LogicalPlan

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        (child,) = children
        return Distinct(child)

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.child.schema


@dataclass(frozen=True)
class Sort(LogicalPlan):
    """Total order on ``keys``; ``ascending`` aligns with ``keys``."""

    child: LogicalPlan
    keys: Tuple[ColumnRef, ...]
    ascending: Tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))
        asc = tuple(self.ascending) or tuple(True for _ in self.keys)
        if len(asc) != len(self.keys):
            raise PlanError("Sort ascending flags must align with keys")
        object.__setattr__(self, "ascending", asc)

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys, self.ascending)

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.child.schema

    def describe(self) -> str:
        keys = ", ".join(
            f"{k.to_sql()}{'' if asc else ' DESC'}"
            for k, asc in zip(self.keys, self.ascending))
        return f"Sort {keys}"


@dataclass(frozen=True)
class Limit(LogicalPlan):
    """Keep the first ``count`` rows."""

    child: LogicalPlan
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise PlanError("LIMIT must be non-negative")

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.child.schema

    def describe(self) -> str:
        return f"Limit {self.count}"


@dataclass(frozen=True)
class Process(LogicalPlan):
    """A SCOPE user-defined operator (UDO).

    ``deterministic=False`` models UDOs containing ``DateTime.Now``,
    ``Guid.NewGuid()`` etc.; ``dependency_depth`` models the depth of the
    UDO's library dependency chain.  Section 4 ("Signature correctness"):
    "we skip any computation reuse if the dependency chain is too long or if
    a UDO is found to contain non-determinism."
    """

    child: LogicalPlan
    udo_name: str
    output_columns: Tuple[str, ...] = ()
    deterministic: bool = True
    dependency_depth: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "output_columns", tuple(self.output_columns))

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Process":
        (child,) = children
        return Process(child, self.udo_name, self.output_columns,
                       self.deterministic, self.dependency_depth)

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.output_columns or self.child.schema

    def describe(self) -> str:
        flags = []
        if not self.deterministic:
            flags.append("non-deterministic")
        if self.dependency_depth:
            flags.append(f"deps={self.dependency_depth}")
        suffix = f" ({', '.join(flags)})" if flags else ""
        return f"Process USING {self.udo_name}{suffix}"


@dataclass(frozen=True)
class ViewScan(LogicalPlan):
    """Scan over a materialized common subexpression.

    Produced by view matching; carries the view's observed row count so the
    optimizer can "update statistics from materialized view" (Figure 5).
    """

    signature: str
    view_path: str
    columns: Tuple[str, ...]
    rows: Optional[int] = None
    size_bytes: Optional[int] = None
    recurring: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.columns

    def describe(self) -> str:
        return f"ViewScan cloudview:{self.signature[:8]}"


@dataclass(frozen=True)
class Spool(LogicalPlan):
    """Spool with two consumers: pass-through plus materialization.

    Inserted by the follow-up (bottom-up) optimization phase when the
    insights service grants the view-creation lock.  ``view_path`` encodes
    the strict signature in the output path, exactly as Figure 5 describes
    ("Encode the strict signature in output path").
    """

    child: LogicalPlan
    signature: str
    view_path: str
    expiry_seconds: float = 7 * 86400.0

    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Spool":
        (child,) = children
        return Spool(child, self.signature, self.view_path, self.expiry_seconds)

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.child.schema

    def describe(self) -> str:
        return f"Spool -> {self.view_path}"


def plan_size(plan: LogicalPlan) -> int:
    """Number of operators in the plan (a workload-analysis feature)."""
    return sum(1 for _ in plan.walk())


def contains_operator(plan: LogicalPlan, op_type: type) -> bool:
    """True if any node in ``plan`` is an instance of ``op_type``."""
    return any(isinstance(node, op_type) for node in plan.walk())
