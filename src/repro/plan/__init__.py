"""Logical plans: expressions, operators, AST lowering, normalization."""

from repro.plan.builder import PlanBuilder
from repro.plan.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    Row,
    Star,
    UnaryOp,
    conjoin,
    conjuncts,
    rewrite,
)
from repro.plan.logical import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    LogicalPlan,
    Process,
    Project,
    Scan,
    Sort,
    Spool,
    Union,
    ViewScan,
    contains_operator,
    plan_size,
)
from repro.plan.normalize import normalize

__all__ = [
    "PlanBuilder", "BinaryOp", "CaseWhen", "ColumnRef", "Expr", "FuncCall",
    "InList", "Like", "Literal", "Row", "Star", "UnaryOp", "conjoin", "conjuncts", "rewrite",
    "Distinct", "Filter", "GroupBy", "Join", "Limit", "LogicalPlan",
    "Process", "Project", "Scan", "Sort", "Spool", "Union", "ViewScan",
    "contains_operator", "plan_size", "normalize",
]
