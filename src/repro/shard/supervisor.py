"""Spawns, monitors, and restarts the shard worker processes.

The supervisor is the deployment's process manager: it forks N
:func:`~repro.shard.worker.worker_main` children (one per shard), waits
for each to answer a ``ping`` on its ``AF_UNIX`` socket, and restarts
dead shards on demand -- the :class:`~repro.shard.router.ShardRouter`
asks for a restart when an RPC finds a shard unreachable, and chaos
campaigns SIGKILL shards through :meth:`ShardSupervisor.kill` to prove
the deployment heals.

Restart is bounded per shard (``max_restarts_per_shard``) so a
crash-looping worker eventually stays dead and the client's circuit
breaker takes over, degrading affected signatures to no-reuse instead
of hammering a corpse.  Teardown never needs worker cooperation: WAL
appends are flushed per op and annotation files land atomically, so
``terminate()`` (SIGTERM) loses nothing acknowledged.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import socket
import tempfile
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ConfigError, ShardError
from repro.common.sync import RANK_CATALOG, TrackedLock
from repro.faults import points as fault_points
from repro.faults.runtime import NULL_FAULTS
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.shard.protocol import recv_frame, send_frame
from repro.shard.worker import WorkerSpec, worker_main


@dataclass(kw_only=True)
class ShardConfig:
    """Deployment knobs for the sharded insights service.

    ``shards=0`` (the default everywhere) keeps the classic in-process
    service; any positive count turns on the multi-process deployment.
    """

    shards: int = 0
    #: Parent journal directory; each shard journals under
    #: ``<journal_dir>/shard-NN``.  ``Session`` forwards the lifecycle
    #: config's ``journal_dir`` automatically when unset here.
    journal_dir: Optional[str] = None
    #: Directory for sockets and annotation state; a private temp dir
    #: (removed on close) when unset.  Kept short: ``AF_UNIX`` paths cap
    #: at ~107 characters.
    socket_dir: Optional[str] = None
    #: ``fork`` (default: fast, shares the warmed import state),
    #: ``spawn``, or ``forkserver``.
    start_method: str = "fork"
    #: Wall-clock budget for one shard RPC (the transport, not the
    #: simulated serving latency).
    rpc_timeout_seconds: float = 10.0
    #: Wall-clock budget for a spawned worker to answer its first ping.
    spawn_timeout_seconds: float = 20.0
    #: Restart a dead shard when the router trips over it; ``False``
    #: leaves it dead so the client's breaker/degrade ladder engages.
    restart_dead: bool = True
    #: Restarts allowed per shard before it is left dead for good.
    max_restarts_per_shard: int = 5

    def __post_init__(self) -> None:
        if self.shards < 0:
            raise ConfigError(f"shards must be >= 0, got {self.shards}")
        if self.start_method not in ("fork", "spawn", "forkserver"):
            raise ConfigError(
                f"start_method must be fork|spawn|forkserver, "
                f"got {self.start_method!r}")
        if self.rpc_timeout_seconds <= 0:
            raise ConfigError("rpc_timeout_seconds must be > 0")
        if self.spawn_timeout_seconds <= 0:
            raise ConfigError("spawn_timeout_seconds must be > 0")
        if self.max_restarts_per_shard < 0:
            raise ConfigError("max_restarts_per_shard must be >= 0")


class ShardSupervisor:
    """Owns the worker processes of one sharded deployment."""

    def __init__(self, config: ShardConfig, recorder=NULL_RECORDER,
                 faults=None) -> None:
        if config.shards < 1:
            raise ConfigError(
                "ShardSupervisor needs shards >= 1 "
                f"(got {config.shards}); use the in-process service "
                "for shards=0")
        self.config = config
        self.recorder = recorder
        self.faults = faults if faults is not None else NULL_FAULTS
        self._ctx = multiprocessing.get_context(config.start_method)
        self._own_dir = config.socket_dir is None
        self._dir = config.socket_dir or tempfile.mkdtemp(prefix="repro-sh-")
        # Spawn/kill/restart bookkeeping.  Mid-band rank: acquired under
        # the view store's mutex on the journal-append restart path, and
        # itself only takes the fault runtime's leaf guard (via
        # ``faults.fire``) plus real syscalls underneath -- process
        # spawning is this deployment's sanctioned I/O-under-lock site.
        self._mutex = TrackedLock("shard.supervisor", RANK_CATALOG + 50,
                                  recorder)
        self._procs: List[Optional[multiprocessing.process.BaseProcess]] = \
            [None] * config.shards
        self.restarts = [0] * config.shards
        self.spawns = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # layout

    def socket_path(self, shard_id: int) -> str:
        return os.path.join(self._dir, f"s{shard_id}.sock")

    def state_dir(self, shard_id: int) -> str:
        return os.path.join(self._dir, f"state-{shard_id:02d}")

    def shard_journal_dir(self, shard_id: int) -> Optional[str]:
        if self.config.journal_dir is None:
            return None
        return os.path.join(self.config.journal_dir,
                            f"shard-{shard_id:02d}")

    def _spec(self, shard_id: int) -> WorkerSpec:
        return WorkerSpec(
            shard_id=shard_id,
            shards=self.config.shards,
            socket_path=self.socket_path(shard_id),
            state_dir=self.state_dir(shard_id),
            journal_dir=self.shard_journal_dir(shard_id),
        )

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> None:
        """Spawn every shard and wait until each answers a ping."""
        with self._mutex:
            for shard_id in range(self.config.shards):
                self._spawn_locked(shard_id)
        for shard_id in range(self.config.shards):
            self._wait_ready(shard_id)

    def _spawn_locked(self, shard_id: int) -> None:
        self.faults.fire(fault_points.SHARD_SPAWN)
        process = self._ctx.Process(
            target=worker_main, args=(self._spec(shard_id),),
            name=f"repro-shard-{shard_id}", daemon=True)
        process.start()
        self._procs[shard_id] = process
        self.spawns += 1
        self.recorder.event(obs_events.SHARD_SPAWNED, shard=shard_id,
                            pid=process.pid)

    def _wait_ready(self, shard_id: int) -> None:
        """Poll-connect until the worker's listener answers a ping."""
        deadline = time.monotonic() + self.config.spawn_timeout_seconds
        path = self.socket_path(shard_id)
        while True:
            try:
                sock = self.connect(shard_id)
            except (OSError, ShardError):
                sock = None
            if sock is not None:
                try:
                    send_frame(sock, {"id": 0, "method": "ping",
                                      "params": {}})
                    reply = recv_frame(sock)
                    if reply and reply.get("result", {}).get("ok"):
                        return
                except (OSError, ShardError):
                    pass
                finally:
                    sock.close()
            process = self._procs[shard_id]
            if process is not None and not process.is_alive():
                raise ShardError(
                    f"shard {shard_id} died during startup "
                    f"(exitcode {process.exitcode}); socket {path}")
            if time.monotonic() > deadline:
                raise ShardError(
                    f"shard {shard_id} did not become ready within "
                    f"{self.config.spawn_timeout_seconds}s ({path})")
            time.sleep(0.005)

    def connect(self, shard_id: int) -> socket.socket:
        """Dial one shard; the caller owns the returned socket."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.config.rpc_timeout_seconds)
        try:
            sock.connect(self.socket_path(shard_id))
        except OSError:
            sock.close()
            raise
        return sock

    def is_alive(self, shard_id: int) -> bool:
        process = self._procs[shard_id]
        return process is not None and process.is_alive()

    def alive_count(self) -> int:
        return sum(1 for i in range(self.config.shards) if self.is_alive(i))

    def kill(self, shard_id: int) -> None:
        """SIGKILL one shard (chaos campaigns; no cleanup runs)."""
        with self._mutex:
            process = self._procs[shard_id]
            if process is None or not process.is_alive():
                return
            process.kill()
            process.join(timeout=self.config.spawn_timeout_seconds)
            self.recorder.event(obs_events.SHARD_DIED, shard=shard_id,
                                pid=process.pid)

    def restart(self, shard_id: int) -> bool:
        """Respawn a dead shard; ``False`` when policy says leave it dead.

        The restarted worker reloads its annotation partition and keeps
        appending to its existing WAL, so the shard rejoins with the
        state it had acknowledged before dying.
        """
        with self._mutex:
            if self._closed or not self.config.restart_dead:
                return False
            process = self._procs[shard_id]
            if process is not None and process.is_alive():
                return True  # someone else already healed it
            if self.restarts[shard_id] >= self.config.max_restarts_per_shard:
                return False
            if process is not None:
                process.join(timeout=1.0)
            self.restarts[shard_id] += 1
            self._spawn_locked(shard_id)
        self._wait_ready(shard_id)
        self.recorder.event(obs_events.SHARD_RESTARTED, shard=shard_id,
                            attempt=self.restarts[shard_id])
        return True

    def close(self) -> None:
        """Terminate every worker and reclaim the scratch directory."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            procs, self._procs = self._procs, [None] * self.config.shards
        for process in procs:
            if process is None:
                continue
            if process.is_alive():
                process.terminate()
            process.join(timeout=self.config.spawn_timeout_seconds)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=1.0)
        if self._own_dir:
            shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "ShardSupervisor":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
