"""Length-prefixed JSON-RPC framing for the shard socket boundary.

The router and the shard workers speak a deliberately small wire
protocol over ``AF_UNIX`` stream sockets: every message is a 4-byte
big-endian length header followed by that many bytes of UTF-8 JSON.
Requests carry ``{"id", "method", "params"}``; replies carry either
``{"id", "result"}`` or ``{"id", "error": {"type", "message"}}``.
Errors cross the process boundary by *name*: the worker serializes the
exception's class name and the router re-raises the mapped type from
the repo's taxonomy (:mod:`repro.common.errors`), so a
:class:`~repro.common.errors.StorageError` raised inside a shard's WAL
append surfaces as a ``StorageError`` at the caller, exactly like the
in-process journal.

Framing is strict: an oversized header, truncated body, or undecodable
payload raises :class:`~repro.common.errors.ShardError`; a clean EOF at
a frame boundary returns ``None`` (the peer hung up, which the router
treats as a dead shard).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional

from repro.common.errors import (
    ConfigError,
    InsightsError,
    InsightsTimeout,
    ReproError,
    ShardError,
    StorageError,
)

#: 4-byte big-endian unsigned length header.
HEADER = struct.Struct(">I")
#: Upper bound on one frame's body; a header above this is corruption,
#: not a legitimately huge message (annotation partitions and snapshot
#: slices stay far below it).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Exception class names a worker may send back, mapped to the types the
#: router re-raises.  Anything unlisted degrades to :class:`ShardError`
#: (the transport's own fault surface).
ERROR_TYPES = {
    "StorageError": StorageError,
    "InsightsError": InsightsError,
    "InsightsTimeout": InsightsTimeout,
    "ConfigError": ConfigError,
    "ShardError": ShardError,
    "ReproError": ReproError,
}


def send_frame(sock: socket.socket, payload: Dict[str, object]) -> None:
    """Serialize ``payload`` and write one length-prefixed frame."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ShardError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit")
    sock.sendall(HEADER.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ShardError(
            f"frame header announces {length} bytes "
            f"(limit {MAX_FRAME_BYTES}); stream is corrupt")
    body = _recv_exact(sock, length, eof_ok=False)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ShardError(f"undecodable frame body: {error}") from None
    if not isinstance(payload, dict):
        raise ShardError(
            f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


def _recv_exact(sock: socket.socket, count: int,
                eof_ok: bool) -> Optional[bytes]:
    """Read exactly ``count`` bytes, absorbing partial reads.

    EOF before the first byte returns ``None`` when ``eof_ok`` (a peer
    closing between frames is normal shutdown); EOF mid-message is
    always a :class:`ShardError` (the peer died holding half a frame).
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ShardError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


def error_payload(error: BaseException) -> Dict[str, object]:
    """The wire form of an exception raised inside a worker."""
    return {"type": type(error).__name__, "message": str(error)}


def raise_remote(error: Dict[str, object]) -> None:
    """Re-raise a worker-side exception from its wire form."""
    kind = ERROR_TYPES.get(str(error.get("type", "")), ShardError)
    raise kind(str(error.get("message", "remote shard error")))
