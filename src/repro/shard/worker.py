"""One shard worker process: an insights partition behind a socket.

Each worker owns ``1/N`` of the annotation space (partitioned by tag --
the tag is itself a hash of the recurring signature, so this *is* the
paper's signature-hash partitioning), the view-lock entries whose strict
signatures hash to it, and, when journaling is on, its own
:class:`~repro.lifecycle.journal.CatalogJournal` WAL under
``<journal_dir>/shard-NN``.  Internally the partition is served by a
plain :class:`~repro.insights.service.InsightsService` instance -- the
same code path as the unsharded deployment, which is what makes the
per-tag serving-cache accounting (and therefore the simulated latency
charged back to clients) byte-identical across shard counts.

The worker is deliberately dumb about global state: generation counting,
the kill switch, and client-facing usage metrics all live in the
:class:`~repro.shard.router.ShardRouter`; the worker only reports the
per-request cache hit/miss deltas and simulated latency its partition
produced.  Requests are dispatched under one worker-level mutex, so a
shard processes its queue serially -- the real concurrency unit is the
shard *process*, which is exactly what the throughput benchmark
measures via each worker's accumulated ``busy_seconds``.

Durability contract: every WAL append is flushed before the RPC reply,
and the annotation partition is rewritten atomically (temp + rename) on
every publish/retract, so a SIGKILL at any instant loses no
acknowledged state; the supervisor's restart simply reloads both.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ShardError
from repro.common.sync import RANK_SCHEDULER, TrackedLock
from repro.insights.service import InsightsService
from repro.lifecycle.journal import (
    CatalogJournal,
    record_to_view,
)
from repro.lifecycle.lineage import LineageRegistry
from repro.optimizer.context import Annotation
from repro.shard.protocol import error_payload, recv_frame, send_frame
from repro.storage.views import ViewStore

#: File the worker's annotation partition persists to (atomically), so a
#: restarted shard serves the same slice it served before dying.
ANNOTATIONS_FILE = "annotations.json"


@dataclass
class WorkerSpec:
    """Everything a shard worker needs; must stay picklable (``spawn``)."""

    shard_id: int
    shards: int
    socket_path: str
    #: Scratch directory for the annotation partition file.
    state_dir: str
    #: Per-shard journal directory (``<journal_dir>/shard-NN``); ``None``
    #: disables the WAL for this deployment.
    journal_dir: Optional[str] = None


def annotation_to_wire(annotation: Annotation) -> Dict[str, object]:
    return dataclasses.asdict(annotation)


def annotation_from_wire(payload: Dict[str, object]) -> Annotation:
    return Annotation(**payload)


class ShardWorker:
    """The in-process guts of one shard (also used directly by tests)."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.service = InsightsService()
        self.journal: Optional[CatalogJournal] = None
        if spec.journal_dir is not None:
            self.journal = CatalogJournal(spec.journal_dir)
        # Serial dispatch: one request at a time per shard.  Ranked above
        # the insights band because the handler body acquires the
        # service mutex and (leaf-ranked) journal guard underneath.
        self._dispatch = TrackedLock("shard.worker", RANK_SCHEDULER + 50)
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self.requests_served = 0
        self.fetch_requests = 0
        #: Simulated seconds this shard spent serving fetches -- the
        #: benchmark's per-shard makespan input.
        self.busy_seconds = 0.0
        #: The partition as last published, in wire form and publish
        #: order -- what restart persistence round-trips.
        self._published: List[Dict[str, object]] = []
        self._load_annotations()

    # ------------------------------------------------------------------ #
    # annotation-partition persistence

    @property
    def _annotations_path(self) -> str:
        return os.path.join(self.spec.state_dir, ANNOTATIONS_FILE)

    def _load_annotations(self) -> None:
        path = self._annotations_path
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        self._published = list(payload.get("annotations", ()))
        self.service.publish(
            annotation_from_wire(a) for a in self._published)

    def _persist_annotations(self) -> None:
        os.makedirs(self.spec.state_dir, exist_ok=True)
        tmp = self._annotations_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"annotations": self._published}, handle,
                      sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._annotations_path)

    # ------------------------------------------------------------------ #
    # request dispatch

    def handle(self, method: str, params: Dict[str, object]
               ) -> Dict[str, object]:
        with self._dispatch:
            self.requests_served += 1
            handler = getattr(self, f"_op_{method}", None)
            if handler is None:
                raise ShardError(f"unknown shard RPC method {method!r}")
            return handler(params)

    # -- serving ------------------------------------------------------- #

    def _op_ping(self, params: Dict[str, object]) -> Dict[str, object]:
        return {"ok": True, "shard": self.spec.shard_id, "pid": os.getpid()}

    def _op_fetch_tags(self, params: Dict[str, object]) -> Dict[str, object]:
        tags = list(params["tags"])
        before = self.service.metrics.snapshot()
        per_tag: Dict[str, List[Dict[str, object]]] = {}
        charges: Dict[str, float] = {}
        latency = 0.0
        # One tag per serving call so the simulated charge is observable
        # per tag: the router re-accumulates charges in the *caller's*
        # tag order, keeping the summed cost bit-identical to the
        # unsharded service's (a last-ulp drift could flip a client
        # timeout decision right at the boundary).  The serving-cache
        # accounting is unchanged -- ``_charge_tag`` runs once per tag
        # either way.
        for tag in tags:
            fetched = self.service.fetch_tag_annotations([tag])
            charge = self.service.last_fetch_latency
            charges[tag] = charge
            latency += charge
            per_tag[tag] = [annotation_to_wire(a)
                            for a in fetched.get(tag, ())]
        after = self.service.metrics.snapshot()
        self.fetch_requests += 1
        self.busy_seconds += latency
        return {
            "tags": per_tag,
            "charges": charges,
            "latency": latency,
            "cache_hits": after["cache_hits"] - before["cache_hits"],
            "cache_misses": after["cache_misses"] - before["cache_misses"],
        }

    def _op_publish(self, params: Dict[str, object]) -> Dict[str, object]:
        annotations = list(params["annotations"])
        count = self.service.publish(
            annotation_from_wire(a) for a in annotations)
        self._published = annotations
        self._persist_annotations()
        return {"count": count}

    def _op_retract(self, params: Dict[str, object]) -> Dict[str, object]:
        wanted = set(params["recurring"])
        removed = self.service.retract(wanted)
        if removed:
            self._published = [
                a for a in self._published
                if a["recurring_signature"] not in wanted]
            self._persist_annotations()
        return {"removed": removed}

    def _op_bump_generation(self, params: Dict[str, object]
                            ) -> Dict[str, object]:
        # Only the serving-cache clear matters here; the authoritative
        # generation counter lives in the router.
        return {"generation": self.service.bump_generation()}

    def _op_annotation_count(self, params: Dict[str, object]
                             ) -> Dict[str, object]:
        return {"count": self.service.annotation_count()}

    # -- view locks ---------------------------------------------------- #

    def _op_lock_acquire(self, params: Dict[str, object]
                         ) -> Dict[str, object]:
        signature = str(params["signature"])
        acquired = self.service.acquire_view_lock(
            signature, str(params["holder"]))
        return {"acquired": acquired,
                "holder": self.service.lock_holder(signature)}

    def _op_lock_release(self, params: Dict[str, object]
                         ) -> Dict[str, object]:
        self.service.release_view_lock(
            str(params["signature"]), str(params["holder"]))
        return {"ok": True}

    def _op_lock_force_release(self, params: Dict[str, object]
                               ) -> Dict[str, object]:
        signature = str(params["signature"])
        holder = self.service.lock_holder(signature)
        released = self.service.force_release_lock(signature)
        return {"released": released, "holder": holder}

    def _op_lock_holder(self, params: Dict[str, object]
                        ) -> Dict[str, object]:
        return {"holder": self.service.lock_holder(
            str(params["signature"]))}

    def _op_held_locks(self, params: Dict[str, object]
                       ) -> Dict[str, object]:
        return {"locks": self.service.held_locks()}

    def _op_report_available(self, params: Dict[str, object]
                             ) -> Dict[str, object]:
        self.service.report_view_available(
            str(params["signature"]), str(params["holder"]))
        return {"ok": True}

    # -- the per-shard WAL --------------------------------------------- #

    def _require_journal(self) -> CatalogJournal:
        if self.journal is None:
            raise ShardError(
                f"shard {self.spec.shard_id} was started without a "
                f"journal directory")
        return self.journal

    def _op_journal_append(self, params: Dict[str, object]
                           ) -> Dict[str, object]:
        self._require_journal().append_record(
            str(params["op"]), dict(params["payload"]),
            torn=bool(params.get("torn", False)))
        return {"ok": True}

    def _op_journal_snapshot(self, params: Dict[str, object]
                             ) -> Dict[str, object]:
        """Snapshot this shard's slice of the *live* global state.

        The router sends each shard the view records, lineage entries,
        and (shard 0 only) aggregate counters belonging to it; building
        a fresh store from that slice and snapshotting it heals any WAL
        ops lost to injected torn/storage faults, exactly like the
        single-journal manager snapshotting the live store.
        """
        store = ViewStore()
        for record in params.get("views", ()):
            store.restore(record_to_view(record))
        store.restore_counters(dict(params.get("counters", {})))
        lineage = LineageRegistry()
        lineage.restore(dict(params.get("lineage", {})))
        path = self._require_journal().snapshot(
            store, lineage, epoch=int(params.get("epoch", 0)),
            runtime_version=str(params.get("runtime_version", "")))
        return {"path": path}

    def _op_journal_recover(self, params: Dict[str, object]
                            ) -> Dict[str, object]:
        store = ViewStore()
        lineage = LineageRegistry()
        report = self._require_journal().recover(store, lineage)
        return {
            "views": [v.catalog_record() for v in
                      sorted(store.views(), key=lambda v: v.signature)],
            "counters": store.counters(),
            "lineage": lineage.snapshot(),
            "epoch": report.epoch,
            "runtime_version": report.runtime_version,
            "snapshot_views": report.snapshot_views,
            "wal_ops": report.wal_ops,
            "torn_lines": report.torn_lines,
            "skipped": report.skipped,
        }

    def _op_journal_stats(self, params: Dict[str, object]
                          ) -> Dict[str, object]:
        journal = self.journal
        return {"stats": None if journal is None else journal.stats()}

    # -- operational --------------------------------------------------- #

    def _op_stats(self, params: Dict[str, object]) -> Dict[str, object]:
        return {
            "shard": self.spec.shard_id,
            "pid": os.getpid(),
            "requests_served": self.requests_served,
            "fetch_requests": self.fetch_requests,
            "busy_seconds": self.busy_seconds,
            "annotations": self.service.annotation_count(),
            "held_locks": len(self.service.held_locks()),
            "usage": self.service.metrics.snapshot(),
            "journal": (self.journal.stats()
                        if self.journal is not None else None),
        }

    def _op_shutdown(self, params: Dict[str, object]) -> Dict[str, object]:
        self._stop.set()
        return {"ok": True}

    # ------------------------------------------------------------------ #
    # the socket server

    def serve_forever(self) -> None:
        """Bind, accept, and dispatch until asked to shut down."""
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if os.path.exists(self.spec.socket_path):
            os.unlink(self.spec.socket_path)
        listener.bind(self.spec.socket_path)
        listener.listen(64)
        self._listener = listener
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    break  # listener closed by shutdown
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name=f"shard-{self.spec.shard_id}-conn", daemon=True)
                thread.start()
        finally:
            listener.close()
            self._cleanup()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                request = recv_frame(conn)
                if request is None:
                    return
                reply: Dict[str, object] = {"id": request.get("id")}
                method = str(request.get("method", ""))
                try:
                    reply["result"] = self.handle(
                        method, dict(request.get("params", {})))
                except Exception as error:  # noqa: BLE001 - wire boundary
                    reply["error"] = error_payload(error)
                send_frame(conn, reply)
                if method == "shutdown" and "result" in reply:
                    # Unblock the accept loop so the process exits.
                    if self._listener is not None:
                        self._listener.close()
                    return
        except (OSError, ShardError):
            return  # peer vanished; the router handles its own retry
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _cleanup(self) -> None:
        if self.journal is not None:
            self.journal.close()
        try:
            os.unlink(self.spec.socket_path)
        except OSError:
            pass


def worker_main(spec: WorkerSpec) -> None:
    """Child-process entry point (top level so ``spawn`` can pickle it)."""
    ShardWorker(spec).serve_forever()
