"""Sharded multi-process insights deployment.

The paper's production service runs as a scaled-out deployment rather
than one process; this package reproduces that shape.  N worker
processes each host a real :class:`~repro.insights.service.InsightsService`
partition (annotations and view locks routed by recurring-signature
hash) behind ``AF_UNIX`` length-prefixed JSON-RPC sockets; a
:class:`ShardSupervisor` owns their lifecycle and a :class:`ShardRouter`
presents them to the engine and the fault-tolerant client as one
service.  Per-shard lifecycle WALs merge on read
(:class:`ShardedCatalogJournal`), so ``catalog_digest`` -- and every
per-job reuse decision -- holds byte-for-byte across shard counts.

Entirely opt-in: ``Session(config=SessionConfig(shards=8))`` or
``repro simulate --shards 8``; ``shards=0`` keeps the classic
in-process service on every existing path.
"""

from repro.shard.journal import (
    ShardedCatalogJournal,
    merged_offline_recovery,
    shard_for_op,
)
from repro.shard.protocol import (
    MAX_FRAME_BYTES,
    recv_frame,
    send_frame,
)
from repro.shard.router import ShardRouter, tags_by_shard
from repro.shard.supervisor import ShardConfig, ShardSupervisor
from repro.shard.worker import ShardWorker, WorkerSpec, worker_main

__all__ = [
    "MAX_FRAME_BYTES",
    "ShardConfig",
    "ShardRouter",
    "ShardSupervisor",
    "ShardWorker",
    "ShardedCatalogJournal",
    "WorkerSpec",
    "merged_offline_recovery",
    "recv_frame",
    "send_frame",
    "shard_for_op",
    "tags_by_shard",
    "worker_main",
]
