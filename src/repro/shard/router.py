"""The shard router: one insights-service surface over N worker processes.

:class:`ShardRouter` implements the full
:class:`~repro.insights.service.InsightsService` duck surface the engine
and the fault-tolerant :class:`~repro.insights.client.InsightsClient`
rely on -- fetches, publication, generation, the kill switch, usage
metrics, and the view-lock table -- by routing every signature-keyed
operation to the one shard that owns it (``shard_for`` over the tag for
annotations, over the strict signature for locks and journal ops) and
broadcasting the few global operations (publish, retract, cache
invalidation).

Two properties keep reuse decisions *identical* across shard counts,
which the equivalence suite asserts byte-for-byte:

* **Deterministic placement and order.**  Annotations are partitioned by
  tag hash in publish order, every tag's annotation list lives wholly on
  one shard, and each worker's internal service preserves insertion
  order -- so the per-tag lists any fetch observes equal the unsharded
  service's.

* **Serial latency accounting.**  The simulated cost charged to a fetch
  is the *sum* of the contacted shards' per-tag charges -- exactly the
  unsharded service's figure -- so client timeout and cache behavior
  cannot depend on the shard count.  The capacity win of sharding shows
  up where it belongs operationally: each worker accumulates only its
  own partition's busy seconds, and the throughput benchmark's makespan
  (max per-shard busy time) is what scales with N.

Failure posture: a dead shard is indistinguishable from a dead service
for the signatures it owns.  The router retries once through the
supervisor's restart policy; if the shard stays dead the RPC surfaces
:class:`~repro.common.errors.InsightsError`, which the client's
retry/circuit-breaker ladder converts into degraded (reuse-free)
compilation without failing jobs.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import (
    InsightsError,
    InsightsTimeout,
    ShardError,
)
from repro.common.hashing import shard_for
from repro.common.sync import RANK_LEAF, TrackedLock
from repro.faults import points as fault_points
from repro.faults.runtime import NULL_FAULTS
from repro.insights.service import UsageMetrics
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.optimizer.context import Annotation
from repro.shard.protocol import (
    raise_remote,
    recv_frame,
    send_frame,
)
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import annotation_from_wire, annotation_to_wire


class ShardRouter:
    """Drop-in ``InsightsService`` replacement backed by shard processes."""

    def __init__(self, supervisor: ShardSupervisor,
                 recorder=NULL_RECORDER, faults=None) -> None:
        self.supervisor = supervisor
        self.shards = supervisor.config.shards
        self.faults = faults if faults is not None else NULL_FAULTS
        self._enabled = True
        #: Authoritative publication generation (workers keep none).
        self.generation = 0
        self.metrics = UsageMetrics()
        self._fetch_state = threading.local()
        self._recorder = recorder
        # Connection pool: per-shard free lists plus in-flight gauges.
        # Leaf rank (list ops only): the journal adapter calls through
        # here while the view store's mutex is held.
        self._pool_mutex = TrackedLock("shard.router.pool", RANK_LEAF + 20,
                                       recorder)
        self._pool: Dict[int, List[socket.socket]] = {
            i: [] for i in range(self.shards)}
        self._inflight = [0] * self.shards
        # Guards the generation counter and kill switch (never nested
        # inside anything lower-ranked than the pool guard).
        self._state_mutex = TrackedLock("shard.router.state",
                                        RANK_LEAF + 22, recorder)
        self._request_ids = itertools.count(1)
        #: Per-shard RPC totals (successful round trips).
        self.rpcs = [0] * self.shards
        self.rpc_failures = [0] * self.shards

    # ------------------------------------------------------------------ #
    # recorder plumbing (FlightRecorder.install sets ``.recorder``)

    @property
    def recorder(self):
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value
        self._pool_mutex.recorder = value
        self._state_mutex.recorder = value
        self.supervisor.recorder = value

    # ------------------------------------------------------------------ #
    # kill switch and per-thread fetch bookkeeping

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if value != self._enabled:
            self._recorder.event(obs_events.KILL_SWITCH_FLIPPED,
                                 level="insights-service", enabled=value)
        self._enabled = value

    @property
    def last_fetch_latency(self) -> float:
        return getattr(self._fetch_state, "latency", 0.0)

    @last_fetch_latency.setter
    def last_fetch_latency(self, value: float) -> None:
        self._fetch_state.latency = value

    @property
    def last_fetch_degraded(self) -> bool:
        return False

    # ------------------------------------------------------------------ #
    # the RPC plumbing

    def shard_of_tag(self, tag: str) -> int:
        return shard_for(tag, self.shards)

    def shard_of_signature(self, signature: str) -> int:
        return shard_for(signature, self.shards)

    def _checkout(self, shard_id: int) -> socket.socket:
        with self._pool_mutex:
            self._inflight[shard_id] += 1
            pooled = self._pool[shard_id]
            if pooled:
                return pooled.pop()
        return self.supervisor.connect(shard_id)

    def _checkin(self, shard_id: int, sock: Optional[socket.socket],
                 broken: bool = False) -> None:
        with self._pool_mutex:
            self._inflight[shard_id] -= 1
            if sock is not None and not broken:
                self._pool[shard_id].append(sock)
                return
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _drop_pool(self, shard_id: int) -> None:
        """Close pooled connections to a shard that died or restarted."""
        with self._pool_mutex:
            stale, self._pool[shard_id] = self._pool[shard_id], []
        for sock in stale:
            try:
                sock.close()
            except OSError:
                pass

    def call(self, shard_id: int, method: str,
             **params: object) -> Dict[str, object]:
        """One shard RPC with a single reconnect-or-restart retry."""
        request = {"id": next(self._request_ids), "method": method,
                   "params": params}
        last_error: Optional[BaseException] = None
        for attempt in (0, 1):
            started = time.perf_counter()
            sock: Optional[socket.socket] = None
            try:
                sock = self._checkout(shard_id)
            except OSError as error:
                self._checkin(shard_id, None)
                last_error = error
            else:
                try:
                    send_frame(sock, request)
                    reply = recv_frame(sock)
                except (OSError, ShardError) as error:
                    self._checkin(shard_id, sock, broken=True)
                    last_error = error
                else:
                    if reply is None:
                        self._checkin(shard_id, sock, broken=True)
                        last_error = ShardError(
                            f"shard {shard_id} closed the connection")
                    else:
                        self._checkin(shard_id, sock)
                        self.rpcs[shard_id] += 1
                        self._recorder.observe(
                            f"shard.{shard_id:02d}.rpc_wall_seconds",
                            time.perf_counter() - started)
                        self._recorder.observe(
                            f"shard.{shard_id:02d}.queue_depth",
                            self._inflight[shard_id])
                        error = reply.get("error")
                        if error is not None:
                            raise_remote(error)
                        return reply.get("result", {})
            if attempt == 0:
                self._heal(shard_id)
        self.rpc_failures[shard_id] += 1
        self._recorder.inc("shard.rpc_failures")
        self._recorder.event(
            obs_events.SHARD_RPC_FAILED, shard=shard_id, method=method,
            error=str(last_error) or type(last_error).__name__)
        raise InsightsError(
            f"shard {shard_id} unreachable for {method!r}: {last_error}")

    def _heal(self, shard_id: int) -> None:
        """Between attempts: flush stale sockets, restart a dead shard."""
        self._drop_pool(shard_id)
        if self.supervisor.is_alive(shard_id):
            return
        try:
            self.supervisor.restart(shard_id)
        except ShardError:
            # Restart itself failed; the retry will fail and surface as
            # an InsightsError for the client ladder to absorb.
            pass

    def broadcast(self, method: str, **params: object
                  ) -> List[Dict[str, object]]:
        """Run one RPC on every shard, in shard order."""
        return [self.call(shard_id, method, **params)
                for shard_id in range(self.shards)]

    # ------------------------------------------------------------------ #
    # publication

    def publish(self, annotations: Iterable[Annotation]) -> int:
        """Partition by tag hash, in publish order, and install everywhere.

        Every shard gets a ``publish`` (possibly of an empty slice):
        publication replaces the previous generation wholesale, so a
        shard whose slice shrank to nothing must still drop it.
        """
        slices: List[List[Dict[str, object]]] = [
            [] for _ in range(self.shards)]
        total = 0
        for annotation in annotations:
            slices[self.shard_of_tag(annotation.tag)].append(
                annotation_to_wire(annotation))
            total += 1
        for shard_id in range(self.shards):
            self.call(shard_id, "publish", annotations=slices[shard_id])
        with self._state_mutex:
            self.generation += 1
        return total

    def annotation_count(self) -> int:
        return sum(reply["count"]
                   for reply in self.broadcast("annotation_count"))

    def bump_generation(self) -> int:
        """Invalidate every generation-keyed cache, serving caches too."""
        self.broadcast("bump_generation")
        with self._state_mutex:
            self.generation += 1
            return self.generation

    def retract(self, recurring_signatures: Iterable[str]) -> int:
        wanted = sorted(set(recurring_signatures))
        if not wanted:
            return 0
        removed_by_shard = [
            reply["removed"]
            for reply in self.broadcast("retract", recurring=wanted)]
        removed = sum(removed_by_shard)
        if removed:
            # Match the unsharded service exactly: one retraction that
            # removed anything clears the *whole* serving cache and bumps
            # the generation once.  Shards that removed locally already
            # cleared themselves; nudge the rest.
            for shard_id, shard_removed in enumerate(removed_by_shard):
                if not shard_removed:
                    self.call(shard_id, "bump_generation")
            with self._state_mutex:
                self.generation += 1
        return removed

    # ------------------------------------------------------------------ #
    # query-time serving

    def fetch_annotations(self, tags: Iterable[str],
                          now: Optional[float] = None
                          ) -> Dict[str, Annotation]:
        """Job-level fetch, keyed by recurring signature (service parity)."""
        self.metrics.inc("fetches")
        self._recorder.inc("insights.fetches")
        if not self.enabled:
            self.last_fetch_latency = 0.0
            return {}
        tags = list(tags)
        per_tag = self.fetch_tag_annotations(tags)
        result: Dict[str, Annotation] = {}
        for tag in tags:
            for annotation in per_tag.get(tag, ()):
                result[annotation.recurring_signature] = annotation
        self.metrics.inc("annotations_served", len(result))
        self._recorder.inc("insights.annotations_served", len(result))
        return result

    def fetch_tag_annotations(self, tags: Iterable[str]
                              ) -> Dict[str, List[Annotation]]:
        """The batch surface the client round-trips through.

        Groups the tags by owning shard, runs one ``fetch_tags`` RPC per
        contacted shard, and charges the *sum* of the shards' simulated
        latencies (see the module docstring for why the sum, not the
        max).  Shard-seam faults (``shard.rpc``, ``shard.death``) fire
        here, per contacted shard, and propagate as the insights-error
        taxonomy the client already handles.
        """
        if not self.enabled:
            self.last_fetch_latency = 0.0
            return {}
        tags = list(tags)
        by_shard: Dict[int, List[str]] = {}
        for tag in tags:
            by_shard.setdefault(self.shard_of_tag(tag), []).append(tag)
        delay = 0.0
        charges: Dict[str, float] = {}
        result: Dict[str, List[Annotation]] = {}
        for shard_id in sorted(by_shard):
            delay += self._check_shard_faults(shard_id)
            reply = self.call(shard_id, "fetch_tags",
                              tags=by_shard[shard_id])
            charges.update(reply["charges"])
            self.metrics.inc("cache_hits", reply["cache_hits"])
            self.metrics.inc("cache_misses", reply["cache_misses"])
            self._recorder.inc("insights.cache_hits", reply["cache_hits"])
            self._recorder.inc("insights.cache_misses",
                               reply["cache_misses"])
            for tag, annotations in reply["tags"].items():
                result[tag] = [annotation_from_wire(a) for a in annotations]
        # Accumulate per-tag charges in the caller's tag order -- the
        # same float additions, in the same order, as the unsharded
        # service -- so the client's timeout comparison sees a
        # bit-identical cost for any shard count.
        latency = 0.0
        for tag in tags:
            latency += charges.get(tag, 0.0)
        latency += delay
        self.last_fetch_latency = latency
        self._recorder.observe("insights.fetch.latency", latency)
        return result

    def _check_shard_faults(self, shard_id: int) -> float:
        """Fire the shard seams for one fetch RPC; returns injected delay."""
        if not self.faults.enabled:
            return 0.0
        death = self.faults.check(fault_points.SHARD_DEATH)
        if death.kind == "crash":
            # Really kill the process: the RPC below then exercises the
            # genuine dead-shard path (reconnect, restart, or surface an
            # InsightsError for the client ladder).
            self.supervisor.kill(shard_id)
            self._drop_pool(shard_id)
        outcome = self.faults.check(fault_points.SHARD_RPC)
        if outcome.kind == "drop":
            raise InsightsTimeout(
                f"injected shard.rpc drop on shard {shard_id}")
        if outcome.kind == "error":
            raise InsightsError(
                f"injected shard.rpc error on shard {shard_id}")
        return outcome.delay

    # ------------------------------------------------------------------ #
    # view locks (routed by strict signature; strongly consistent)

    def acquire_view_lock(self, strict_signature: str, holder: str) -> bool:
        if not self.enabled:
            return False
        shard_id = self.shard_of_signature(strict_signature)
        reply = self.call(shard_id, "lock_acquire",
                          signature=strict_signature, holder=holder)
        if not reply["acquired"]:
            self.metrics.inc("locks_denied")
            self._recorder.event(obs_events.LOCK_DENIED, job_id=holder,
                                 signature=strict_signature[:12],
                                 held_by=reply.get("holder"))
            return False
        self.metrics.inc("locks_acquired")
        self._recorder.event(obs_events.LOCK_ACQUIRED, job_id=holder,
                             signature=strict_signature[:12])
        return True

    def release_view_lock(self, strict_signature: str, holder: str) -> None:
        self.call(self.shard_of_signature(strict_signature),
                  "lock_release", signature=strict_signature, holder=holder)
        self.metrics.inc("locks_released")
        self._recorder.event(obs_events.LOCK_RELEASED, job_id=holder,
                             signature=strict_signature[:12])

    def force_release_lock(self, strict_signature: str) -> bool:
        reply = self.call(self.shard_of_signature(strict_signature),
                          "lock_force_release",
                          signature=strict_signature)
        if not reply["released"]:
            return False
        self.metrics.inc("locks_released")
        self._recorder.event(obs_events.LOCK_RELEASED,
                             job_id=str(reply.get("holder")),
                             signature=strict_signature[:12], forced=True)
        return True

    def lock_holder(self, strict_signature: str) -> Optional[str]:
        return self.call(self.shard_of_signature(strict_signature),
                         "lock_holder",
                         signature=strict_signature)["holder"]

    def held_locks(self) -> Dict[str, str]:
        merged: Dict[str, str] = {}
        for reply in self.broadcast("held_locks"):
            merged.update(reply["locks"])
        return merged

    def report_view_available(self, strict_signature: str,
                              holder: str) -> None:
        self.call(self.shard_of_signature(strict_signature),
                  "report_available", signature=strict_signature,
                  holder=holder)
        self.metrics.inc("locks_released")
        self.metrics.inc("views_reported_available")
        self._recorder.event(obs_events.LOCK_RELEASED, job_id=holder,
                             signature=strict_signature[:12])

    # ------------------------------------------------------------------ #
    # operational surface

    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard worker stats plus the router's own RPC tallies."""
        stats = []
        for shard_id, reply in enumerate(self.broadcast("stats")):
            reply["router_rpcs"] = self.rpcs[shard_id]
            reply["router_rpc_failures"] = self.rpc_failures[shard_id]
            stats.append(reply)
        return stats

    def close(self) -> None:
        """Drain the connection pool (the supervisor owns the workers)."""
        for shard_id in range(self.shards):
            self._drop_pool(shard_id)


def tags_by_shard(tags: Iterable[str], shards: int) -> Dict[int, List[str]]:
    """Partition helper used by the benchmark's balance report."""
    out: Dict[int, List[str]] = {}
    for tag in tags:
        out.setdefault(shard_for(tag, shards), []).append(tag)
    return out
