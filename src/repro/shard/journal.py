"""Per-shard lifecycle WALs behind the single-journal interface.

:class:`ShardedCatalogJournal` is the drop-in the
:class:`~repro.lifecycle.manager.LifecycleManager` journals through when
the session is sharded.  Every catalog mutation routes to the WAL of the
shard that owns the view's strict signature (``epoch`` markers, which
carry no signature, live on shard 0), so each worker process persists
exactly its partition and no WAL is written from two processes.

Because placement is deterministic (:func:`~repro.common.hashing.shard_for`)
the global catalog state is a *merge-on-read*: recovery fans ``recover``
out to every shard, unions the view records and lineage slices (disjoint
by construction), sums the lifecycle counters across shards, and takes
the max epoch -- after which ``catalog_digest`` over the rebuilt store
equals the unsharded journal's, for any shard count.  The offline form
(:func:`merged_offline_recovery`) does the same directly from the
``shard-NN`` directories with no processes running; chaos campaigns use
it to prove the on-disk state of a killed deployment still converges.

Fault draws stay in the parent process: the adapter consults the one
session fault runtime at ``journal.append`` / ``journal.snapshot`` and
*commands* a torn write over the wire (``torn=True``), while the worker
journals themselves run with faults disabled.  One RNG, one firing log
-- identical to the unsharded session's.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.common.errors import StorageError
from repro.common.hashing import shard_for
from repro.faults import points as fault_points
from repro.faults.runtime import NULL_FAULTS
from repro.lifecycle.journal import (
    CatalogJournal,
    RecoveryReport,
    record_to_view,
    view_to_record,
)
from repro.lifecycle.lineage import LineageRegistry
from repro.shard.router import ShardRouter
from repro.storage.views import ViewStore


def shard_for_op(op: str, payload: Dict[str, object], shards: int) -> int:
    """Which shard's WAL owns one journal op.

    Mutations carry the view's strict signature (directly, or inside the
    ``created`` record); global markers like ``epoch`` pin to shard 0.
    """
    if "signature" in payload:
        return shard_for(str(payload["signature"]), shards)
    view = payload.get("view")
    if isinstance(view, dict) and "signature" in view:
        return shard_for(str(view["signature"]), shards)
    return 0


class ShardedCatalogJournal:
    """``CatalogJournal`` duck type that fans out to per-shard WALs."""

    def __init__(self, router: ShardRouter,
                 directory: Optional[str] = None) -> None:
        self.router = router
        self.shards = router.shards
        #: The parent journal directory (``shard-NN`` subdirectories
        #: underneath); informational, for :meth:`stats`.
        self.directory = directory
        #: Installed by the lifecycle manager, like the classic journal.
        self.faults = NULL_FAULTS
        self.ops_written = 0
        self.ops_since_snapshot = 0
        self.snapshots_written = 0

    # ------------------------------------------------------------------ #
    # the write-ahead log

    def append(self, op: str, **payload: object) -> None:
        """Route one mutation to its owning shard's WAL.

        The fault decision (torn/storage) is drawn *here*, from the
        session runtime; a storage fault fails before any RPC, a torn
        fault ships ``torn=True`` so the worker persists the classic
        half-line and raises -- the :class:`StorageError` crosses back
        by name and the op goes uncounted, exactly like the in-process
        journal's contract.
        """
        outcome = self.faults.check(fault_points.JOURNAL_APPEND)
        if outcome.kind == "storage":
            raise StorageError(f"injected storage fault writing op {op!r}")
        self.router.call(
            shard_for_op(op, payload, self.shards), "journal_append",
            op=op, payload=payload, torn=outcome.kind == "torn")
        self.ops_written += 1
        self.ops_since_snapshot += 1

    # ------------------------------------------------------------------ #
    # snapshots

    def snapshot(self, store: ViewStore, lineage: LineageRegistry,
                 epoch: int = 0, runtime_version: str = "") -> str:
        """Partition the live state and snapshot every shard's slice.

        Each shard receives the view records and lineage entries it owns
        plus -- shard 0 only -- the aggregate lifecycle counters, so the
        merged recovery sums counters to exactly the live values.
        Sending the *live* slice (not the shard's own recovered state)
        is what heals WAL ops lost to injected torn writes, matching the
        single-journal manager snapshotting the live store.
        """
        self.faults.fire(fault_points.JOURNAL_SNAPSHOT)
        views: List[List[Dict[str, object]]] = [
            [] for _ in range(self.shards)]
        for view in sorted(store.views(), key=lambda v: v.signature):
            views[shard_for(view.signature, self.shards)].append(
                view_to_record(view))
        lineage_slices: List[Dict[str, object]] = [
            {} for _ in range(self.shards)]
        for signature, inputs in lineage.snapshot().items():
            lineage_slices[shard_for(signature, self.shards)][
                signature] = inputs
        path = ""
        for shard_id in range(self.shards):
            reply = self.router.call(
                shard_id, "journal_snapshot",
                views=views[shard_id],
                lineage=lineage_slices[shard_id],
                counters=store.counters() if shard_id == 0 else {},
                epoch=epoch, runtime_version=runtime_version)
            if shard_id == 0:
                path = str(reply["path"])
        self.ops_since_snapshot = 0
        self.snapshots_written += 1
        return path

    # ------------------------------------------------------------------ #
    # recovery

    def recover(self, store: ViewStore,
                lineage: LineageRegistry) -> RecoveryReport:
        """Merge-on-read: union every shard's recovered partition."""
        if store.views():
            raise StorageError("journal recovery requires an empty store")
        report = RecoveryReport()
        counters: Dict[str, int] = {}
        for reply in self.router.broadcast("journal_recover"):
            for record in reply["views"]:
                store.restore(record_to_view(record))
                report.views_restored += 1
            for name, value in reply["counters"].items():
                counters[name] = counters.get(name, 0) + int(value)
            lineage.restore(dict(reply["lineage"]))
            report.epoch = max(report.epoch, int(reply["epoch"]))
            if reply["runtime_version"]:
                report.runtime_version = str(reply["runtime_version"])
            report.snapshot_views += int(reply["snapshot_views"])
            report.wal_ops += int(reply["wal_ops"])
            report.torn_lines += int(reply["torn_lines"])
            report.skipped.extend(
                [str(a), str(b)] for a, b in reply["skipped"])
        store.restore_counters(counters)
        return report

    # ------------------------------------------------------------------ #
    # lifecycle

    def stats(self) -> Dict[str, object]:
        merged: Dict[str, object] = {
            "directory": self.directory or "",
            "shards": self.shards,
            "ops_written": self.ops_written,
            "ops_since_snapshot": self.ops_since_snapshot,
            "snapshots_written": self.snapshots_written,
            "wal_bytes": 0,
            "has_snapshot": False,
            "torn_pending": False,
        }
        for reply in self.router.broadcast("journal_stats"):
            stats = reply["stats"]
            if not stats:
                continue
            merged["wal_bytes"] += int(stats["wal_bytes"])
            merged["has_snapshot"] = (merged["has_snapshot"]
                                      or bool(stats["has_snapshot"]))
            merged["torn_pending"] = (merged["torn_pending"]
                                      or bool(stats["torn_pending"]))
        return merged

    def close(self) -> None:
        """Worker journals close with their processes; nothing to do."""


def merged_offline_recovery(journal_dir: str, store: ViewStore,
                            lineage: LineageRegistry) -> RecoveryReport:
    """Rebuild the global catalog from ``shard-NN`` WALs on disk.

    The offline twin of :meth:`ShardedCatalogJournal.recover` -- no
    worker processes involved.  A directory with no ``shard-`` children
    is treated as a classic single journal, so callers can point this at
    either layout.
    """
    if store.views():
        raise StorageError("journal recovery requires an empty store")
    shard_dirs = sorted(
        os.path.join(journal_dir, name)
        for name in os.listdir(journal_dir)
        if name.startswith("shard-")
        and os.path.isdir(os.path.join(journal_dir, name)))
    if not shard_dirs:
        journal = CatalogJournal(journal_dir)
        try:
            return journal.recover(store, lineage)
        finally:
            journal.close()
    report = RecoveryReport()
    counters: Dict[str, int] = {}
    for shard_dir in shard_dirs:
        partition = ViewStore()
        partition_lineage = LineageRegistry()
        journal = CatalogJournal(shard_dir)
        try:
            part = journal.recover(partition, partition_lineage)
        finally:
            journal.close()
        for view in sorted(partition.views(), key=lambda v: v.signature):
            store.restore(record_to_view(view.catalog_record()))
            report.views_restored += 1
        for name, value in partition.counters().items():
            counters[name] = counters.get(name, 0) + int(value)
        lineage.restore(partition_lineage.snapshot())
        report.epoch = max(report.epoch, part.epoch)
        if part.runtime_version:
            report.runtime_version = part.runtime_version
        report.snapshot_views += part.snapshot_views
        report.wal_ops += part.wal_ops
        report.torn_lines += part.torn_lines
        report.skipped.extend(part.skipped)
    store.restore_counters(counters)
    return report
