"""Concurrent job scheduler: parallel compile/execute, deterministic results.

Production SCOPE compiles hundreds of jobs concurrently against the
insights service; the serial ``ScopeEngine`` loop under-represents every
contention bug in that path.  :class:`JobScheduler` runs a pool of worker
threads over the *same* engine, with three invariants:

* **Per-job isolation** -- an exception inside one job's compile/execute is
  captured into its :class:`~repro.scheduler.results.JobResult`; sibling
  jobs and the scheduler itself are unaffected, and the engine's failure
  paths (lock release, view abandonment) run as usual.

* **Admission limits** -- at most ``max_pending`` jobs may be in flight;
  ``admission="block"`` back-pressures submitters, ``admission="reject"``
  raises :class:`~repro.common.errors.AdmissionError` (the paper's
  load-shedding posture for the serving tier).

* **Deterministic collection** -- job ids are assigned at submission time,
  and all schedule-dependent side effects (sealing views, recording
  workload history) are deferred from the worker threads to
  :meth:`drain`'s barrier, where they run in submission order.  A batch
  run with 8 workers therefore leaves the engine in a byte-identical
  state to the same batch run with 1 worker; only wall-clock differs.
  Within a batch, view *buildout* dedup relies solely on the insights
  service's atomic lock table: exactly one concurrent producer wins each
  strict signature, and because catalog records are identity-free the
  winner's identity does not affect the final catalog digest.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import (
    AdmissionError,
    ConfigError,
    InjectedCrash,
    SchedulerError,
)
from repro.common.sync import RANK_SCHEDULER, TrackedLock
from repro.engine.engine import JobRun, ScopeEngine
from repro.faults import points as fault_points
from repro.faults.runtime import NULL_FAULTS
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.scheduler.results import JobResult

_ADMISSION_MODES = ("block", "reject")


@dataclass(kw_only=True)
class SchedulerConfig:
    """Concurrency knobs of the :class:`JobScheduler`."""

    workers: int = 4
    #: Maximum jobs admitted but not yet collected; 0 means unbounded.
    max_pending: int = 0
    #: ``"block"`` back-pressures ``submit``; ``"reject"`` raises
    #: :class:`AdmissionError` when the pending limit is hit.
    admission: str = "block"
    #: A worker killed by an injected crash (``scheduler.worker``) is
    #: restarted in place this many times -- modelling the cluster
    #: rescheduling a dead task -- before the job fails for real.
    worker_retries: int = 2

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_pending < 0:
            raise ConfigError(
                f"max_pending must be >= 0, got {self.max_pending}")
        if self.worker_retries < 0:
            raise ConfigError(
                f"worker_retries must be >= 0, got {self.worker_retries}")
        if self.admission not in _ADMISSION_MODES:
            raise ConfigError(
                f"admission must be one of {_ADMISSION_MODES}, "
                f"got {self.admission!r}")


@dataclass
class JobRequest:
    """One job submitted to the scheduler."""

    sql: str
    params: Dict[str, object] = field(default_factory=dict)
    virtual_cluster: str = "default"
    reuse_enabled: bool = True
    #: Pre-assigned id; drawn from ``engine.next_job_id()`` at submission
    #: when omitted.
    job_id: Optional[str] = None
    #: Recurring-job identity for workload analysis.  Batch submissions
    #: that leave these empty are recorded as one-off ad-hoc jobs and
    #: never feed view selection.
    template_id: str = ""
    pipeline_id: str = ""


class _Pending:
    """Submission-order slot awaiting its worker's outcome."""

    __slots__ = ("request", "job_id", "submitted_at", "future")

    def __init__(self, request: JobRequest, job_id: str,
                 submitted_at: float, future) -> None:
        self.request = request
        self.job_id = job_id
        self.submitted_at = submitted_at
        self.future = future


class JobScheduler:
    """Thread-pool frontend over one :class:`ScopeEngine`.

    Typical use::

        scheduler = JobScheduler(engine, SchedulerConfig(workers=8))
        for sql in batch:
            scheduler.submit(JobRequest(sql=sql), now=now)
        results = scheduler.drain(now=now)
        scheduler.close()

    ``submit``/``drain`` may also be driven through :meth:`run_batch`.
    The scheduler is itself thread-safe for submissions, but ``drain``
    is a barrier and must not race with further submissions.
    """

    def __init__(self, engine: ScopeEngine,
                 config: Optional[SchedulerConfig] = None,
                 reuse_gate: Optional[Callable[[str], bool]] = None,
                 recorder=None):
        self.engine = engine
        self.config = config or SchedulerConfig()
        #: Optional per-virtual-cluster kill switch, e.g.
        #: ``lambda vc: controls.enabled_for(vc, service_enabled=...)``.
        self.reuse_gate = reuse_gate
        self.recorder = recorder if recorder is not None else (
            getattr(engine, "recorder", None) or NULL_RECORDER)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-sched")
        self._pending: List[_Pending] = []
        self._mutex = TrackedLock("scheduler", RANK_SCHEDULER,
                                  self.recorder)
        self._slots = (threading.BoundedSemaphore(self.config.max_pending)
                       if self.config.max_pending else None)
        self._closed = False
        self._waves = 0
        self.jobs_submitted = 0
        self.jobs_failed = 0
        #: The session's fault runtime; ``Session(faults=...)`` installs
        #: a live one so the ``scheduler.worker`` death seam can fire.
        self.faults = NULL_FAULTS

    # ------------------------------------------------------------------ #
    # submission

    def submit(self, request: JobRequest, now: float = 0.0) -> str:
        """Admit one job and return its (deterministic) job id."""
        if self._closed:
            raise SchedulerError("scheduler is closed")
        if self._slots is not None:
            if self.config.admission == "reject":
                if not self._slots.acquire(blocking=False):
                    self.recorder.inc("scheduler.admission.rejected")
                    raise AdmissionError(
                        f"pending limit {self.config.max_pending} reached")
            else:
                self._slots.acquire()
        with self._mutex:
            job_id = request.job_id or self.engine.next_job_id()
            self.jobs_submitted += 1
            future = self._pool.submit(self._work, request, job_id, now)
            self._pending.append(_Pending(request, job_id, now, future))
        return job_id

    def _work(self, request: JobRequest, job_id: str, now: float):
        """Worker-thread body: compile + execute, side effects deferred.

        The ``scheduler.worker`` fault point simulates the worker dying
        before it makes progress; the engine's own failure paths released
        everything on the way out, so restarting the attempt in place is
        exactly what the cluster's task rescheduler would do.
        """
        retries = self.config.worker_retries
        for attempt in range(retries + 1):
            try:
                self.faults.fire(fault_points.SCHEDULER_WORKER)
                return self._attempt(request, job_id, now)
            except InjectedCrash:
                if attempt >= retries:
                    raise
                self.recorder.inc("scheduler.worker_retries")
                self.recorder.event(
                    obs_events.WORKER_RETRIED, at=now, job_id=job_id,
                    virtual_cluster=request.virtual_cluster,
                    attempt=attempt + 1)
        raise AssertionError("unreachable")  # pragma: no cover

    def _attempt(self, request: JobRequest, job_id: str, now: float):
        reuse = request.reuse_enabled
        if reuse and self.reuse_gate is not None:
            reuse = self.reuse_gate(request.virtual_cluster)
        compiled = self.engine.compile(
            request.sql,
            params=request.params,
            virtual_cluster=request.virtual_cluster,
            reuse_enabled=reuse,
            now=now,
            job_id=job_id,
        )
        # Sealing and history recording happen at the drain barrier, in
        # submission order -- the worker only does the schedule-invariant
        # part of execution.
        return self.engine.execute(
            compiled, now=now, record_history=False, seal_views=False)

    # ------------------------------------------------------------------ #
    # collection barrier

    def drain(self, now: float = 0.0,
              seal_views: bool = True,
              record_history: bool = True,
              on_run: Optional[Callable[[JobRun], None]] = None
              ) -> List[JobResult]:
        """Wait for every pending job; apply side effects in submission order.

        ``on_run`` is invoked (still in submission order) for each
        successful run after its views sealed -- the concurrent simulation
        uses it to ingest the workload repository deterministically.
        """
        with self._mutex:
            pending, self._pending = self._pending, []
        results: List[JobResult] = []
        failures = 0
        for slot in pending:
            try:
                run: JobRun = slot.future.result()
            except Exception as error:  # per-job isolation boundary
                failures += 1
                self.recorder.inc("scheduler.jobs.failed")
                self.recorder.event(
                    obs_events.JOB_FAILED, at=now, job_id=slot.job_id,
                    virtual_cluster=slot.request.virtual_cluster,
                    error=str(error) or type(error).__name__,
                    error_type=type(error).__name__,
                )
                results.append(JobResult.from_failure(
                    slot.job_id, slot.request.sql,
                    slot.request.virtual_cluster, slot.submitted_at, error))
            else:
                if seal_views:
                    for spool in run.result.spooled:
                        self.engine.seal_spooled(run, spool.signature, at=now)
                if record_history:
                    self.engine.record_history(run.result)
                if on_run is not None:
                    on_run(run)
                results.append(JobResult.from_run(run))
            finally:
                if self._slots is not None:
                    self._slots.release()
        self.jobs_failed += failures
        if pending:
            self._waves += 1
            self.recorder.inc("scheduler.waves")
            self.recorder.event(
                obs_events.SCHEDULER_WAVE, at=now,
                job_id=f"wave-{self._waves}",
                jobs=len(pending), failures=failures,
                workers=self.config.workers,
            )
        return results

    def run_batch(self, requests: List[JobRequest], now: float = 0.0,
                  on_run: Optional[Callable[[JobRun], None]] = None
                  ) -> List[JobResult]:
        """Submit a batch and drain it: one wave, results in batch order."""
        for request in requests:
            self.submit(request, now=now)
        return self.drain(now=now, on_run=on_run)

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def pending_jobs(self) -> int:
        with self._mutex:
            return len(self._pending)

    @property
    def waves(self) -> int:
        return self._waves

    def close(self) -> None:
        """Shut the pool down; outstanding futures are drained first."""
        if self._closed:
            return
        if self.pending_jobs:
            raise SchedulerError(
                "close() with pending jobs; call drain() first")
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True
            self._pool.shutdown(wait=True)
