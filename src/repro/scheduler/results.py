"""The unified job result type of the public API.

Historically ``Engine.compile`` returned a :class:`CompiledJob`,
``Engine.execute`` / ``CloudViews.run`` a :class:`JobRun`, and callers dug
through ``run.result.rows`` / ``run.compiled.optimized`` ad hoc.
:class:`JobResult` flattens the fields users actually consume into one
stable dataclass, shared by ``repro.api.Session.run`` and the concurrent
:class:`~repro.scheduler.scheduler.JobScheduler` -- including the failure
shape: a scheduler batch always returns one ``JobResult`` per submitted
job, with ``error`` set instead of an exception escaping the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.engine import CompiledJob, JobRun
from repro.plan.expressions import Row


@dataclass
class JobResult:
    """Everything one submitted job produced.

    ``ok`` is False when the job raised: ``error``/``error_type`` then
    carry the message, and the execution-dependent fields hold their
    zero values.  ``degraded`` marks jobs that compiled with reuse
    disabled because the insights serving path was down (circuit breaker
    / retries exhausted) -- degraded jobs still succeed.
    """

    job_id: str
    sql: str
    virtual_cluster: str = "default"
    submitted_at: float = 0.0
    rows: List[Row] = field(default_factory=list)
    tags: Tuple[str, ...] = ()
    views_built: int = 0
    views_reused: int = 0
    sealed_views: List[str] = field(default_factory=list)
    compile_latency: float = 0.0
    estimated_cost: float = 0.0
    estimated_cost_without_reuse: float = 0.0
    reuse_enabled: bool = True
    degraded: bool = False
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: The underlying engine objects, for callers that need the full
    #: plan/statistics surface (None on failure).
    run: Optional[JobRun] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def compiled(self) -> Optional[CompiledJob]:
        return self.run.compiled if self.run is not None else None

    def summary(self) -> Dict[str, object]:
        """Flat JSON-friendly view (CLI output, benchmark series)."""
        return {
            "job_id": self.job_id,
            "virtual_cluster": self.virtual_cluster,
            "ok": self.ok,
            "degraded": self.degraded,
            "rows": self.row_count,
            "views_built": self.views_built,
            "views_reused": self.views_reused,
            "compile_latency": self.compile_latency,
            "error": self.error,
        }

    # ------------------------------------------------------------------ #
    # constructors

    @classmethod
    def from_run(cls, run: JobRun) -> "JobResult":
        compiled = run.compiled
        return cls(
            job_id=compiled.job_id,
            sql=compiled.sql,
            virtual_cluster=compiled.virtual_cluster,
            submitted_at=compiled.submitted_at,
            rows=run.rows,
            tags=compiled.tags,
            views_built=compiled.built_views,
            views_reused=compiled.reused_views,
            sealed_views=list(run.sealed_views),
            compile_latency=compiled.compile_latency,
            estimated_cost=compiled.optimized.estimated_cost,
            estimated_cost_without_reuse=(
                compiled.optimized.estimated_cost_without_reuse),
            reuse_enabled=compiled.reuse_enabled,
            degraded=compiled.degraded,
            run=run,
        )

    @classmethod
    def from_failure(cls, job_id: str, sql: str, virtual_cluster: str,
                     submitted_at: float, error: BaseException
                     ) -> "JobResult":
        return cls(
            job_id=job_id,
            sql=sql,
            virtual_cluster=virtual_cluster,
            submitted_at=submitted_at,
            error=str(error) or type(error).__name__,
            error_type=type(error).__name__,
        )
