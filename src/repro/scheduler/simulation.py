"""Wave-parallel workload simulation over the concurrent scheduler.

The serial :class:`~repro.core.runner.WorkloadSimulation` interleaves jobs
through the cluster simulator's event loop; this driver instead stresses
the *frontend*: all jobs sharing a simulated arrival time form one wave
that compiles and executes concurrently on the :class:`JobScheduler`,
with sealing / history / repository ingestion applied at the wave barrier
in submission order.  By construction, the simulated outcome -- view
catalog, reuse counts, workload repository -- is independent of the
worker count; ``--workers 8`` differs from ``--workers 1`` only in
wall-clock time and in which thread happened to win each view lock (the
catalog digest is identity-free, so even that does not show).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SECONDS_PER_DAY
from repro.common.errors import ConfigError
from repro.core.controls import MultiLevelControls
from repro.core.runner import record_job_into
from repro.engine.engine import EngineConfig, JobRun, ScopeEngine
from repro.insights.client import (
    FaultInjector,
    InsightsClient,
    InsightsClientConfig,
)
from repro.obs import events as obs_events
from repro.obs.recorder import NULL_RECORDER
from repro.scheduler.results import JobResult
from repro.scheduler.scheduler import (
    JobRequest,
    JobScheduler,
    SchedulerConfig,
)
from repro.selection.candidates import build_candidates
from repro.selection.policies import SelectionPolicy, SelectionResult
from repro.selection.registry import run_selection, validate_selection_algorithm
from repro.workload.generator import CookingWorkload, JobInstance
from repro.workload.repository import WorkloadRepository


@dataclass(kw_only=True)
class ConcurrentSimulationConfig:
    """Knobs for one wave-parallel simulation run."""

    days: int = 7
    workers: int = 4
    cloudviews_enabled: bool = True
    selection_algorithm: str = "bigsubs"
    policy: SelectionPolicy = field(default_factory=lambda: SelectionPolicy(
        storage_budget_bytes=50_000_000,
        materialization_lag_seconds=150.0,
        min_reuses_per_epoch=2.0,
    ))
    warmup_days: int = 1
    reselect_every_days: int = 1
    selection_window_days: int = 3
    #: View TTL in simulated seconds (``repro simulate --view-ttl``);
    #: ``None`` keeps the engine default (one week, §3.1).
    view_ttl_seconds: Optional[float] = None
    #: Execution backend name (``repro simulate --backend``).
    backend: str = "memory"
    #: Insights-service shard processes (``repro simulate --shards``);
    #: 0 keeps the in-process service.  Reuse decisions and the catalog
    #: digest are shard-count-invariant by construction.
    shards: int = 0

    def __post_init__(self) -> None:
        validate_selection_algorithm(self.selection_algorithm)
        if self.shards < 0:
            raise ConfigError(f"shards must be >= 0, got {self.shards}")


@dataclass
class ConcurrentSimulationReport:
    """What the CLI and the throughput benchmark read."""

    config: ConcurrentSimulationConfig
    results: List[JobResult]
    repository: WorkloadRepository
    views_created: int
    views_reused: int
    catalog_digest: str
    wall_seconds: float
    selections: List[SelectionResult] = field(default_factory=list)
    #: Per-shard worker stats (``None`` for the in-process service).
    shard_stats: Optional[List[Dict[str, object]]] = None

    @property
    def shard_busy_seconds(self) -> List[float]:
        """Simulated serving busy-time accumulated by each shard."""
        if not self.shard_stats:
            return []
        return [float(s["busy_seconds"]) for s in self.shard_stats]

    @property
    def jobs(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    @property
    def degraded_jobs(self) -> int:
        return sum(1 for r in self.results if r.degraded)

    @property
    def jobs_per_second(self) -> float:
        return self.jobs / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "workers": self.config.workers,
            "shards": self.config.shards,
            "days": self.config.days,
            "jobs": self.jobs,
            "failures": self.failures,
            "degraded_jobs": self.degraded_jobs,
            "views_created": self.views_created,
            "views_reused": self.views_reused,
            "catalog_digest": self.catalog_digest,
            "wall_seconds": round(self.wall_seconds, 3),
            "jobs_per_second": round(self.jobs_per_second, 1),
        }


class ConcurrentSimulation:
    """Drives a cooking workload through the concurrent scheduler."""

    def __init__(self, workload: CookingWorkload,
                 config: ConcurrentSimulationConfig,
                 engine: Optional[ScopeEngine] = None,
                 controls: Optional[MultiLevelControls] = None,
                 client_config: Optional[InsightsClientConfig] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 recorder=None):
        self.workload = workload
        self.config = config
        self._supervisor = None
        self._router = None
        if engine is None:
            # The default engine fetches through the fault-tolerant
            # client, so concurrent waves exercise batching + caching
            # (and, with a fault injector, the degradation ladder).
            engine_config = EngineConfig()
            if config.view_ttl_seconds is not None:
                engine_config.view_ttl_seconds = config.view_ttl_seconds
            from repro.backends import create_backend
            service = None
            if config.shards > 0:
                from repro.shard.router import ShardRouter
                from repro.shard.supervisor import ShardConfig, \
                    ShardSupervisor
                self._supervisor = ShardSupervisor(
                    ShardConfig(shards=config.shards))
                self._supervisor.start()
                self._router = ShardRouter(self._supervisor)
                service = self._router
            engine = ScopeEngine(
                insights=InsightsClient(
                    service, config=client_config,
                    injector=fault_injector),
                config=engine_config,
                backend=create_backend(config.backend))
        self.engine = engine
        self.controls = controls
        self.recorder = recorder or NULL_RECORDER
        if recorder is not None:
            recorder.install(self.engine)
        self.repository = WorkloadRepository()
        self.selections: List[SelectionResult] = []
        self._full_work: Dict[str, float] = {}
        self._instances: Dict[str, JobInstance] = {}

    # ------------------------------------------------------------------ #

    def _reuse_gate(self, virtual_cluster: str) -> bool:
        if not self.config.cloudviews_enabled:
            return False
        if self.controls is None:
            return True
        return self.controls.enabled_for(
            virtual_cluster, service_enabled=self.engine.insights.enabled)

    def run(self) -> ConcurrentSimulationReport:
        started = time.perf_counter()
        self.workload.install(self.engine, at=0.0)
        results: List[JobResult] = []
        scheduler = JobScheduler(
            self.engine,
            SchedulerConfig(workers=self.config.workers),
            reuse_gate=self._reuse_gate,
            recorder=self.recorder,
        )
        shard_stats = None
        try:
            with scheduler:
                for day in range(self.config.days):
                    if day > 0:
                        self._day_boundary(day, day * SECONDS_PER_DAY)
                    for wave_time, wave in self._waves_for_day(day):
                        self._run_wave(scheduler, wave, wave_time, results)
            if self._router is not None:
                shard_stats = self._router.shard_stats()
        finally:
            self._close_shards()
        return ConcurrentSimulationReport(
            config=self.config,
            results=results,
            repository=self.repository,
            views_created=self.engine.view_store.total_created,
            views_reused=self.engine.view_store.total_reused,
            catalog_digest=self.engine.view_store.catalog_digest(),
            wall_seconds=time.perf_counter() - started,
            selections=self.selections,
            shard_stats=shard_stats,
        )

    def _close_shards(self) -> None:
        if self._router is not None:
            self._router.close()
            self._router = None
        if self._supervisor is not None:
            self._supervisor.close()
            self._supervisor = None

    # ------------------------------------------------------------------ #
    # waves

    def _waves_for_day(self, day: int):
        """Group the day's jobs by simulated arrival time, in order."""
        waves: List[tuple] = []
        for instance in self.workload.jobs_for_day(day):
            if waves and waves[-1][0] == instance.submit_time:
                waves[-1][1].append(instance)
            else:
                waves.append((instance.submit_time, [instance]))
        return waves

    def _run_wave(self, scheduler: JobScheduler, wave: List[JobInstance],
                  now: float, results: List[JobResult]) -> None:
        for instance in wave:
            template = instance.template
            job_id = scheduler.submit(JobRequest(
                sql=template.sql,
                params=dict(instance.params),
                virtual_cluster=template.virtual_cluster,
            ), now=now)
            self._instances[job_id] = instance
        results.extend(scheduler.drain(now=now, on_run=self._ingest))

    def _ingest(self, run: JobRun) -> None:
        """Barrier callback: repository ingestion in submission order."""
        instance = self._instances.pop(run.compiled.job_id)
        template = instance.template
        record_job_into(
            self.repository, run, run.compiled.submitted_at,
            virtual_cluster=template.virtual_cluster,
            template_id=template.template_id,
            pipeline_id=template.pipeline_id,
            salt=self.engine.signature_salt,
            full_work=self._full_work,
        )

    # ------------------------------------------------------------------ #
    # day boundary: cooking, eviction, feedback loop

    def _day_boundary(self, day: int, now: float) -> None:
        self.workload.cook(self.engine, day)
        self.engine.view_store.evict_expired(now)
        if not self.config.cloudviews_enabled:
            return
        if day < self.config.warmup_days:
            return
        if (day - self.config.warmup_days) % self.config.reselect_every_days:
            return
        self._reselect(now)

    def _reselect(self, now: float) -> None:
        epoch_id = f"epoch-{len(self.selections) + 1}"
        window_start = now - self.config.selection_window_days * SECONDS_PER_DAY
        window = self.repository.window(window_start, now)
        candidates = build_candidates(window)
        result = run_selection(
            self.config.selection_algorithm, window, candidates,
            self.config.policy, recorder=self.recorder)
        published = self.engine.insights.publish(result.annotations())
        self.selections.append(result)
        self.recorder.event(
            obs_events.SELECTION_EPOCH, at=now, job_id=epoch_id,
            algorithm=self.config.selection_algorithm,
            considered=result.considered,
            selected=len(result.selected),
            rejected_by_budget=result.rejected_by_budget,
            rejected_by_schedule=result.rejected_by_schedule,
            storage_used=result.storage_used,
            published=published,
        )
