"""Concurrent execution frontend: thread-pool scheduler + simulation."""

from repro.scheduler.results import JobResult
from repro.scheduler.scheduler import (
    JobRequest,
    JobScheduler,
    SchedulerConfig,
)
from repro.scheduler.simulation import (
    ConcurrentSimulation,
    ConcurrentSimulationConfig,
    ConcurrentSimulationReport,
)

__all__ = [
    "JobResult", "JobRequest", "JobScheduler", "SchedulerConfig",
    "ConcurrentSimulation", "ConcurrentSimulationConfig",
    "ConcurrentSimulationReport",
]
