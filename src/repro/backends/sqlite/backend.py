"""Execution backend over a real SQLite database.

Datasets load as real tables, optimized plans compile to SQL (see
:mod:`repro.backends.sqlite.compile`), Spool operators materialize
views with ``CREATE TABLE AS`` before the consuming query runs, and
ViewScans read those tables back.  Per-operator statistics -- the
observed numbers the CloudViews feedback loop trains on -- come from
``COUNT(*)/SUM(width)`` probe queries per plan node, using the same
byte-width rule as the in-memory store, so reuse decisions and the
catalog digest are identical across backends.

Tables are created with *typeless* columns: SQLite then stores every
value exactly as bound (no affinity coercion), which is a precondition
for the differential harness's byte-equal guarantee.  One connection is
shared by all scheduler workers, serialized by a ranked lock at the
storage tier.

Durability and crash safety (the fault-injection hardening):

* the connection runs in explicit-transaction mode
  (``isolation_level=None`` + ``BEGIN IMMEDIATE``/``COMMIT``), so every
  mutation actually commits -- the default driver mode never commits
  reads-before-writes sessions, which silently discarded file-backed
  state on close;
* a ``repro_catalog`` manifest table maps stream GUIDs and view paths
  to their physical tables.  The manifest row lands **in the same
  transaction** as the table it describes, so a crash mid-CTAS (the
  ``backend.materialize.mid`` injection point, or a real process kill)
  leaves *neither* the table nor the manifest row -- a view is either
  fully committed or invisible, on restart included;
* on open, the manifest is replayed into the in-memory lookup maps and
  any orphan physical table (one with no manifest row -- impossible
  under the transactional protocol, possible for pre-upgrade files)
  is dropped;
* ``sqlite3.OperationalError`` (locked/busy/full -- the transient
  classes) surfaces as :class:`~repro.common.errors.
  TransientBackendError` so the engine's bounded retry loop absorbs it.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.base import BackendCapabilities, ExecutionBackend
from repro.backends.sqlite.compile import (
    CompiledQuery,
    PlanCompiler,
    TableInfo,
    classes_from_schema,
    physical_name,
    quote_ident,
)
from repro.common.errors import (
    ExecutionError,
    StorageError,
    TransientBackendError,
)
from repro.common.sync import RANK_STORAGE, TrackedLock
from repro.executor.executor import (
    ExecutionResult,
    OperatorStats,
    SpoolOutput,
)
from repro.faults import points as fault_points
from repro.plan.expressions import SCALAR_FUNCTIONS, Row, _like_match
from repro.plan.logical import (
    Join,
    LogicalPlan,
    Process,
    Scan,
    Spool,
    Union,
    ViewScan,
    contains_operator,
)

#: The durable GUID/view-path -> physical-table manifest.
MANIFEST_TABLE = "repro_catalog"


def _py_mod(left, right):
    """``%`` with Python's sign convention; None/zero -> None."""
    if left is None or right is None or right == 0:
        return None
    return left % right


def _py_like(value, pattern, negated):
    if value is None:
        return 0
    matched = _like_match(str(value), pattern)
    return int((not matched) if negated else matched)


class SqliteBackend(ExecutionBackend):
    """Plans compile to SQL; views are real tables."""

    name = "sqlite"
    capabilities = BackendCapabilities(
        supports_udos=False,
        supports_row_capture=False,
        deterministic_limit=False,
        external=True,
    )

    def __init__(self, path: Optional[str] = None):
        # isolation_level=None puts the driver in autocommit mode and
        # hands transaction control to us: every mutation runs inside an
        # explicit BEGIN IMMEDIATE .. COMMIT (see _txn_*), which is what
        # makes view materialization commit-or-abort.
        self._conn = sqlite3.connect(path or ":memory:",
                                     check_same_thread=False,
                                     isolation_level=None)
        self._mutex = TrackedLock("storage.sqlite", RANK_STORAGE)
        self._tables: Dict[str, TableInfo] = {}
        self._views: Dict[str, TableInfo] = {}
        self._compiler = PlanCompiler(self._tables, self._views)
        self._register_functions()
        self._conn.execute(
            f"CREATE TABLE IF NOT EXISTS {MANIFEST_TABLE} ("
            "kind TEXT NOT NULL, key TEXT NOT NULL, "
            "tbl TEXT NOT NULL, columns TEXT NOT NULL, "
            "classes TEXT NOT NULL, PRIMARY KEY (kind, key))")
        self._recover()

    def _register_functions(self) -> None:
        # Scalar functions run the interpreter's own callables so the
        # two backends cannot drift (ROUND's banker's rounding, unicode
        # case mapping, ...).  COALESCE/IFNULL lower natively instead.
        for fname, fn in SCALAR_FUNCTIONS.items():
            if fname in ("COALESCE", "IFNULL"):
                continue
            self._conn.create_function(
                f"py_{fname.lower()}", -1, fn, deterministic=True)
        self._conn.create_function("py_mod", 2, _py_mod, deterministic=True)
        self._conn.create_function("py_like", 3, _py_like, deterministic=True)

    # ------------------------------------------------------------------ #
    # crash recovery

    def _recover(self) -> None:
        """Replay the manifest into the lookup maps; drop orphans.

        A reopened file-backed database re-registers every committed
        stream and view; anything half-written by a crash was never
        committed (SQLite's own journal rolled it back), so the manifest
        is the single source of truth for what exists.
        """
        known = set()
        for kind, key, tbl, columns, classes in self._conn.execute(
                f"SELECT kind, key, tbl, columns, classes "
                f"FROM {MANIFEST_TABLE}"):
            info = TableInfo(table=tbl,
                             columns=tuple(json.loads(columns)),
                             classes=json.loads(classes))
            (self._tables if kind == "t" else self._views)[key] = info
            known.add(tbl)
        # Orphan physical tables (no manifest row) cannot arise from the
        # transactional write protocol; clean them up anyway so files
        # written by older versions converge to a consistent state.
        orphans = [name for (name,) in self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND (name LIKE 't\\_%' ESCAPE '\\' "
            "     OR name LIKE 'v\\_%' ESCAPE '\\')")
            if name not in known]
        for name in orphans:
            self._conn.execute(f"DROP TABLE IF EXISTS {quote_ident(name)}")

    # ------------------------------------------------------------------ #
    # transactions

    def _txn_begin(self) -> None:
        try:
            self._conn.execute("BEGIN IMMEDIATE")
        except sqlite3.OperationalError as error:
            raise TransientBackendError(
                f"could not start transaction: {error}") from error

    def _txn_commit(self) -> None:
        self._conn.execute("COMMIT")

    def _txn_rollback(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.OperationalError:  # pragma: no cover - no open txn
            pass

    def _manifest_put(self, kind: str, key: str, info: TableInfo) -> None:
        self._conn.execute(
            f"INSERT OR REPLACE INTO {MANIFEST_TABLE} VALUES (?,?,?,?,?)",
            (kind, key, info.table, json.dumps(list(info.columns)),
             json.dumps(dict(info.classes))))

    def _manifest_delete(self, kind: str, key: str) -> None:
        self._conn.execute(
            f"DELETE FROM {MANIFEST_TABLE} WHERE kind = ? AND key = ?",
            (kind, key))

    # ------------------------------------------------------------------ #
    # datasets

    def load_table(self, schema, guid: str, rows: Sequence[Row]) -> None:
        info = TableInfo(
            table=physical_name("t", guid),
            columns=tuple(schema.column_names),
            classes=classes_from_schema(schema),
        )
        with self._mutex:
            self._txn_begin()
            try:
                self._create_and_fill(info, [
                    tuple(row.get(c) for c in info.columns)
                    for row in rows])
                self._manifest_put("t", guid, info)
                self._txn_commit()
            except BaseException:
                self._txn_rollback()
                raise
            self._tables[guid] = info

    def scan_table(self, guid: str) -> List[Row]:
        with self._mutex:
            info = self._tables.get(guid)
            if info is None:
                raise StorageError(f"no data stored under key {guid!r}")
            return self._fetch_table(info)

    def drop_table(self, guid: str) -> None:
        with self._mutex:
            info = self._tables.pop(guid, None)
            if info is not None:
                self._txn_begin()
                try:
                    self._conn.execute(
                        f"DROP TABLE IF EXISTS {quote_ident(info.table)}")
                    self._manifest_delete("t", guid)
                    self._txn_commit()
                except BaseException:
                    self._txn_rollback()
                    raise

    # ------------------------------------------------------------------ #
    # execution

    def execute(self, plan: LogicalPlan) -> ExecutionResult:
        if contains_operator(plan, Process):
            raise ExecutionError(
                "the SQLite backend cannot execute Process (UDO) "
                "operators; run this job on the in-memory backend")
        faults = self.faults
        if faults.enabled:
            faults.fire(fault_points.BACKEND_EXECUTE)
            for node in plan.walk():
                if isinstance(node, ViewScan):
                    faults.fire(fault_points.BACKEND_SCAN_VIEW)
        with self._mutex:
            result = ExecutionResult(rows=[], node_stats=[])
            try:
                # Materialize every Spool bottom-up first: the consuming
                # query then reads the spool table (compute-once, two
                # consumers), and nested spools resolve inner-first.
                for node in _post_order(plan):
                    if isinstance(node, Spool):
                        self._materialize_spool(node, result)
                compiled = self._compiler.compile(plan)
                result.rows = self._fetch(compiled)
                for node in _post_order(plan):
                    if isinstance(node, ViewScan):
                        result.views_read.append(node.signature)
                stats_cache: Dict[str, Tuple[int, int]] = {}
                self._stats_walk(plan, result, stats_cache)
            except sqlite3.OperationalError as error:
                raise TransientBackendError(
                    f"sqlite execution failed: {error}") from error
            return result

    def _materialize_spool(self, node: Spool, result: ExecutionResult) -> None:
        self.faults.fire(fault_points.BACKEND_MATERIALIZE)
        child = self._compiler.compile(node.child)
        info = TableInfo(
            table=physical_name("v", node.view_path),
            columns=child.columns,
            classes=dict(child.classes),
        )
        # Commit-or-abort: DROP + CTAS + manifest row are one
        # transaction, so a crash at any point (including the injected
        # mid-CTAS kill below) leaves no partially visible view.
        self._txn_begin()
        try:
            self._conn.execute(
                f"DROP TABLE IF EXISTS {quote_ident(info.table)}")
            self._conn.execute(
                f"CREATE TABLE {quote_ident(info.table)} AS {child.sql}")
            self.faults.fire(fault_points.BACKEND_MATERIALIZE_MID)
            self._manifest_put("v", node.view_path, info)
            self._txn_commit()
        except BaseException:
            self._txn_rollback()
            raise
        self._views[node.view_path] = info
        rows, size = self._measure(
            CompiledQuery(f"SELECT * FROM {quote_ident(info.table)}",
                          info.columns, info.classes), {})
        result.spooled.append(SpoolOutput(
            signature=node.signature,
            view_path=node.view_path,
            row_count=rows,
            size_bytes=size,
            schema=node.schema,
        ))

    def _stats_walk(self, node: LogicalPlan, result: ExecutionResult,
                    cache: Dict[str, Tuple[int, int]]) -> int:
        """Emit per-node OperatorStats post-order; returns rows_out."""
        child_rows = [self._stats_walk(c, result, cache)
                      for c in node.children()]
        compiled = self._compiler.compile(node)
        rows_out, bytes_out = self._measure(compiled, cache)
        if isinstance(node, (Scan, ViewScan)):
            rows_in = 0
        elif isinstance(node, (Join, Union)):
            rows_in = sum(child_rows)
        else:
            rows_in = child_rows[0] if child_rows else 0
        result.node_stats.append((node, OperatorStats(
            operator=node.op_label,
            rows_in=rows_in,
            rows_out=rows_out,
            bytes_out=bytes_out,
            description=node.describe(),
        )))
        return rows_out

    def _measure(self, compiled: CompiledQuery,
                 cache: Dict[str, Tuple[int, int]]) -> Tuple[int, int]:
        found = cache.get(compiled.sql)
        if found is None:
            cur = self._conn.execute(compiled.stats_sql())
            count, size = cur.fetchone()
            found = (int(count), int(size))
            cache[compiled.sql] = found
        return found

    # ------------------------------------------------------------------ #
    # materialized views

    def materialize_view(self, plan: LogicalPlan, view_id: str):
        if contains_operator(plan, Process):
            raise ExecutionError(
                "the SQLite backend cannot execute Process (UDO) "
                "operators; run this job on the in-memory backend")
        self.faults.fire(fault_points.BACKEND_MATERIALIZE)
        with self._mutex:
            compiled = self._compiler.compile(plan)
            info = TableInfo(
                table=physical_name("v", view_id),
                columns=compiled.columns,
                classes=dict(compiled.classes),
            )
            self._txn_begin()
            try:
                self._conn.execute(
                    f"DROP TABLE IF EXISTS {quote_ident(info.table)}")
                self._conn.execute(
                    f"CREATE TABLE {quote_ident(info.table)} "
                    f"AS {compiled.sql}")
                self.faults.fire(fault_points.BACKEND_MATERIALIZE_MID)
                self._manifest_put("v", view_id, info)
                self._txn_commit()
            except sqlite3.OperationalError as error:
                self._txn_rollback()
                raise TransientBackendError(
                    f"sqlite materialization failed: {error}") from error
            except BaseException:
                self._txn_rollback()
                raise
            self._views[view_id] = info
            return self._measure(
                CompiledQuery(f"SELECT * FROM {quote_ident(info.table)}",
                              info.columns, info.classes), {})

    def scan_view(self, view_id: str) -> List[Row]:
        self.faults.fire(fault_points.BACKEND_SCAN_VIEW)
        with self._mutex:
            info = self._views.get(view_id)
            if info is None:
                raise StorageError(f"no data stored under key {view_id!r}")
            return self._fetch_table(info)

    def drop_view(self, view_id: str) -> None:
        self.faults.fire(fault_points.BACKEND_DROP_VIEW)
        with self._mutex:
            info = self._views.pop(view_id, None)
            if info is not None:
                self._txn_begin()
                try:
                    self._conn.execute(
                        f"DROP TABLE IF EXISTS {quote_ident(info.table)}")
                    self._manifest_delete("v", view_id)
                    self._txn_commit()
                except BaseException:
                    self._txn_rollback()
                    raise

    def has_view(self, view_id: str) -> bool:
        """True while a view's backing table exists (used by tests)."""
        with self._mutex:
            return view_id in self._views

    # ------------------------------------------------------------------ #
    # helpers

    def close(self) -> None:
        self._conn.close()

    def _create_and_fill(self, info: TableInfo, tuples) -> None:
        table = quote_ident(info.table)
        self._conn.execute(f"DROP TABLE IF EXISTS {table}")
        # Typeless columns: no affinity, values stored exactly as bound.
        columns = ", ".join(quote_ident(c) for c in info.columns)
        self._conn.execute(f"CREATE TABLE {table} ({columns})")
        if tuples:
            marks = ", ".join("?" for _ in info.columns)
            self._conn.executemany(
                f"INSERT INTO {table} VALUES ({marks})", tuples)

    def _fetch_table(self, info: TableInfo) -> List[Row]:
        select = ", ".join(quote_ident(c) for c in info.columns)
        return self._fetch(CompiledQuery(
            f"SELECT {select} FROM {quote_ident(info.table)}",
            info.columns, info.classes))

    def _fetch(self, compiled: CompiledQuery) -> List[Row]:
        bool_cols = set(compiled.bool_columns())
        out: List[Row] = []
        for values in self._conn.execute(compiled.sql):
            row = dict(zip(compiled.columns, values))
            for c in bool_cols:
                if row[c] is not None:
                    row[c] = bool(row[c])
            out.append(row)
        return out


def _post_order(plan: LogicalPlan):
    for child in plan.children():
        yield from _post_order(child)
    yield plan
