"""Logical plan -> SQLite SQL lowering.

The lowering is *semantics-preserving with respect to the in-memory
interpreter*, not merely SQL-correct: the differential harness asserts
byte-equal results between backends, so every place where SQLite's
semantics differ from the interpreter's Python semantics is compiled
around explicitly.

The load-bearing decisions, in one place:

* **Three-valued logic.**  Python comparisons return ``False`` when
  either side is ``None``; SQL returns ``NULL``.  Every comparison is
  wrapped ``COALESCE(l op r, 0)`` so it is two-valued, and ``AND`` /
  ``OR`` / ``NOT`` operate on *predicate-wrapped* (never-NULL) operands,
  matching ``bool(x)`` coercion in the interpreter.
* **Truthiness.**  Predicate positions coerce with Python truthiness,
  chosen by the operand's inferred class: booleans ``COALESCE(e, 0)``,
  strings ``length(e) > 0`` (empty string is falsy; SQL would call
  ``'' <> 0`` true), numbers ``e <> 0``, unknown a ``typeof`` dispatch.
* **Join keys match like hash keys.**  The interpreter joins on Python
  ``==`` over tuples, where ``None`` matches ``None``; equi-keys lower
  to the SQL ``IS`` operator, which is ``=`` with NULL-matches-NULL.
* **Arithmetic.**  ``/`` is Python true division -> ``CAST(l AS REAL)``
  (division by zero is NULL on both sides); ``%`` keeps Python's sign
  convention via the ``py_mod`` UDF; ``+`` on two string-class operands
  is concatenation (``||``).
* **Scalar functions run the same code.**  Every function in
  ``SCALAR_FUNCTIONS`` is registered on the connection as a ``py_*``
  UDF, so ``ROUND`` (banker's rounding), ``UPPER`` (unicode), ``YEAR``
  (string slicing) cannot drift.  Only ``COALESCE``/``IFNULL`` lower
  natively -- their SQL semantics are identical.
* **No type affinity.**  Tables are created with typeless columns, so
  values come back exactly as bound (no ``'5'`` -> ``5`` coercion);
  booleans round-trip as 0/1 and are re-coerced to ``bool`` on fetch
  using the compiler's static class inference.
* **Byte accounting.**  Per-operator output bytes use the same width
  rule as :func:`repro.storage.store._estimate_bytes` (string = length,
  boolean = 1, everything else = 8), evaluated in SQL -- which is what
  keeps per-node statistics and the view-catalog digest backend-
  invariant.

Known, accepted divergences (all order- or mixed-type-related, none
reachable from the bundled workloads): tie order under ``Limit`` with
no covering ``Sort``, relative order of booleans vs. numbers in one
sort column, and byte widths for union arms whose column classes
disagree.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.common.errors import ExecutionError, StorageError
from repro.plan.expressions import (
    AGGREGATE_FUNCTIONS,
    SCALAR_FUNCTIONS,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    UnaryOp,
)
from repro.plan.logical import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    LogicalPlan,
    Process,
    Project,
    Scan,
    Sort,
    Spool,
    Union,
    ViewScan,
)

# Static column classes used for truthiness, concatenation, boolean
# round-tripping, and byte widths.
BOOL = "bool"
NUM = "num"
STR = "str"
UNKNOWN = "unknown"

_DTYPE_CLASS = {"bool": BOOL, "int": NUM, "float": NUM,
                "str": STR, "date": STR}

#: Inferred result class for registered scalar functions.
_FUNC_CLASS = {"UPPER": STR, "LOWER": STR, "SUBSTR": STR,
               "LEN": NUM, "ABS": NUM, "ROUND": NUM, "FLOOR": NUM,
               "YEAR": NUM, "MONTH": NUM}


def quote_ident(name: str) -> str:
    """Double-quote an identifier, escaping embedded quotes."""
    return '"' + name.replace('"', '""') + '"'


def quote_literal(value: object) -> str:
    """Render a Python constant as a SQLite literal, exactly.

    Floats use ``repr`` (shortest round-tripping form); infinities use
    the out-of-range literal ``9e999``; NaN becomes NULL (SQLite has no
    NaN -- and NaN compares false to everything in Python too).
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        if value != value:
            return "NULL"
        if value == float("inf"):
            return "9e999"
        if value == float("-inf"):
            return "-9e999"
        return repr(value)
    if isinstance(value, int):
        return str(value)
    raise ExecutionError(f"cannot lower literal {value!r} to SQL")


def physical_name(prefix: str, key: str) -> str:
    """Deterministic SQL table name for a GUID or view path."""
    slug = re.sub(r"[^A-Za-z0-9_]+", "_", key).strip("_")[:40]
    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:10]
    return f"{prefix}_{slug}_{digest}" if slug else f"{prefix}_{digest}"


@dataclass(frozen=True)
class TableInfo:
    """One physical SQLite table backing a stream or a view."""

    table: str
    columns: Tuple[str, ...]
    classes: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CompiledQuery:
    """A lowered plan: SQL text plus output shape."""

    sql: str
    columns: Tuple[str, ...]
    classes: Mapping[str, str]

    def bool_columns(self) -> Tuple[str, ...]:
        """Columns to coerce back to Python ``bool`` on fetch."""
        return tuple(c for c in self.columns
                     if self.classes.get(c) == BOOL)

    def width_sql(self) -> str:
        """Per-row byte width, per ``_estimate_bytes``'s rule."""
        terms = []
        for c in self.columns:
            q = quote_ident(c)
            if self.classes.get(c) == BOOL:
                terms.append(
                    f"(CASE WHEN {q} IS NULL THEN 8 ELSE 1 END)")
            else:
                terms.append(
                    f"(CASE WHEN typeof({q}) = 'text'"
                    f" THEN MAX(1, LENGTH({q})) ELSE 8 END)")
        return " + ".join(terms) if terms else "0"

    def stats_sql(self) -> str:
        """``(row_count, byte_size)`` of this query's output."""
        return (f"SELECT COUNT(*), COALESCE(SUM({self.width_sql()}), 0) "
                f"FROM ({self.sql})")


class _Scope:
    """Column environment for expression lowering under one operator."""

    def __init__(self, refs: Dict[str, str], classes: Mapping[str, str]):
        self.refs = refs          # column name -> SQL reference
        self.classes = classes    # column name -> static class

    @classmethod
    def plain(cls, columns, classes) -> "_Scope":
        return cls({c: quote_ident(c) for c in columns}, classes)

    def resolve(self, ref: ColumnRef) -> str:
        """Mirror ``ColumnRef.evaluate``: key, bare name, suffix match."""
        if ref.key in self.refs:
            return ref.key
        if ref.name in self.refs:
            return ref.name
        suffix = "." + ref.name
        matches = [c for c in self.refs if c.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        raise ExecutionError(
            f"column {ref.key!r} not found in {sorted(self.refs)!r}")


@dataclass(frozen=True)
class _Lowered:
    """A lowered operator subtree."""

    sql: str
    columns: Tuple[str, ...]
    classes: Mapping[str, str]

    def scope(self) -> _Scope:
        return _Scope.plain(self.columns, self.classes)

    def select_list(self) -> str:
        return ", ".join(quote_ident(c) for c in self.columns)

    def query(self) -> CompiledQuery:
        return CompiledQuery(self.sql, self.columns, self.classes)


def _dedup(pairs: List[Tuple[str, str, str]]):
    """Dict-like dedup of ``(name, sql, class)`` select items.

    Matches row-dict construction in the interpreter: the *first*
    occurrence fixes the position, the *last* fixes the value.
    """
    order: List[str] = []
    sql: Dict[str, str] = {}
    classes: Dict[str, str] = {}
    for name, expr_sql, cls in pairs:
        if name not in sql:
            order.append(name)
        sql[name] = expr_sql
        classes[name] = cls
    return order, sql, classes


class PlanCompiler:
    """Compiles logical plans to SQLite SQL over registered tables.

    ``tables`` maps stream GUIDs and ``views`` maps view paths to their
    physical :class:`TableInfo`.  Both mappings are read live, so a
    Spool registered mid-execution is visible to later lowerings.
    """

    def __init__(self, tables: Mapping[str, TableInfo],
                 views: Mapping[str, TableInfo]):
        self.tables = tables
        self.views = views

    # ------------------------------------------------------------------ #
    # operators

    def compile(self, plan: LogicalPlan) -> CompiledQuery:
        return self.lower(plan).query()

    def lower(self, plan: LogicalPlan) -> _Lowered:
        handler = _OP_HANDLERS.get(type(plan))
        if handler is None:
            raise ExecutionError(
                f"no SQL lowering for operator {type(plan).__name__}")
        return handler(self, plan)

    def _scan(self, plan: Scan) -> _Lowered:
        if plan.stream_guid is None:
            raise ExecutionError(
                f"scan of {plan.dataset!r} was not bound to a stream GUID")
        info = self.tables.get(plan.stream_guid)
        if info is None:
            raise StorageError(
                f"no data stored under key {plan.stream_guid!r}")
        pairs = []
        for c in plan.columns:
            if c in info.columns:
                pairs.append((c, quote_ident(c), info.classes.get(c, UNKNOWN)))
            else:
                # The interpreter projects missing columns to None.
                pairs.append((c, "NULL", UNKNOWN))
        order, sql, classes = _dedup(pairs)
        select = ", ".join(f"{sql[c]} AS {quote_ident(c)}" for c in order)
        return _Lowered(f"SELECT {select} FROM {quote_ident(info.table)}",
                        tuple(order), classes)

    def _view_scan(self, plan: ViewScan) -> _Lowered:
        info = self.views.get(plan.view_path)
        if info is None:
            raise StorageError(
                f"no data stored under key {plan.view_path!r}")
        # The interpreter returns the stored rows verbatim, so select the
        # stored schema (which view matching guarantees equals
        # ``plan.columns``).
        select = ", ".join(quote_ident(c) for c in info.columns)
        return _Lowered(f"SELECT {select} FROM {quote_ident(info.table)}",
                        info.columns, dict(info.classes))

    def _spool(self, plan: Spool) -> _Lowered:
        info = self.views.get(plan.view_path)
        if info is None:
            # The backend materializes every Spool (post-order) before
            # lowering consumers, so this indicates a harness bug.
            raise ExecutionError(
                f"spool table for {plan.view_path!r} was not materialized")
        select = ", ".join(quote_ident(c) for c in info.columns)
        return _Lowered(f"SELECT {select} FROM {quote_ident(info.table)}",
                        info.columns, dict(info.classes))

    def _filter(self, plan: Filter) -> _Lowered:
        child = self.lower(plan.child)
        pred = self._pred(plan.predicate, child.scope())
        return _Lowered(
            f"SELECT {child.select_list()} FROM ({child.sql}) WHERE {pred}",
            child.columns, child.classes)

    def _project(self, plan: Project) -> _Lowered:
        child = self.lower(plan.child)
        scope = child.scope()
        pairs = []
        for expr, name in zip(plan.exprs, plan.names):
            sql, cls = self._value(expr, scope)
            pairs.append((name, sql, cls))
        order, sql, classes = _dedup(pairs)
        select = ", ".join(f"{sql[c]} AS {quote_ident(c)}" for c in order)
        return _Lowered(f"SELECT {select} FROM ({child.sql})",
                        tuple(order), classes)

    def _join(self, plan: Join) -> _Lowered:
        left = self.lower(plan.left)
        right = self.lower(plan.right)
        dropped = set(plan.drop_right)
        right_kept = [c for c in right.columns if c not in dropped]

        left_scope = _Scope(
            {c: f"L.{quote_ident(c)}" for c in left.columns}, left.classes)
        right_scope = _Scope(
            {c: f"R.{quote_ident(c)}" for c in right.columns}, right.classes)
        # Merged-row scope: right-kept columns overwrite left ones,
        # mirroring the interpreter's row merge.
        merged_refs = dict(left_scope.refs)
        merged_classes = dict(left.classes)
        for c in right_kept:
            merged_refs[c] = f"R.{quote_ident(c)}"
            merged_classes[c] = right.classes.get(c, UNKNOWN)
        merged_scope = _Scope(merged_refs, merged_classes)

        conds = []
        for lk, rk in zip(plan.left_keys, plan.right_keys):
            lsql, _ = self._value(lk, left_scope)
            rsql, _ = self._value(rk, right_scope)
            # IS, not =: the interpreter matches hash keys with Python
            # ``==`` over tuples, where None pairs with None.
            conds.append(f"({lsql} IS {rsql})")
        if plan.residual is not None:
            conds.append(self._pred(plan.residual, merged_scope))
        on = " AND ".join(conds) if conds else "1"

        pairs = [(c, merged_refs[c], merged_classes.get(c, UNKNOWN))
                 for c in tuple(left.columns) + tuple(right_kept)]
        order, sql, classes = _dedup(pairs)
        select = ", ".join(f"{sql[c]} AS {quote_ident(c)}" for c in order)
        join_kw = "LEFT JOIN" if plan.how == "left" else "JOIN"
        return _Lowered(
            f"SELECT {select} FROM ({left.sql}) AS L "
            f"{join_kw} ({right.sql}) AS R ON {on}",
            tuple(order), classes)

    def _group_by(self, plan: GroupBy) -> _Lowered:
        child = self.lower(plan.child)
        scope = child.scope()
        pairs = []
        group_refs = []
        for key in plan.keys:
            name = scope.resolve(key)
            ref = scope.refs[name]
            group_refs.append(ref)
            # The interpreter names key outputs after the ColumnRef, not
            # the GroupBy names list.
            pairs.append((key.name, ref, scope.classes.get(name, UNKNOWN)))
        agg_names = plan.names[len(plan.keys):]
        for name, agg in zip(agg_names, plan.aggregates):
            sql, cls = self._aggregate(agg, scope)
            pairs.append((name, sql, cls))
        order, sql, classes = _dedup(pairs)
        select = ", ".join(f"{sql[c]} AS {quote_ident(c)}" for c in order)
        group = f" GROUP BY {', '.join(group_refs)}" if group_refs else ""
        return _Lowered(f"SELECT {select} FROM ({child.sql}){group}",
                        tuple(order), classes)

    def _union(self, plan: Union) -> _Lowered:
        schema = plan.schema
        arms = []
        arm_classes: List[Mapping[str, str]] = []
        for child in plan.inputs:
            lowered = self.lower(child)
            pairs = [(s, quote_ident(c), lowered.classes.get(c, UNKNOWN))
                     for s, c in zip(schema, lowered.columns)]
            order, sql, classes = _dedup(pairs)
            select = ", ".join(
                f"{sql[c]} AS {quote_ident(c)}" for c in order)
            arms.append(f"SELECT {select} FROM ({lowered.sql})")
            arm_classes.append(classes)
        out_order = list(dict.fromkeys(schema))
        classes = {}
        for c in out_order:
            kinds = {ac.get(c, UNKNOWN) for ac in arm_classes}
            classes[c] = kinds.pop() if len(kinds) == 1 else UNKNOWN
        # The interpreter ignores the DISTINCT flag on Union, so the
        # lowering is always UNION ALL.
        return _Lowered(" UNION ALL ".join(arms), tuple(out_order), classes)

    def _distinct(self, plan: Distinct) -> _Lowered:
        child = self.lower(plan.child)
        return _Lowered(
            f"SELECT DISTINCT {child.select_list()} FROM ({child.sql})",
            child.columns, child.classes)

    def _sort(self, plan: Sort) -> _Lowered:
        child = self.lower(plan.child)
        scope = child.scope()
        keys = []
        for key, asc in zip(plan.keys, plan.ascending):
            ref = scope.refs[scope.resolve(key)]
            keys.append(f"{ref} {'ASC' if asc else 'DESC'}")
        return _Lowered(
            f"SELECT {child.select_list()} FROM ({child.sql}) "
            f"ORDER BY {', '.join(keys)}",
            child.columns, child.classes)

    def _limit(self, plan: Limit) -> _Lowered:
        # Inline Limit(Sort(x)) so the LIMIT applies to the ordered
        # stream; a bare subquery's order is not guaranteed to survive.
        if isinstance(plan.child, Sort):
            child = self._sort(plan.child)
            return _Lowered(f"{child.sql} LIMIT {plan.count}",
                            child.columns, child.classes)
        child = self.lower(plan.child)
        return _Lowered(
            f"SELECT {child.select_list()} FROM ({child.sql}) "
            f"LIMIT {plan.count}",
            child.columns, child.classes)

    def _process(self, plan: Process) -> _Lowered:
        raise ExecutionError(
            f"the SQLite backend cannot execute Process (UDO "
            f"{plan.udo_name!r}); run this job on the in-memory backend")

    # ------------------------------------------------------------------ #
    # expressions

    def _value(self, expr: Expr, scope: _Scope) -> Tuple[str, str]:
        """Lower an expression in value position -> ``(sql, class)``."""
        if isinstance(expr, ColumnRef):
            name = scope.resolve(expr)
            return scope.refs[name], scope.classes.get(name, UNKNOWN)
        if isinstance(expr, Literal):
            return quote_literal(expr.value), _literal_class(expr.value)
        if isinstance(expr, BinaryOp):
            return self._binary(expr, scope)
        if isinstance(expr, UnaryOp):
            return self._unary(expr, scope)
        if isinstance(expr, FuncCall):
            return self._func(expr, scope)
        if isinstance(expr, InList):
            return self._in_list(expr, scope)
        if isinstance(expr, Like):
            negated = "1" if expr.negated else "0"
            operand, _ = self._value(expr.operand, scope)
            pattern = quote_literal(expr.pattern)
            return f"py_like({operand}, {pattern}, {negated})", BOOL
        if isinstance(expr, CaseWhen):
            return self._case(expr, scope)
        raise ExecutionError(
            f"cannot lower expression {type(expr).__name__} to SQL")

    def _pred(self, expr: Expr, scope: _Scope) -> str:
        """Lower in predicate position: Python truthiness, never NULL."""
        sql, cls = self._value(expr, scope)
        if cls == BOOL:
            return f"COALESCE({sql}, 0)"
        if cls == STR:
            return f"(COALESCE(LENGTH({sql}), 0) > 0)"
        if cls == NUM:
            return f"(COALESCE({sql}, 0) <> 0)"
        return (f"(CASE WHEN {sql} IS NULL THEN 0"
                f" WHEN typeof({sql}) = 'text' THEN LENGTH({sql}) > 0"
                f" ELSE {sql} <> 0 END)")

    def _binary(self, expr: BinaryOp, scope: _Scope) -> Tuple[str, str]:
        op = expr.op
        if op in ("AND", "OR"):
            left = self._pred(expr.left, scope)
            right = self._pred(expr.right, scope)
            return f"({left} {op} {right})", BOOL
        left, lcls = self._value(expr.left, scope)
        right, rcls = self._value(expr.right, scope)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            # Python comparisons are False when either side is None.
            return f"COALESCE({left} {op} {right}, 0)", BOOL
        if op == "+":
            if lcls == STR and rcls == STR:
                return f"({left} || {right})", STR
            return f"({left} + {right})", NUM
        if op in ("-", "*"):
            return f"({left} {op} {right})", NUM
        if op == "/":
            # Python true division: always real, /0 -> None (SQL NULL).
            return f"(CAST({left} AS REAL) / {right})", NUM
        if op == "%":
            # Python's sign convention, None/zero-safe.
            return f"py_mod({left}, {right})", NUM
        raise ExecutionError(f"unknown binary operator {op!r}")

    def _unary(self, expr: UnaryOp, scope: _Scope) -> Tuple[str, str]:
        if expr.op == "NOT":
            return f"(NOT {self._pred(expr.operand, scope)})", BOOL
        operand, _ = self._value(expr.operand, scope)
        if expr.op == "-":
            return f"(-{operand})", NUM
        if expr.op == "ISNULL":
            return f"({operand} IS NULL)", BOOL
        if expr.op == "ISNOTNULL":
            return f"({operand} IS NOT NULL)", BOOL
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _func(self, expr: FuncCall, scope: _Scope) -> Tuple[str, str]:
        if expr.name in AGGREGATE_FUNCTIONS:
            raise ExecutionError(
                f"aggregate {expr.name} must be evaluated by a GroupBy "
                f"operator")
        if expr.name not in SCALAR_FUNCTIONS:
            raise ExecutionError(f"unknown scalar function {expr.name!r}")
        args = [self._value(a, scope) for a in expr.args]
        arg_sql = ", ".join(sql for sql, _ in args)
        if expr.name in ("COALESCE", "IFNULL"):
            cls = next((cls for _, cls in args if cls != UNKNOWN), UNKNOWN)
            if len(args) == 0:
                return "NULL", UNKNOWN
            if len(args) == 1:
                return args[0][0], cls
            fn = "COALESCE" if expr.name == "COALESCE" else "IFNULL"
            return f"{fn}({arg_sql})", cls
        # Everything else runs the *same Python callable* as the
        # interpreter, registered as a deterministic UDF.
        cls = _FUNC_CLASS.get(expr.name, UNKNOWN)
        return f"py_{expr.name.lower()}({arg_sql})", cls

    def _aggregate(self, agg: FuncCall, scope: _Scope) -> Tuple[str, str]:
        name = agg.name
        if name not in AGGREGATE_FUNCTIONS:
            raise ExecutionError(f"unknown aggregate {name!r}")
        if name == "COUNT" and not agg.args:
            # The interpreter counts all rows before the DISTINCT check.
            return "COUNT(*)", NUM
        if not agg.args:
            raise ExecutionError(f"aggregate {name} requires an argument")
        arg_sql, arg_cls = self._value(agg.args[0], scope)
        prefix = "DISTINCT " if agg.distinct else ""
        cls = arg_cls if name in ("MIN", "MAX") else NUM
        return f"{name}({prefix}{arg_sql})", cls

    def _in_list(self, expr: InList, scope: _Scope) -> Tuple[str, str]:
        operand, _ = self._value(expr.operand, scope)
        # NULL literals can never match (Python: value == None is False
        # for non-None value; a None operand short-circuits to False).
        values = [quote_literal(v.value) for v in expr.values
                  if v.value is not None]
        found, missed = ("0", "1") if expr.negated else ("1", "0")
        if values:
            sql = (f"(CASE WHEN {operand} IS NULL THEN 0"
                   f" WHEN {operand} IN ({', '.join(values)}) THEN {found}"
                   f" ELSE {missed} END)")
        else:
            sql = (f"(CASE WHEN {operand} IS NULL THEN 0"
                   f" ELSE {missed} END)")
        return sql, BOOL

    def _case(self, expr: CaseWhen, scope: _Scope) -> Tuple[str, str]:
        parts = ["CASE"]
        classes = []
        for cond, result in zip(expr.conditions, expr.results):
            pred = self._pred(cond, scope)
            value, cls = self._value(result, scope)
            classes.append(cls)
            parts.append(f"WHEN {pred} THEN {value}")
        if expr.default is not None:
            value, cls = self._value(expr.default, scope)
            classes.append(cls)
            parts.append(f"ELSE {value}")
        parts.append("END")
        cls = next((c for c in classes if c != UNKNOWN), UNKNOWN)
        return f"({' '.join(parts)})", cls


def _literal_class(value: object) -> str:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, str):
        return STR
    if isinstance(value, (int, float)):
        return NUM
    return UNKNOWN


def classes_from_schema(schema) -> Dict[str, str]:
    """Column classes from a catalog :class:`TableSchema`'s dtypes."""
    return {col.name: _DTYPE_CLASS.get(col.dtype, UNKNOWN)
            for col in schema.columns}


_OP_HANDLERS = {
    Scan: PlanCompiler._scan,
    ViewScan: PlanCompiler._view_scan,
    Spool: PlanCompiler._spool,
    Filter: PlanCompiler._filter,
    Project: PlanCompiler._project,
    Join: PlanCompiler._join,
    GroupBy: PlanCompiler._group_by,
    Union: PlanCompiler._union,
    Distinct: PlanCompiler._distinct,
    Sort: PlanCompiler._sort,
    Limit: PlanCompiler._limit,
    Process: PlanCompiler._process,
}
