"""SQLite execution backend: plan -> SQL lowering plus the backend.

:mod:`repro.backends.sqlite.compile` lowers optimized logical plans
(including matched ``ViewScan`` and inserted ``Spool`` operators) to
SQLite SQL; :mod:`repro.backends.sqlite.backend` owns the connection,
loads datasets as real tables, materializes views with ``CREATE TABLE
AS``, and reports the same per-operator statistics the in-memory
interpreter would.
"""

from repro.backends.sqlite.backend import SqliteBackend
from repro.backends.sqlite.compile import CompiledQuery, PlanCompiler, TableInfo

__all__ = ["CompiledQuery", "PlanCompiler", "SqliteBackend", "TableInfo"]
