"""Execution backends: pluggable storage + execution under the engine.

Public surface::

    from repro.backends import (
        BackendCapabilities, ExecutionBackend, InMemoryBackend,
        SqliteBackend, backend_names, create_backend, register_backend,
    )

See :mod:`repro.backends.base` for the interface contract.
"""

from repro.backends.base import (
    BackendCapabilities,
    ExecutionBackend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.backends.memory import InMemoryBackend
from repro.backends.sqlite.backend import SqliteBackend

__all__ = [
    "BackendCapabilities",
    "ExecutionBackend",
    "InMemoryBackend",
    "SqliteBackend",
    "backend_names",
    "create_backend",
    "register_backend",
]
