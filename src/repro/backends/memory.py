"""The in-memory execution backend.

Wraps the row-at-a-time interpreter (:class:`~repro.executor.executor.
Executor`) and the simulated blob store (:class:`~repro.storage.store.
DataStore`) behind the :class:`~repro.backends.base.ExecutionBackend`
interface.  This is the original simulator engine, unchanged in
behaviour -- streams and views are Python row lists keyed by GUID/path,
and Spool materialization happens inside the interpreter itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.backends.base import BackendCapabilities, ExecutionBackend
from repro.executor.executor import ExecutionResult, Executor
from repro.executor.udo import UdoRegistry
from repro.plan.expressions import Row
from repro.plan.logical import LogicalPlan
from repro.storage.store import DataStore, _estimate_bytes


class InMemoryBackend(ExecutionBackend):
    """Simulated engine: Python rows in a :class:`DataStore`."""

    name = "memory"
    capabilities = BackendCapabilities(
        supports_udos=True,
        supports_row_capture=True,
        deterministic_limit=True,
        external=False,
    )

    def __init__(self, store: Optional[DataStore] = None,
                 udos: Optional[UdoRegistry] = None):
        self.store = store or DataStore()
        self.executor = Executor(self.store, udos)

    # ------------------------------------------------------------------ #
    # datasets

    def load_table(self, schema, guid: str, rows: Sequence[Row]) -> None:
        self.store.put(guid, list(rows))

    def scan_table(self, guid: str) -> List[Row]:
        return self.store.get(guid)

    def drop_table(self, guid: str) -> None:
        self.store.delete(guid)

    # ------------------------------------------------------------------ #
    # execution

    def execute(self, plan: LogicalPlan) -> ExecutionResult:
        return self.executor.execute(plan)

    # ------------------------------------------------------------------ #
    # materialized views

    def materialize_view(self, plan: LogicalPlan, view_id: str):
        rows = self.executor.execute(plan).rows
        size = _estimate_bytes(rows)
        self.store.put(view_id, rows, row_bytes=size)
        return len(rows), size

    def scan_view(self, view_id: str) -> List[Row]:
        return self.store.get(view_id)

    def drop_view(self, view_id: str) -> None:
        self.store.delete(view_id)
