"""The in-memory execution backend.

Wraps the row-at-a-time interpreter (:class:`~repro.executor.executor.
Executor`) and the simulated blob store (:class:`~repro.storage.store.
DataStore`) behind the :class:`~repro.backends.base.ExecutionBackend`
interface.  This is the original simulator engine, unchanged in
behaviour -- streams and views are Python row lists keyed by GUID/path,
and Spool materialization happens inside the interpreter itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.backends.base import BackendCapabilities, ExecutionBackend
from repro.executor.executor import ExecutionResult, Executor
from repro.executor.udo import UdoRegistry
from repro.faults import points as fault_points
from repro.plan.expressions import Row
from repro.plan.logical import LogicalPlan, Spool, ViewScan
from repro.storage.store import DataStore, _estimate_bytes


class InMemoryBackend(ExecutionBackend):
    """Simulated engine: Python rows in a :class:`DataStore`."""

    name = "memory"
    capabilities = BackendCapabilities(
        supports_udos=True,
        supports_row_capture=True,
        deterministic_limit=True,
        external=False,
    )

    def __init__(self, store: Optional[DataStore] = None,
                 udos: Optional[UdoRegistry] = None):
        self.store = store or DataStore()
        self.executor = Executor(self.store, udos)

    # ------------------------------------------------------------------ #
    # datasets

    def load_table(self, schema, guid: str, rows: Sequence[Row]) -> None:
        self.store.put(guid, list(rows))

    def scan_table(self, guid: str) -> List[Row]:
        return self.store.get(guid)

    def drop_table(self, guid: str) -> None:
        self.store.delete(guid)

    # ------------------------------------------------------------------ #
    # execution

    def execute(self, plan: LogicalPlan) -> ExecutionResult:
        faults = self.faults
        if faults.enabled:
            # The interpreter reads views straight out of the DataStore,
            # so the per-ViewScan and per-Spool seams fire here -- the
            # same points, in the same plan positions, as the SQLite
            # backend, keeping fault plans backend-portable.
            faults.fire(fault_points.BACKEND_EXECUTE)
            for node in plan.walk():
                if isinstance(node, ViewScan):
                    faults.fire(fault_points.BACKEND_SCAN_VIEW)
                elif isinstance(node, Spool):
                    faults.fire(fault_points.BACKEND_MATERIALIZE)
        return self.executor.execute(plan)

    # ------------------------------------------------------------------ #
    # materialized views

    def materialize_view(self, plan: LogicalPlan, view_id: str):
        self.faults.fire(fault_points.BACKEND_MATERIALIZE)
        rows = self.executor.execute(plan).rows
        self.faults.fire(fault_points.BACKEND_MATERIALIZE_MID)
        size = _estimate_bytes(rows)
        self.store.put(view_id, rows, row_bytes=size)
        return len(rows), size

    def scan_view(self, view_id: str) -> List[Row]:
        self.faults.fire(fault_points.BACKEND_SCAN_VIEW)
        return self.store.get(view_id)

    def drop_view(self, view_id: str) -> None:
        self.faults.fire(fault_points.BACKEND_DROP_VIEW)
        self.store.delete(view_id)
