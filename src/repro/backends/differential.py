"""Differential harness: backends must agree byte-for-byte.

Runs the same workload through every combination of execution backend
(in-memory interpreter vs. SQLite) and reuse setting (CloudViews on vs.
off), then asserts the backend interface's two contracts:

1. **Result invariance.**  Every job returns the same canonical rows in
   all four configurations -- reuse must never change answers, and the
   backend must never change answers.
2. **Decision invariance.**  With reuse on, both backends build and
   reuse the *same* views and end with the *same* catalog digest:
   signatures, matching, and selection all live above the backend
   interface, so observed statistics (row counts and byte sizes) must
   be identical for the whole loop to converge identically.

Row canonicalization intentionally identifies ``True`` with ``1`` and
``5.0`` with ``5`` (SQLite has no boolean storage class and freely
returns integral reals), and rounds floats to 9 significant digits
(aggregation order differs between backends, so the last few ulps of a
float sum may too).  Everything else -- NULLs, strings, ints -- must
match exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api import Session
from repro.core.controls import MultiLevelControls
from repro.plan.expressions import Row
from repro.selection.policies import SelectionPolicy
from repro.workload.generator import CookingWorkload, generate_workload
from repro.workload.tpcds import TPCDS_QUERIES, install_tpcds

BACKENDS = ("memory", "sqlite")
SECONDS_PER_DAY = 86400.0


def canonical_value(value: object) -> object:
    """Backend-neutral form of one cell value."""
    if isinstance(value, bool):
        value = int(value)
    if value is None:
        return None
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == 0.0:
            value = 0.0  # collapse -0.0
        return format(value, ".9g")
    if isinstance(value, int):
        return str(value)
    return value


def canonical_rows(rows: List[Row]) -> List[str]:
    """Order-independent canonical serialization of a result set."""
    return sorted(
        json.dumps({k: canonical_value(v) for k, v in row.items()},
                   sort_keys=True)
        for row in rows)


@dataclass
class RunTrace:
    """One workload pass on one (backend, reuse) configuration."""

    backend: str
    reuse: bool
    #: job key -> canonical result rows
    results: Dict[str, List[str]] = field(default_factory=dict)
    #: job key -> (views_built, views_reused)
    decisions: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    catalog_digest: str = ""
    views_created: int = 0
    views_reused: int = 0


@dataclass
class DifferentialReport:
    """Comparison of all four configurations of one workload."""

    workload: str
    jobs: int = 0
    traces: List[RunTrace] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        reused = max((t.views_reused for t in self.traces), default=0)
        return (f"[{status}] {self.workload}: {self.jobs} jobs x "
                f"{len(self.traces)} configs, {reused} views reused; "
                f"{len(self.mismatches)} mismatches")


def _compare(report: DifferentialReport) -> None:
    """Populate ``report.mismatches`` from its traces."""
    traces = report.traces
    if not traces:
        return
    reference = traces[0]
    for trace in traces[1:]:
        for key, rows in reference.results.items():
            theirs = trace.results.get(key)
            if theirs != rows:
                report.mismatches.append(
                    f"rows differ for job {key!r}: "
                    f"{reference.backend}/reuse={reference.reuse} vs "
                    f"{trace.backend}/reuse={trace.reuse}")
    # Reuse decisions and the catalog digest must agree across backends
    # *within* each reuse setting (reuse off trivially builds nothing).
    by_reuse: Dict[bool, List[RunTrace]] = {}
    for trace in traces:
        by_reuse.setdefault(trace.reuse, []).append(trace)
    for reuse, group in by_reuse.items():
        head = group[0]
        for trace in group[1:]:
            if trace.catalog_digest != head.catalog_digest:
                report.mismatches.append(
                    f"catalog digest differs (reuse={reuse}): "
                    f"{head.backend}={head.catalog_digest[:12]} vs "
                    f"{trace.backend}={trace.catalog_digest[:12]}")
            if (trace.views_created, trace.views_reused) != \
                    (head.views_created, head.views_reused):
                report.mismatches.append(
                    f"view counters differ (reuse={reuse}): "
                    f"{head.backend}=({head.views_created},"
                    f"{head.views_reused}) vs {trace.backend}="
                    f"({trace.views_created},{trace.views_reused})")
            if trace.decisions != head.decisions:
                report.mismatches.append(
                    f"per-job reuse decisions differ (reuse={reuse}) "
                    f"between {head.backend} and {trace.backend}")


def _session(backend: str, clusters: List[str]) -> Session:
    controls = MultiLevelControls()
    for vc in clusters:
        controls.enable_vc(vc)
    return Session(
        backend=backend,
        controls=controls,
        selection_algorithm="bigsubs",
        policy=SelectionPolicy(storage_budget_bytes=50_000_000,
                               min_reuses_per_epoch=0.0),
    )


# --------------------------------------------------------------------- #
# TPC-DS

def run_tpcds_differential(scale_rows: int = 400,
                           seed: int = 42) -> DifferentialReport:
    """Two rounds of the TPC-DS suite, selection between them."""
    report = DifferentialReport(workload="tpcds")
    for backend in BACKENDS:
        for reuse in (True, False):
            trace = RunTrace(backend=backend, reuse=reuse)
            with _session(backend, ["default"]) as session:
                install_tpcds(session.engine, scale_rows=scale_rows,
                              seed=seed)
                for round_no in (1, 2):
                    base = 1000.0 * round_no
                    for offset, (name, sql) in enumerate(TPCDS_QUERIES):
                        result = session.run(
                            sql, template_id=name,
                            reuse_override=reuse,
                            now=base + offset)
                        key = f"r{round_no}:{name}"
                        trace.results[key] = canonical_rows(result.rows)
                        trace.decisions[key] = (result.views_built,
                                                result.views_reused)
                    if round_no == 1 and reuse:
                        session.analyze_and_publish()
                trace.catalog_digest = session.catalog_digest()
                trace.views_created = session.views_created
                trace.views_reused = session.views_reused
            report.traces.append(trace)
    report.jobs = len(report.traces[0].results)
    _compare(report)
    return report


# --------------------------------------------------------------------- #
# cooking workload

def run_cooking_differential(days: int = 3, seed: int = 7,
                             workload: Optional[CookingWorkload] = None
                             ) -> DifferentialReport:
    """The generated cooking workload: daily bulk updates roll stream
    GUIDs (invalidating views), selection re-runs at each boundary."""
    report = DifferentialReport(workload="cooking")
    base = workload or generate_workload(
        name="diff", seed=seed, virtual_clusters=2, templates_per_vc=4,
        fact_rows_per_day=240, adhoc_per_day=2)
    for backend in BACKENDS:
        for reuse in (True, False):
            trace = RunTrace(backend=backend, reuse=reuse)
            with _session(backend, list(base.virtual_clusters)) as session:
                base.install(session.engine, at=0.0)
                for day in range(days):
                    if day > 0:
                        base.cook(session.engine, day)
                        session.evict_expired(now=day * SECONDS_PER_DAY)
                    for index, job in enumerate(base.jobs_for_day(day)):
                        result = session.run(
                            job.template.sql,
                            params=job.params,
                            virtual_cluster=job.virtual_cluster,
                            template_id=job.template.template_id,
                            pipeline_id=job.template.pipeline_id,
                            reuse_override=reuse,
                            now=job.submit_time)
                        key = f"d{day}:{index}:{job.template.template_id}"
                        trace.results[key] = canonical_rows(result.rows)
                        trace.decisions[key] = (result.views_built,
                                                result.views_reused)
                    if reuse:
                        session.analyze_and_publish()
                trace.catalog_digest = session.catalog_digest()
                trace.views_created = session.views_created
                trace.views_reused = session.views_reused
            report.traces.append(trace)
    report.jobs = len(report.traces[0].results)
    _compare(report)
    return report


def run_all() -> List[DifferentialReport]:
    """Both bundled workloads; the CI backend-matrix entry point."""
    return [run_tpcds_differential(), run_cooking_differential()]
