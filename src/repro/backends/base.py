"""The execution-backend interface.

The CloudViews loop -- signatures, insights, view selection, view
matching, spool insertion -- operates entirely on *logical plans* and is
engine-agnostic (the paper runs it inside SCOPE; SparkCruise runs the
same loop inside Spark).  Everything below the optimized plan is a
backend concern: how datasets are stored, how plans execute, and how
materialized views persist.  :class:`ExecutionBackend` is that seam.

The engine talks to the backend through eight methods:

* dataset management: :meth:`load_table`, :meth:`scan_table`,
  :meth:`drop_table` (keyed by stream GUID -- streams are immutable per
  GUID, so a bulk update loads a *new* GUID);
* execution: :meth:`execute` runs one optimized plan (including any
  matched :class:`~repro.plan.logical.ViewScan` and inserted
  :class:`~repro.plan.logical.Spool` operators) and returns the same
  :class:`~repro.executor.executor.ExecutionResult` shape regardless of
  backend -- result rows plus per-operator observed statistics;
* view storage: :meth:`materialize_view`, :meth:`scan_view`,
  :meth:`drop_view` (keyed by view path).  The lifecycle manager calls
  :meth:`drop_view` when GC or a purge cascade collects a view, so an
  external backend never leaks tables for views the catalog has dropped.

Reuse decisions stay *above* this interface: the view store, signature
catalog, and insights service never see backend objects, which is what
makes reuse decisions (and the catalog digest) backend-invariant.

Backends self-describe through :class:`BackendCapabilities` so callers
can gate features (UDOs, shared batch execution) instead of failing
deep inside execution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.common.errors import ConfigError
from repro.executor.executor import ExecutionResult
from repro.faults.runtime import NULL_FAULTS
from repro.plan.expressions import Row
from repro.plan.logical import LogicalPlan


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend can and cannot do.

    ``supports_udos``
        ``Process`` (user-defined operator) nodes execute.  External SQL
        backends generally cannot host arbitrary Python row operators.
    ``supports_row_capture``
        Per-node output rows can be captured (the shared batch-execution
        extension needs this).
    ``deterministic_limit``
        ``Limit`` without a covering ``Sort`` returns the same prefix the
        in-memory interpreter would.  SQL backends make no row-order
        promise, so an unordered LIMIT may pick a different (equally
        valid) subset.
    ``external``
        Data lives outside the Python process (real tables rather than
        in-memory row lists); dropping views actually reclaims storage in
        another system.
    """

    supports_udos: bool = True
    supports_row_capture: bool = True
    deterministic_limit: bool = True
    external: bool = False


class ExecutionBackend(ABC):
    """Storage plus execution for one engine; see the module docstring."""

    #: Registry key; subclasses override.
    name: str = "abstract"
    capabilities: BackendCapabilities = BackendCapabilities()
    #: The session's fault runtime (:mod:`repro.faults`).  Inert by
    #: default; ``Session(faults=...)`` installs a live runtime so the
    #: execute/materialize/scan/drop seams can be perturbed.
    faults = NULL_FAULTS

    # ------------------------------------------------------------------ #
    # datasets (streams)

    @abstractmethod
    def load_table(self, schema, guid: str, rows: Sequence[Row]) -> None:
        """Load one immutable stream version under ``guid``.

        ``schema`` is the :class:`~repro.catalog.schema.TableSchema` of
        the dataset; external backends use its column types.
        """

    @abstractmethod
    def scan_table(self, guid: str) -> List[Row]:
        """Read back every row of one stream version."""

    @abstractmethod
    def drop_table(self, guid: str) -> None:
        """Drop one stream version (stale GUIDs beyond the keep window)."""

    # ------------------------------------------------------------------ #
    # execution

    @abstractmethod
    def execute(self, plan: LogicalPlan) -> ExecutionResult:
        """Run one optimized plan.

        Spool operators must materialize their child under the spool's
        view path *and* flow the rows onward (the paper's two-consumer
        spool); ViewScan operators read previously materialized views.
        The returned :class:`ExecutionResult` carries per-node statistics
        keyed by the plan's node objects, in post-order.
        """

    # ------------------------------------------------------------------ #
    # materialized views

    @abstractmethod
    def materialize_view(self, plan: LogicalPlan, view_id: str):
        """Evaluate ``plan`` and persist the result under ``view_id``.

        Returns ``(row_count, size_bytes)`` using the same byte
        accounting as :func:`repro.storage.store._estimate_bytes`.
        """

    @abstractmethod
    def scan_view(self, view_id: str) -> List[Row]:
        """Read back one materialized view's rows."""

    @abstractmethod
    def drop_view(self, view_id: str) -> None:
        """Drop one materialized view's storage; a no-op when absent.

        Lifecycle purge/GC calls this for every collected view -- on an
        external backend this must drop the real table, or purge
        cascades would leak storage the catalog no longer tracks.
        """

    # ------------------------------------------------------------------ #
    # lifecycle

    def close(self) -> None:
        """Release backend resources (connections, files)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# --------------------------------------------------------------------- #
# registry

_FACTORIES: Dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str,
                     factory: Callable[..., ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (last writer wins)."""
    _FACTORIES[name] = factory


def backend_names() -> List[str]:
    """Registered backend names, sorted (CLI ``--backend`` choices)."""
    return sorted(_FACTORIES)


def create_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate a registered backend by name.

    Options irrelevant to the chosen backend (e.g. ``sqlite_path`` for
    the in-memory backend) are silently dropped, so one config object
    can describe any backend.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown execution backend {name!r}; "
            f"available: {', '.join(backend_names())}") from None
    return factory(**options)


def _register_builtins() -> None:
    # Imported lazily so ``repro.backends.base`` has no import cycle
    # with the backend implementations.
    from repro.backends.memory import InMemoryBackend
    from repro.backends.sqlite.backend import SqliteBackend

    def _memory(udos=None, **_ignored) -> ExecutionBackend:
        return InMemoryBackend(udos=udos)

    def _sqlite(udos=None, sqlite_path=None, **_ignored) -> ExecutionBackend:
        return SqliteBackend(path=sqlite_path)

    register_backend(InMemoryBackend.name, _memory)
    register_backend(SqliteBackend.name, _sqlite)


_register_builtins()
