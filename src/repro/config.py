"""One typed configuration object for the whole session.

Before this module, tuning a deployment meant threading four unrelated
kwarg families (engine, scheduler, insights client, lifecycle) plus CLI
flags; backend selection would have been a fifth.  :class:`SessionConfig`
gathers them in one dataclass with environment loading
(:meth:`SessionConfig.from_env`) and a serializable dump
(:meth:`SessionConfig.to_dict`) for logging and bench provenance.

``Session(config=SessionConfig(backend="sqlite"))`` is the one-stop
entry; the individual ``Session`` kwargs remain and override the
corresponding config fields when both are given.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.backends.base import ExecutionBackend, create_backend
from repro.engine.engine import EngineConfig
from repro.faults.plan import FaultPlan
from repro.insights.client import InsightsClientConfig
from repro.lifecycle.manager import LifecycleConfig
from repro.scheduler.scheduler import SchedulerConfig
from repro.selection.policies import SelectionPolicy
from repro.shard.supervisor import ShardConfig


@dataclass
class SessionConfig:
    """Everything a :class:`repro.api.Session` needs, in one place."""

    #: Execution backend name (``repro.backends.backend_names()``).
    backend: str = "memory"
    #: Database file for the SQLite backend; ``None`` = in-memory DB.
    sqlite_path: Optional[str] = None
    engine: EngineConfig = field(default_factory=EngineConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    client: Optional[InsightsClientConfig] = None
    lifecycle: Optional[LifecycleConfig] = None
    selection_algorithm: str = "greedy"
    selection_policy: Optional[SelectionPolicy] = None
    #: Fault-injection plan (:class:`~repro.faults.FaultPlan`, a plan
    #: string, or a pre-built runtime); ``None`` = injection disabled.
    faults: Optional[object] = None
    #: Shard worker processes for the insights service; 0 (default)
    #: keeps the classic in-process service.
    shards: int = 0
    #: Full deployment knobs (:class:`~repro.shard.ShardConfig`);
    #: overrides :attr:`shards` when given.
    shard: Optional[ShardConfig] = None

    def resolve_shard(self) -> Optional[ShardConfig]:
        """The effective shard deployment config, or ``None``."""
        if self.shard is not None and self.shard.shards > 0:
            return self.shard
        if self.shards > 0:
            return ShardConfig(shards=self.shards)
        return None

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None
                 ) -> "SessionConfig":
        """Build a config from ``REPRO_*`` environment variables.

        Recognized: ``REPRO_BACKEND``, ``REPRO_SQLITE_PATH``,
        ``REPRO_WORKERS``, ``REPRO_VIEW_TTL``, ``REPRO_SELECTION``,
        ``REPRO_SHARDS``, ``REPRO_JOURNAL_DIR``,
        ``REPRO_STORAGE_BUDGET``, ``REPRO_FAULTS``
        (+ ``REPRO_FAULTS_SEED``).  Unset variables keep their defaults.
        """
        env = os.environ if environ is None else environ
        config = cls()
        config.faults = FaultPlan.from_env(env)
        if env.get("REPRO_BACKEND"):
            config.backend = env["REPRO_BACKEND"]
        if env.get("REPRO_SQLITE_PATH"):
            config.sqlite_path = env["REPRO_SQLITE_PATH"]
        if env.get("REPRO_WORKERS"):
            config.scheduler = dataclasses.replace(
                config.scheduler, workers=int(env["REPRO_WORKERS"]))
        if env.get("REPRO_VIEW_TTL"):
            config.engine.view_ttl_seconds = float(env["REPRO_VIEW_TTL"])
        if env.get("REPRO_SELECTION"):
            config.selection_algorithm = env["REPRO_SELECTION"]
        if env.get("REPRO_SHARDS"):
            config.shards = int(env["REPRO_SHARDS"])
        journal_dir = env.get("REPRO_JOURNAL_DIR")
        budget = env.get("REPRO_STORAGE_BUDGET")
        if journal_dir or budget:
            config.lifecycle = LifecycleConfig(
                journal_dir=journal_dir,
                storage_budget_bytes=int(budget) if budget else None,
            )
        return config

    def to_dict(self) -> Dict[str, object]:
        """Plain-data dump for logs and benchmark provenance files."""
        return {f.name: _plain(getattr(self, f.name))
                for f in dataclasses.fields(self)}

    def create_backend(self) -> ExecutionBackend:
        """Instantiate the configured execution backend."""
        return create_backend(self.backend, sqlite_path=self.sqlite_path)


def _plain(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _plain(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)
