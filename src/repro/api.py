"""The unified public facade: one import for the whole reuse stack.

:class:`Session` wires the full Figure-5 deployment in one object --
insights service behind a fault-tolerant :class:`InsightsClient`, a
:class:`~repro.engine.engine.ScopeEngine` compiling against it, the
workload repository, the selection feedback loop, and (for concurrent
submission) a :class:`~repro.scheduler.scheduler.JobScheduler`::

    from repro.api import Session

    with Session() as session:
        session.register_table(schema, rows)
        result = session.run("SELECT region, COUNT(*) FROM events ...")
        session.analyze_and_publish()
        results = session.run_batch([sql_a, sql_b, sql_c], now=100.0)

Every entry point returns the same :class:`JobResult` dataclass, whether
the job ran serially, concurrently, or failed.  The older layered entry
points (``repro.ScopeEngine``, ``repro.CloudViews``, ...) remain
available from their canonical modules; the top-level ``repro``
re-exports carry deprecation shims pointing here.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Union

from repro.backends.base import ExecutionBackend, create_backend
from repro.catalog.schema import TableSchema
from repro.common.errors import ReproError
from repro.config import SessionConfig
from repro.core.controls import MultiLevelControls
from repro.core.runner import record_job_into
from repro.engine.engine import EngineConfig, ScopeEngine
from repro.faults import FaultPlan, FaultRuntime, resolve_faults
from repro.insights.client import (
    FaultInjector,
    InsightsClient,
    InsightsClientConfig,
)
from repro.insights.service import InsightsService
from repro.lifecycle.manager import LifecycleConfig, LifecycleManager
from repro.plan.expressions import Row
from repro.scheduler.results import JobResult
from repro.scheduler.scheduler import (
    JobRequest,
    JobScheduler,
    SchedulerConfig,
)
from repro.selection.candidates import build_candidates
from repro.selection.policies import SelectionPolicy, SelectionResult
from repro.selection.registry import run_selection, validate_selection_algorithm
from repro.shard.journal import ShardedCatalogJournal
from repro.shard.router import ShardRouter
from repro.shard.supervisor import ShardConfig, ShardSupervisor
from repro.workload.repository import WorkloadRepository

__all__ = [
    "Session", "SessionConfig",
    "JobResult", "JobRequest",
    "EngineConfig", "SchedulerConfig", "InsightsClientConfig",
    "LifecycleConfig",
    "FaultInjector", "FaultPlan", "FaultRuntime",
    "SelectionPolicy", "MultiLevelControls",
    "ShardConfig",
]


class Session:
    """Engine + insights + scheduler wiring with one result type.

    All constructor arguments are keyword-only.  ``config`` takes a
    :class:`SessionConfig` covering every knob in one typed object;
    the individual kwargs remain and override the matching config
    field.  ``backend`` selects the execution engine -- a name
    (``"memory"``, ``"sqlite"``) or an
    :class:`~repro.backends.base.ExecutionBackend` instance -- while
    signatures, matching, and insights stay backend-invariant above it.
    By default the engine talks to its insights service through an
    :class:`InsightsClient` (request batching, TTL cache, retries,
    circuit breaker); pass ``client_config``/``fault_injector`` to tune
    or perturb that path.

    ``faults`` installs the unified fault-injection framework
    (:mod:`repro.faults`): a :class:`~repro.faults.FaultPlan`, a
    pre-built :class:`~repro.faults.FaultRuntime`, or a plan string
    (JSON or the ``point:kind[:prob[:max_fires[:delay]]]`` DSL).  One
    runtime is shared by every seam -- backend execute/materialize/
    scan/drop, journal writes, scheduler workers, insights RPC, GC
    sweeps -- so a single seed reproduces a whole failure scenario.
    ``REPRO_FAULTS``/``REPRO_FAULTS_SEED`` do the same from the
    environment.
    """

    def __init__(self, *,
                 config: Optional[SessionConfig] = None,
                 backend: Optional[Union[str, ExecutionBackend]] = None,
                 engine_config: Optional[EngineConfig] = None,
                 scheduler_config: Optional[SchedulerConfig] = None,
                 client_config: Optional[InsightsClientConfig] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 controls: Optional[MultiLevelControls] = None,
                 policy: Optional[SelectionPolicy] = None,
                 selection_algorithm: Optional[str] = None,
                 lifecycle: Optional[LifecycleConfig] = None,
                 faults: Optional[Union[str, FaultPlan, FaultRuntime]] = None,
                 recorder=None):
        # Explicit kwargs override the corresponding SessionConfig field.
        self.config = config or SessionConfig()
        engine_config = engine_config or self.config.engine
        scheduler_config = scheduler_config or self.config.scheduler
        client_config = client_config or self.config.client
        policy = policy or self.config.selection_policy
        lifecycle = lifecycle if lifecycle is not None \
            else self.config.lifecycle
        selection_algorithm = (selection_algorithm
                               or self.config.selection_algorithm)
        # Resolution order: explicit kwarg, SessionConfig field,
        # REPRO_FAULTS in the environment, inert default.
        if faults is None:
            faults = self.config.faults
        if faults is None:
            faults = FaultPlan.from_env()
        self.faults = resolve_faults(faults)
        if backend is None:
            backend = self.config.create_backend()
        elif isinstance(backend, str):
            backend = create_backend(
                backend, sqlite_path=self.config.sqlite_path)
        validate_selection_algorithm(selection_algorithm)
        # shards > 0 swaps the in-process service for the multi-process
        # deployment: worker processes behind a router that presents the
        # same service surface, so nothing downstream changes.
        shard_config = self.config.resolve_shard()
        self.supervisor: Optional[ShardSupervisor] = None
        self._shard_journal: Optional[ShardedCatalogJournal] = None
        if shard_config is not None:
            if (shard_config.journal_dir is None and lifecycle is not None
                    and lifecycle.journal_dir is not None):
                # The lifecycle journal splits into per-shard WALs under
                # its configured directory.
                shard_config = dataclasses.replace(
                    shard_config, journal_dir=lifecycle.journal_dir)
            self.supervisor = ShardSupervisor(shard_config,
                                              faults=self.faults)
            try:
                self.supervisor.start()
            except BaseException:
                self.supervisor.close()
                raise
            self.service = ShardRouter(self.supervisor, faults=self.faults)
            if shard_config.journal_dir is not None:
                self._shard_journal = ShardedCatalogJournal(
                    self.service, directory=shard_config.journal_dir)
        else:
            self.service = InsightsService()
        self.insights = InsightsClient(
            self.service, config=client_config, injector=fault_injector)
        # One shared runtime behind every seam: a single seed then
        # reproduces the whole failure scenario across layers.
        backend.faults = self.faults
        self.insights.faults = self.faults
        self.engine = ScopeEngine(
            insights=self.insights, config=engine_config, backend=backend)
        self.controls = controls or MultiLevelControls()
        self.policy = policy or SelectionPolicy()
        self.selection_algorithm = selection_algorithm
        self.scheduler = JobScheduler(
            self.engine,
            scheduler_config or SchedulerConfig(),
            reuse_gate=self._reuse_gate,
        )
        self.scheduler.faults = self.faults
        self.backend = backend
        self.repository = WorkloadRepository()
        self.last_selection: Optional[SelectionResult] = None
        self._full_work: Dict[str, float] = {}
        self._template_counter = itertools.count(1)
        if recorder is not None:
            recorder.install(self.engine)
            self.scheduler.recorder = recorder
        # After the recorder: journal recovery emits a recorded event.
        self.lifecycle: Optional[LifecycleManager] = None
        if lifecycle is not None:
            self.lifecycle = LifecycleManager(self.engine, lifecycle,
                                              faults=self.faults,
                                              journal=self._shard_journal)

    # ------------------------------------------------------------------ #
    # data management

    def register_table(self, schema: TableSchema, rows: Sequence[Row],
                       at: float = 0.0) -> None:
        self.engine.register_table(schema, rows, at=at)

    # ------------------------------------------------------------------ #
    # running jobs

    def _reuse_gate(self, virtual_cluster: str,
                    job_override: Optional[bool] = None) -> bool:
        return self.controls.enabled_for(
            virtual_cluster,
            job_override=job_override,
            service_enabled=self.insights.enabled)

    def run(self, sql: str, *,
            params: Optional[Dict[str, object]] = None,
            virtual_cluster: str = "default",
            template_id: str = "",
            pipeline_id: str = "",
            reuse_override: Optional[bool] = None,
            now: float = 0.0) -> JobResult:
        """Compile and execute one job; always returns a :class:`JobResult`.

        Unlike batch submission, a failure here raises (the caller asked
        for this one job synchronously and should see the error).
        """
        reuse = self._reuse_gate(virtual_cluster, job_override=reuse_override)
        run = self.engine.run_sql(
            sql, params=params, virtual_cluster=virtual_cluster,
            reuse_enabled=reuse, now=now)
        self._ingest(run, template_id=template_id, pipeline_id=pipeline_id)
        return JobResult.from_run(run)

    def run_batch(self,
                  jobs: Sequence[Union[str, JobRequest]],
                  now: float = 0.0) -> List[JobResult]:
        """Run many jobs concurrently on the scheduler; one wave.

        Accepts plain SQL strings or :class:`JobRequest` objects.  Failed
        jobs come back as ``JobResult`` with ``ok == False``; the batch
        itself never raises.  Requests carrying ``template_id`` /
        ``pipeline_id`` are recorded under that recurring identity (so
        batch-submitted workloads feed view selection exactly like
        :meth:`run`); others are recorded as one-off ad-hoc jobs.
        """
        requests = [job if isinstance(job, JobRequest) else JobRequest(sql=job)
                    for job in jobs]
        identities: Dict[str, JobRequest] = {}
        for request in requests:
            if request.job_id is None:
                request.job_id = self.engine.next_job_id()
            identities[request.job_id] = request
        def ingest(run) -> None:
            request = identities.get(run.compiled.job_id)
            self._ingest(
                run,
                template_id=request.template_id if request else "",
                pipeline_id=request.pipeline_id if request else "")
        return self.scheduler.run_batch(requests, now=now, on_run=ingest)

    def _ingest(self, run, template_id: str = "",
                pipeline_id: str = "") -> None:
        record_job_into(
            self.repository, run, run.compiled.submitted_at,
            virtual_cluster=run.compiled.virtual_cluster,
            template_id=(template_id
                         or f"adhoc-{next(self._template_counter)}"),
            pipeline_id=pipeline_id,
            salt=self.engine.signature_salt,
            full_work=self._full_work,
        )

    # ------------------------------------------------------------------ #
    # the feedback loop

    def analyze_and_publish(self,
                            window_start: Optional[float] = None,
                            window_end: Optional[float] = None
                            ) -> SelectionResult:
        """Workload analysis -> view selection -> insights publication."""
        repository = self.repository.for_runtime(self.engine.runtime_version)
        if window_start is not None or window_end is not None:
            repository = repository.window(
                window_start if window_start is not None else float("-inf"),
                window_end if window_end is not None else float("inf"))
        candidates = build_candidates(repository)
        result = run_selection(
            self.selection_algorithm, repository, candidates, self.policy,
            recorder=self.engine.recorder)
        self.insights.publish(result.annotations())
        self.last_selection = result
        return result

    # ------------------------------------------------------------------ #
    # operational surface

    @property
    def views_created(self) -> int:
        return self.engine.view_store.total_created

    @property
    def views_reused(self) -> int:
        return self.engine.view_store.total_reused

    def catalog_digest(self) -> str:
        return self.engine.view_store.catalog_digest()

    def evict_expired(self, now: float) -> int:
        return len(self.engine.view_store.evict_expired(now))

    def storage_in_use(self, now: float) -> int:
        return self.engine.view_store.storage_in_use(now)

    def gc_sweep(self, now: float = 0.0):
        """One lifecycle GC sweep (requires ``lifecycle=`` at construction)."""
        if self.lifecycle is None:
            raise ReproError("Session was built without lifecycle=")
        return self.lifecycle.sweep(now)

    def close(self) -> None:
        # Lifecycle first: its shutdown snapshot must see the final state
        # before anything else tears down -- and, when sharded, it runs
        # through the router, so the workers must still be up.  The
        # supervisor therefore goes last.
        if self.lifecycle is not None:
            self.lifecycle.close()
        self.scheduler.close()
        self.backend.close()
        self._close_shards()

    def _close_shards(self) -> None:
        if self.supervisor is None:
            return
        if isinstance(self.service, ShardRouter):
            self.service.close()
        self.supervisor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            if self.lifecycle is not None:
                self.lifecycle.close()
            self.scheduler.__exit__(exc_type, exc, tb)
            self.backend.close()
            self._close_shards()
