"""Row-level physical executor and UDO registry."""

from repro.executor.executor import (
    ExecutionResult,
    Executor,
    OperatorStats,
    SpoolOutput,
)
from repro.executor.udo import UdoRegistry, default_registry

__all__ = ["ExecutionResult", "Executor", "OperatorStats", "SpoolOutput",
           "UdoRegistry", "default_registry"]
