"""Row-level interpreter for logical plans.

Executes a bound logical plan against the simulated :class:`DataStore` and
returns both the result rows and per-operator runtime statistics.  The
statistics become the "runtime metrics as seen in the history" that
CloudViews pre-joins with subexpressions in its workload repository
(Section 2.3) -- reuse decisions are made from *observed* numbers, never
from estimates.

Spool operators perform their double duty here: the child's rows flow to
the parent unchanged *and* are written to stable storage under the view
path, exactly the online-materialization side effect of Section 2.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ExecutionError
from repro.executor.udo import UdoRegistry, default_registry
from repro.plan.expressions import Row
from repro.plan.logical import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    LogicalPlan,
    Process,
    Project,
    Scan,
    Sort,
    Spool,
    Union,
    ViewScan,
)
from repro.storage.store import DataStore, _estimate_bytes


@dataclass
class OperatorStats:
    """Observed runtime numbers for one operator instance."""

    operator: str
    rows_in: int
    rows_out: int
    bytes_out: int
    description: str = ""


@dataclass
class SpoolOutput:
    """Record of one view materialized during execution."""

    signature: str
    view_path: str
    row_count: int
    size_bytes: int
    schema: Tuple[str, ...]


@dataclass
class ExecutionResult:
    """Result rows plus the telemetry the engine logs per job."""

    rows: List[Row]
    node_stats: List[Tuple[LogicalPlan, OperatorStats]]
    spooled: List[SpoolOutput] = field(default_factory=list)
    views_read: List[str] = field(default_factory=list)
    #: Per-node output rows, populated only when the executor was created
    #: with ``capture_rows=True`` (used by shared batch execution).
    node_rows: Dict[int, List[Row]] = field(default_factory=dict)

    @property
    def input_rows(self) -> int:
        """Rows read as job inputs: base dataset scans plus materialized
        views (a reused view is a stored input too -- just a much smaller
        one, which is where the paper's input-size reduction comes from)."""
        return sum(s.rows_out for node, s in self.node_stats
                   if isinstance(node, (Scan, ViewScan)))

    @property
    def input_bytes(self) -> int:
        return sum(s.bytes_out for node, s in self.node_stats
                   if isinstance(node, (Scan, ViewScan)))

    @property
    def data_read_bytes(self) -> int:
        """All bytes read: base inputs, views, and intermediate flows."""
        return sum(s.bytes_out for _, s in self.node_stats)

    def rows_out_of(self, node: LogicalPlan) -> int:
        for candidate, stats in self.node_stats:
            if candidate is node:
                return stats.rows_out
        raise ExecutionError("node not part of this execution")


class Executor:
    """Interprets logical plans over the simulated store."""

    def __init__(self, store: DataStore,
                 udos: Optional[UdoRegistry] = None,
                 capture_rows: bool = False):
        self.store = store
        self.udos = udos or default_registry()
        self.capture_rows = capture_rows

    def execute(self, plan: LogicalPlan) -> ExecutionResult:
        result = ExecutionResult(rows=[], node_stats=[])
        result.rows = self._run(plan, result)
        return result

    # ------------------------------------------------------------------ #
    # dispatch

    def _run(self, plan: LogicalPlan, result: ExecutionResult) -> List[Row]:
        kind = type(plan)
        handler = _HANDLERS.get(kind)
        if handler is None:
            raise ExecutionError(f"no executor for operator {kind.__name__}")
        rows_in, rows_out = handler(self, plan, result)
        result.node_stats.append((plan, OperatorStats(
            operator=plan.op_label,
            rows_in=rows_in,
            rows_out=len(rows_out),
            bytes_out=_estimate_bytes(rows_out),
            description=plan.describe(),
        )))
        if self.capture_rows:
            result.node_rows[id(plan)] = rows_out
        return rows_out

    # ------------------------------------------------------------------ #
    # operators

    def _scan(self, plan: Scan, result: ExecutionResult):
        if plan.stream_guid is None:
            raise ExecutionError(
                f"scan of {plan.dataset!r} was not bound to a stream GUID")
        rows = self.store.get(plan.stream_guid)
        projected = [_project_columns(row, plan.columns) for row in rows]
        return 0, projected

    def _view_scan(self, plan: ViewScan, result: ExecutionResult):
        rows = self.store.get(plan.view_path)
        result.views_read.append(plan.signature)
        return 0, list(rows)

    def _filter(self, plan: Filter, result: ExecutionResult):
        rows = self._run(plan.child, result)
        kept = [row for row in rows if plan.predicate.evaluate(row)]
        return len(rows), kept

    def _project(self, plan: Project, result: ExecutionResult):
        rows = self._run(plan.child, result)
        out = [{name: expr.evaluate(row)
                for expr, name in zip(plan.exprs, plan.names)}
               for row in rows]
        return len(rows), out

    def _join(self, plan: Join, result: ExecutionResult):
        left = self._run(plan.left, result)
        right = self._run(plan.right, result)
        rows_in = len(left) + len(right)
        algorithm = choose_join_algorithm(plan, len(left), len(right))
        if algorithm == "hash":
            out = _hash_join(plan, left, right)
        elif algorithm == "merge":
            out = _merge_join(plan, left, right)
        else:
            out = _nested_loop_join(plan, left, right)
        return rows_in, out

    def _group_by(self, plan: GroupBy, result: ExecutionResult):
        rows = self._run(plan.child, result)
        out = _hash_aggregate(plan, rows)
        return len(rows), out

    def _union(self, plan: Union, result: ExecutionResult):
        rows_in = 0
        out: List[Row] = []
        schema = plan.schema
        for child in plan.inputs:
            child_rows = self._run(child, result)
            rows_in += len(child_rows)
            # Positionally align columns to the union's output schema.
            child_schema = child.schema
            if child_schema == schema:
                out.extend(child_rows)
            else:
                for row in child_rows:
                    out.append({s: row[c] for s, c in zip(schema, child_schema)})
        return rows_in, out

    def _distinct(self, plan: Distinct, result: ExecutionResult):
        rows = self._run(plan.child, result)
        seen = set()
        out: List[Row] = []
        schema = plan.schema
        for row in rows:
            key = tuple(_hashable(row.get(c)) for c in schema)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return len(rows), out

    def _sort(self, plan: Sort, result: ExecutionResult):
        rows = self._run(plan.child, result)
        out = list(rows)
        # Stable sort, applied from the least-significant key backwards.
        for key, ascending in reversed(list(zip(plan.keys, plan.ascending))):
            out.sort(key=lambda row: _sort_key(key.evaluate(row)),
                     reverse=not ascending)
        return len(rows), out

    def _limit(self, plan: Limit, result: ExecutionResult):
        rows = self._run(plan.child, result)
        return len(rows), rows[:plan.count]

    def _process(self, plan: Process, result: ExecutionResult):
        rows = self._run(plan.child, result)
        out = self.udos.get(plan.udo_name)(list(rows))
        return len(rows), out

    def _spool(self, plan: Spool, result: ExecutionResult):
        rows = self._run(plan.child, result)
        size = _estimate_bytes(rows)
        self.store.put(plan.view_path, rows, size)
        result.spooled.append(SpoolOutput(
            signature=plan.signature,
            view_path=plan.view_path,
            row_count=len(rows),
            size_bytes=size,
            schema=plan.schema,
        ))
        return len(rows), rows


_HANDLERS = {
    Scan: Executor._scan,
    ViewScan: Executor._view_scan,
    Filter: Executor._filter,
    Project: Executor._project,
    Join: Executor._join,
    GroupBy: Executor._group_by,
    Union: Executor._union,
    Distinct: Executor._distinct,
    Sort: Executor._sort,
    Limit: Executor._limit,
    Process: Executor._process,
    Spool: Executor._spool,
}


# --------------------------------------------------------------------- #
# join and aggregation kernels

#: Below this input size a nested-loop join beats building a hash table.
LOOP_JOIN_THRESHOLD = 10


def choose_join_algorithm(plan: Join, left_rows: int, right_rows: int) -> str:
    """Physical join selection: ``hash``, ``merge``, or ``loop``.

    Mirrors a SCOPE-like optimizer: no equi-keys forces nested loops;
    multi-key equi-joins run as sort-merge (the inputs are co-partitioned
    and sorted on the compound key in production); small inputs use loops;
    everything else hashes.  The mix of all three is what Figure 9's
    concurrent-join histogram breaks down by.
    """
    if not plan.left_keys:
        return "loop"
    if len(plan.left_keys) >= 2:
        return "merge"
    if min(left_rows, right_rows) < LOOP_JOIN_THRESHOLD:
        return "loop"
    return "hash"


def _hash_join(plan: Join, left: List[Row], right: List[Row]) -> List[Row]:
    index: Dict[tuple, List[Row]] = {}
    for row in right:
        key = tuple(_hashable(k.evaluate(row)) for k in plan.right_keys)
        index.setdefault(key, []).append(row)
    dropped = set(plan.drop_right)
    out: List[Row] = []
    for lrow in left:
        key = tuple(_hashable(k.evaluate(lrow)) for k in plan.left_keys)
        matched = False
        for rrow in index.get(key, ()):
            merged = _merge(lrow, rrow, dropped)
            if plan.residual is None or plan.residual.evaluate(merged):
                matched = True
                out.append(merged)
        if not matched and plan.how == "left":
            out.append(_merge(lrow, _null_row(plan.right.schema), dropped))
    return out


def _merge_join(plan: Join, left: List[Row], right: List[Row]) -> List[Row]:
    """Sort-merge join on the compound equi-key."""

    def left_key(row: Row) -> tuple:
        return tuple(_sort_key(k.evaluate(row)) for k in plan.left_keys)

    def right_key(row: Row) -> tuple:
        return tuple(_sort_key(k.evaluate(row)) for k in plan.right_keys)

    left_sorted = sorted(left, key=left_key)
    right_sorted = sorted(right, key=right_key)
    dropped = set(plan.drop_right)
    out: List[Row] = []
    i = j = 0
    while i < len(left_sorted):
        lkey = left_key(left_sorted[i])
        while j < len(right_sorted) and right_key(right_sorted[j]) < lkey:
            j += 1
        # Gather the right-side run matching this key.
        run_end = j
        while run_end < len(right_sorted) \
                and right_key(right_sorted[run_end]) == lkey:
            run_end += 1
        matched = False
        for rrow in right_sorted[j:run_end]:
            merged = _merge(left_sorted[i], rrow, dropped)
            if plan.residual is None or plan.residual.evaluate(merged):
                matched = True
                out.append(merged)
        if not matched and plan.how == "left":
            out.append(_merge(left_sorted[i], _null_row(plan.right.schema),
                              dropped))
        i += 1
    return out


def _nested_loop_join(plan: Join, left: List[Row], right: List[Row]) -> List[Row]:
    dropped = set(plan.drop_right)
    out: List[Row] = []
    for lrow in left:
        matched = False
        lkey = tuple(_hashable(k.evaluate(lrow)) for k in plan.left_keys)
        for rrow in right:
            rkey = tuple(_hashable(k.evaluate(rrow)) for k in plan.right_keys)
            if lkey != rkey:
                continue
            merged = _merge(lrow, rrow, dropped)
            if plan.residual is None or plan.residual.evaluate(merged):
                matched = True
                out.append(merged)
        if not matched and plan.how == "left":
            out.append(_merge(lrow, _null_row(plan.right.schema), dropped))
    return out


def _hash_aggregate(plan: GroupBy, rows: List[Row]) -> List[Row]:
    groups: Dict[tuple, List[Row]] = {}
    if plan.keys:
        for row in rows:
            key = tuple(_hashable(k.evaluate(row)) for k in plan.keys)
            groups.setdefault(key, []).append(row)
    else:
        # Global aggregation always yields exactly one group.
        groups[()] = list(rows)

    out: List[Row] = []
    key_names = [k.name for k in plan.keys]
    agg_names = list(plan.names[len(key_names):])
    for _, members in groups.items():
        result: Row = {}
        if members:
            for name, key in zip(key_names, plan.keys):
                result[name] = key.evaluate(members[0])
        for name, agg in zip(agg_names, plan.aggregates):
            result[name] = _evaluate_aggregate(agg, members)
        out.append(result)
    return out


def _evaluate_aggregate(agg, rows: List[Row]) -> object:
    name = agg.name
    if name == "COUNT" and not agg.args:
        return len(rows)
    values = [agg.args[0].evaluate(row) for row in rows] if agg.args else []
    values = [v for v in values if v is not None]
    if agg.distinct:
        unique: List[object] = []
        seen = set()
        for value in values:
            marker = _hashable(value)
            if marker not in seen:
                seen.add(marker)
                unique.append(value)
        values = unique
    if name == "COUNT":
        return len(values)
    if not values:
        return None
    if name == "SUM":
        return sum(values)
    if name == "AVG":
        return sum(values) / len(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise ExecutionError(f"unknown aggregate {name!r}")


# --------------------------------------------------------------------- #
# small helpers


def _project_columns(row: Row, columns: Tuple[str, ...]) -> Row:
    return {c: row.get(c) for c in columns}


def _merge(left: Row, right: Row, dropped: set) -> Row:
    merged = dict(left)
    for key, value in right.items():
        if key not in dropped:
            merged[key] = value
    return merged


def _null_row(schema: Tuple[str, ...]) -> Row:
    return {c: None for c in schema}


def _hashable(value: object) -> object:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def _sort_key(value: object) -> tuple:
    """Total order with NULLs first and mixed types segregated."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))
