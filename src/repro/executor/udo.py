"""User-defined operator (UDO) registry for the executor.

SCOPE jobs "often include custom user code" (Section 1).  A UDO here is a
Python callable from a list of rows to a list of rows.  Unknown UDOs default
to pass-through, which keeps workload generation simple while still flowing
the UDO's *identity* through signatures (the part CloudViews cares about).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.plan.expressions import Row

UdoFunc = Callable[[List[Row]], List[Row]]


class UdoRegistry:
    """Named row-transform functions available to Process operators."""

    def __init__(self) -> None:
        self._udos: Dict[str, UdoFunc] = {}

    def register(self, name: str, func: UdoFunc) -> None:
        self._udos[name] = func

    def get(self, name: str) -> UdoFunc:
        return self._udos.get(name, _passthrough)

    def has(self, name: str) -> bool:
        return name in self._udos


def _passthrough(rows: List[Row]) -> List[Row]:
    return rows


def default_registry() -> UdoRegistry:
    """Registry with a few representative UDOs used by tests/examples."""
    registry = UdoRegistry()

    def scrub(rows: List[Row]) -> List[Row]:
        """Deterministic cleanup: trims string values."""
        return [{k: (v.strip() if isinstance(v, str) else v)
                 for k, v in row.items()} for row in rows]

    def dedup(rows: List[Row]) -> List[Row]:
        seen = set()
        out: List[Row] = []
        for row in rows:
            key = tuple(sorted(row.items()))
            if key not in seen:
                seen.add(key)
                out.append(row)
        return out

    registry.register("Scrub", scrub)
    registry.register("Dedup", dedup)
    return registry
