"""Chaos campaigns: run a workload under seeded fault plans, assert safety.

The paper's operating bar for computation reuse is blunt: the feature
must never fail a customer job or corrupt state -- every fault in the
reuse path has to degrade to plain recomputation.  This module turns
that bar into an executable check (``repro chaos`` on the CLI):

1. run the cooking workload once fault-free and record every job's
   canonical result rows (the *reference*);
2. for each campaign seed, build a deterministic :class:`FaultPlan`
   (:func:`campaign_plan`) spanning backend execution, materialization,
   view scans, scheduler workers, the insights RPC, the WAL, and GC,
   and run the same workload under it;
3. after each faulted run assert the three invariants:

   * **completion** -- every job comes back ``ok`` (retries, reuse-free
     fallback, and worker respawns absorbed every injected fault);
   * **correctness** -- each job's canonical rows are byte-identical to
     the fault-free reference (only build/reuse *decisions* may differ);
   * **durability** -- replaying the journal into a fresh store
     reproduces the catalog digest observed live before shutdown.

Campaign plans are pure functions of the seed, so a red run reproduces
with ``repro chaos --seed N``.  Fault *placement* across concurrent
workers is scheduling-dependent; the invariants are written to hold
under any interleaving, which is exactly the property being tested.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.clock import SECONDS_PER_DAY
from repro.faults import points
from repro.faults.plan import FaultPlan, FaultSpec

#: Faults that land inside one engine-execute call.  A campaign picks at
#: most :data:`EXEC_PICKS` of these, each firing once, so the worst case
#: (every fire hitting the same job) stays within the engine's retry
#: budget (``EngineConfig.execute_retries`` = 2 -> 3 attempts) and the
#: job still completes.
EXEC_MENU = (
    FaultSpec(points.BACKEND_EXECUTE, "transient", max_fires=1),
    FaultSpec(points.BACKEND_EXECUTE, "crash", max_fires=1),
    FaultSpec(points.BACKEND_MATERIALIZE, "transient", max_fires=1),
    FaultSpec(points.BACKEND_MATERIALIZE_MID, "crash", max_fires=1),
    FaultSpec(points.BACKEND_SCAN_VIEW, "storage", max_fires=1),
    FaultSpec(points.SCHEDULER_WORKER, "crash", max_fires=2),
)
EXEC_PICKS = 2

#: Faults outside the execute path: each layer absorbs its own (client
#: degradation, journal error counters, sweep aborts), so these can fire
#: more freely without threatening job completion.
AMBIENT_MENU = (
    FaultSpec(points.INSIGHTS_RPC, "drop", probability=0.25, max_fires=4),
    FaultSpec(points.INSIGHTS_RPC, "error", probability=0.25, max_fires=3),
    FaultSpec(points.INSIGHTS_RPC, "delay", probability=0.5,
              delay_seconds=0.02, max_fires=6),
    FaultSpec(points.JOURNAL_APPEND, "torn", probability=0.2, max_fires=2),
    FaultSpec(points.JOURNAL_APPEND, "storage", probability=0.2, max_fires=1),
    FaultSpec(points.JOURNAL_SNAPSHOT, "storage", max_fires=1),
    FaultSpec(points.GC_SWEEP, "storage", max_fires=1),
    FaultSpec(points.BACKEND_DROP_VIEW, "storage", max_fires=1),
)
AMBIENT_PICKS = 3

#: Faults specific to the sharded deployment (``--shards N``): RPC
#: failures on the router's fetch fan-out and real worker-process
#: SIGKILLs.  Only sampled when the campaign itself runs sharded; the
#: router's retry + restart path and the client's degradation ladder
#: must absorb all of them.
SHARD_MENU = (
    FaultSpec(points.SHARD_RPC, "drop", probability=0.25, max_fires=3),
    FaultSpec(points.SHARD_RPC, "error", probability=0.25, max_fires=2),
    FaultSpec(points.SHARD_RPC, "delay", probability=0.5,
              delay_seconds=0.01, max_fires=6),
    FaultSpec(points.SHARD_DEATH, "crash", probability=0.2, max_fires=1),
)
SHARD_PICKS = 2


def campaign_plan(seed: int, shards: int = 0) -> FaultPlan:
    """The deterministic fault plan for one campaign seed.

    Draws :data:`EXEC_PICKS` execute-path faults and
    :data:`AMBIENT_PICKS` ambient faults from the menus with a seeded
    RNG; the same seed always yields the same plan (and the plan itself
    carries ``seed`` for the runtime's probability draws).  A sharded
    campaign (``shards > 0``) additionally draws :data:`SHARD_PICKS`
    shard faults; the draws happen after the classic ones, so the
    ``shards=0`` plan for any seed is unchanged.
    """
    rng = random.Random(f"repro-chaos-{seed}")
    specs = list(rng.sample(EXEC_MENU, EXEC_PICKS))
    specs += list(rng.sample(AMBIENT_MENU, AMBIENT_PICKS))
    if shards > 0:
        specs += list(rng.sample(SHARD_MENU, SHARD_PICKS))
    return FaultPlan(specs=tuple(specs), seed=seed,
                     name=f"campaign-{seed}")


# ---------------------------------------------------------------------- #
# one workload pass


@dataclass
class RunOutcome:
    """Everything one workload pass produced that the invariants need."""

    jobs: int = 0
    #: ``key -> error string`` for jobs that did not complete.
    failures: Dict[str, str] = field(default_factory=dict)
    #: ``key -> canonical rows`` for jobs that did complete.
    rows: Dict[str, List[str]] = field(default_factory=dict)
    views_created: int = 0
    views_reused: int = 0
    live_digest: str = ""
    recovered_digest: str = ""
    #: ``FaultRuntime.stats()`` of the run (empty when fault-free).
    fired: Dict[str, object] = field(default_factory=dict)


def _run_workload(backend: str, *, days: int, faults=None,
                  workload_seed: int = 11, shards: int = 0) -> RunOutcome:
    """One full pass of the cooking workload through a :class:`Session`.

    Jobs go through :meth:`Session.run_batch` (the scheduler path, so
    worker faults are exercised); each day ends with selection feedback
    and a GC sweep.  The journal lives in a temp dir that is recovered
    into a *fresh* store after close to produce ``recovered_digest``.

    With ``shards > 0`` the session runs the multi-process insights
    deployment; a *faulted* sharded pass additionally SIGKILLs and
    restarts one live shard at every day boundary (shard ``day %
    shards``, when the scheduler is drained and no view locks are held),
    on top of whatever the fault plan injects.
    """
    # Imported here: repro.faults must stay importable without dragging
    # in the whole engine stack (api -> config -> faults.plan).
    from repro.api import Session
    from repro.backends.differential import canonical_rows
    from repro.config import SessionConfig
    from repro.core.controls import MultiLevelControls
    from repro.lifecycle.lineage import LineageRegistry
    from repro.lifecycle.manager import LifecycleConfig
    from repro.scheduler.scheduler import JobRequest, SchedulerConfig
    from repro.selection.policies import SelectionPolicy
    from repro.shard.journal import merged_offline_recovery
    from repro.storage.views import ViewStore
    from repro.workload.generator import generate_workload

    base = generate_workload(
        name="chaos", seed=workload_seed, virtual_clusters=2,
        templates_per_vc=4, fact_rows_per_day=240, adhoc_per_day=2)
    controls = MultiLevelControls()
    for vc in base.virtual_clusters:
        controls.enable_vc(vc)
    outcome = RunOutcome()
    journal_dir = tempfile.mkdtemp(prefix="repro-chaos-journal-")
    try:
        session = Session(
            config=SessionConfig(shards=shards),
            backend=backend,
            controls=controls,
            selection_algorithm="bigsubs",
            policy=SelectionPolicy(storage_budget_bytes=50_000_000,
                                   min_reuses_per_epoch=0.0),
            scheduler_config=SchedulerConfig(workers=2),
            lifecycle=LifecycleConfig(journal_dir=journal_dir,
                                      snapshot_every_ops=32),
            faults=faults,
        )
        base.install(session.engine, at=0.0)
        for day in range(days):
            now = day * SECONDS_PER_DAY
            if day > 0:
                base.cook(session.engine, day)
                session.evict_expired(now=now)
                if shards > 0 and faults is not None:
                    # Real mid-campaign process death: SIGKILL one shard
                    # at the day boundary (scheduler drained, no view
                    # locks held) and bring it back before the next
                    # wave.  The restarted worker reloads its persisted
                    # annotations, so serving state survives the kill.
                    victim = day % shards
                    session.supervisor.kill(victim)
                    session.supervisor.restart(victim)
            jobs = base.jobs_for_day(day)
            requests = [
                JobRequest(sql=job.template.sql, params=dict(job.params),
                           virtual_cluster=job.virtual_cluster,
                           template_id=job.template.template_id,
                           pipeline_id=job.template.pipeline_id)
                for job in jobs
            ]
            results = session.run_batch(requests, now=now)
            for index, (job, result) in enumerate(zip(jobs, results)):
                key = f"d{day}:{index}:{job.template.template_id}"
                outcome.jobs += 1
                if result.ok:
                    outcome.rows[key] = canonical_rows(result.rows)
                else:
                    outcome.failures[key] = str(result.error)
            session.analyze_and_publish()
            session.gc_sweep(now=now + SECONDS_PER_DAY / 2)
        outcome.views_created = session.views_created
        outcome.views_reused = session.views_reused
        outcome.live_digest = session.catalog_digest()
        if session.faults.enabled:
            outcome.fired = session.faults.stats()
        session.close()
        # Durability: a fresh store rebuilt from the journal must land on
        # the exact digest the live catalog had before shutdown.  The
        # merged recovery reads per-shard WALs when present and falls
        # back to the classic single-journal layout otherwise, so this
        # one call covers both deployments.
        store = ViewStore()
        merged_offline_recovery(journal_dir, store, LineageRegistry())
        outcome.recovered_digest = store.catalog_digest()
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)
    return outcome


# ---------------------------------------------------------------------- #
# the campaign


@dataclass
class SeedReport:
    """Invariant verdicts for one campaign seed."""

    seed: int
    plan: str
    jobs: int = 0
    #: Invariant violations, human-readable; empty means the seed passed.
    violations: List[str] = field(default_factory=list)
    fired: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CampaignReport:
    """Aggregate result of ``run_campaign``."""

    backend: str
    days: int
    reference_jobs: int = 0
    seeds: List[SeedReport] = field(default_factory=list)
    #: Insights-service shard processes per run (0 = in-process).
    shards: int = 0

    @property
    def ok(self) -> bool:
        return all(seed.ok for seed in self.seeds)

    def summary(self) -> str:
        lines = [f"chaos campaign: backend={self.backend} days={self.days} "
                 f"shards={self.shards} jobs/run={self.reference_jobs} "
                 f"seeds={len(self.seeds)}"]
        for report in self.seeds:
            status = "ok" if report.ok else "FAIL"
            fires = report.fired.get("fired_total", 0)
            lines.append(f"  seed {report.seed}: {status}  "
                         f"plan=[{report.plan}]  fires={fires}")
            for violation in report.violations:
                lines.append(f"    ! {violation}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"chaos campaign {verdict}")
        return "\n".join(lines)


def _check(reference: RunOutcome, faulted: RunOutcome,
           report: SeedReport) -> None:
    """Apply the three invariants to one faulted run."""
    report.jobs = faulted.jobs
    for key, error in sorted(faulted.failures.items()):
        report.violations.append(f"job {key} failed: {error}")
    if faulted.jobs != reference.jobs:
        report.violations.append(
            f"job count {faulted.jobs} != reference {reference.jobs}")
    mismatched = [key for key, rows in sorted(reference.rows.items())
                  if key in faulted.rows and faulted.rows[key] != rows]
    for key in mismatched[:5]:
        report.violations.append(f"job {key} rows differ from reference")
    if len(mismatched) > 5:
        report.violations.append(
            f"... and {len(mismatched) - 5} more row mismatches")
    if faulted.recovered_digest != faulted.live_digest:
        report.violations.append(
            f"catalog digest diverged after recovery: live "
            f"{faulted.live_digest[:12]} != recovered "
            f"{faulted.recovered_digest[:12]}")


def run_campaign(seeds: Sequence[int], backend: str = "memory",
                 days: int = 2, shards: int = 0) -> CampaignReport:
    """Run the chaos campaign for ``seeds`` against one backend.

    ``shards > 0`` runs every pass -- reference and faulted -- against
    the multi-process insights deployment, with the shard fault menu in
    play and a real SIGKILL+restart at each faulted day boundary.
    """
    from repro.faults.runtime import FaultRuntime

    campaign = CampaignReport(backend=backend, days=days, shards=shards)
    reference = _run_workload(backend, days=days, faults=None,
                              shards=shards)
    campaign.reference_jobs = reference.jobs
    if reference.failures:
        # The fault-free pass must itself be clean, or the reference
        # rows mean nothing.
        failed = ", ".join(sorted(reference.failures))
        raise AssertionError(
            f"fault-free reference run failed jobs: {failed}")
    for seed in seeds:
        plan = campaign_plan(seed, shards=shards)
        faulted = _run_workload(backend, days=days,
                                faults=FaultRuntime(plan), shards=shards)
        report = SeedReport(
            seed=seed,
            plan="; ".join(f"{s.point}:{s.kind}" for s in plan.specs),
            fired=faulted.fired)
        _check(reference, faulted, report)
        campaign.seeds.append(report)
    return campaign


# ---------------------------------------------------------------------- #
# kill-mid-CTAS recovery probe (sqlite only)


def check_ctas_crash_recovery(sqlite_path: Optional[str] = None) -> str:
    """Crash a file-backed SQLite backend mid-CTAS; verify the restart.

    Returns a short human-readable verdict line; raises
    ``AssertionError`` if the restarted backend shows a partially
    visible view (the exact corruption the transactional manifest
    exists to prevent).
    """
    from repro.backends.base import create_backend
    from repro.catalog.schema import ColumnDef, TableSchema
    from repro.common.errors import StorageError, TransientBackendError
    from repro.faults.runtime import FaultRuntime
    from repro.plan.logical import Scan

    own_dir = None
    if sqlite_path is None:
        own_dir = tempfile.mkdtemp(prefix="repro-chaos-ctas-")
        sqlite_path = os.path.join(own_dir, "chaos.db")
    try:
        schema = TableSchema("events", (ColumnDef("region"),
                                        ColumnDef("clicks", "int")))
        rows = [{"region": f"r{i % 3}", "clicks": i} for i in range(12)]
        plan = Scan("events", ("region", "clicks"),
                    stream_guid="g-events")

        backend = create_backend("sqlite", sqlite_path=sqlite_path)
        backend.load_table(schema, "g-events", rows)
        backend.materialize_view(plan, "views/survivor")
        backend.faults = FaultRuntime(FaultPlan(
            specs=(FaultSpec(points.BACKEND_MATERIALIZE_MID, "crash",
                             max_fires=1),),
            seed=0, name="ctas-crash"))
        crashed = False
        try:
            backend.materialize_view(plan, "views/doomed")
        except TransientBackendError:
            crashed = True
        if not crashed:
            raise AssertionError("mid-CTAS crash did not fire")
        # Abandon the connection without cleanup, as a killed process
        # would, then restart on the same file.
        backend.close()
        restarted = create_backend("sqlite", sqlite_path=sqlite_path)
        try:
            if not restarted.has_view("views/survivor"):
                raise AssertionError(
                    "restart lost the committed view 'views/survivor'")
            if restarted.has_view("views/doomed"):
                raise AssertionError(
                    "restart exposed the partially built view "
                    "'views/doomed'")
            try:
                restarted.scan_view("views/doomed")
            except StorageError:
                pass
            else:
                raise AssertionError(
                    "scan of the crashed view unexpectedly succeeded")
            restored = restarted.scan_view("views/survivor")
            if len(restored) != len(rows):
                raise AssertionError(
                    f"committed view lost rows: {len(restored)} "
                    f"!= {len(rows)}")
        finally:
            restarted.close()
        return ("kill-mid-CTAS: committed view intact, "
                "no partially visible view after restart")
    finally:
        if own_dir is not None:
            shutil.rmtree(own_dir, ignore_errors=True)
