"""The fault runtime: deterministic evaluation of a fault plan.

One :class:`FaultRuntime` is shared by every seam of one session --
backends, scheduler workers, the insights client, the catalog journal,
and the GC sweep all hold a reference to the same runtime, so a single
seeded RNG decides every probabilistic firing in arrival order and a
chaos run is reproducible bit for bit.

Two entry points:

* :meth:`FaultRuntime.check` evaluates the plan at one point and
  *returns* the outcome (kind + delay) without raising -- for seams that
  map failures to their own exception types (the insights client) or
  handle them inline (the journal's torn writes);
* :meth:`FaultRuntime.fire` raises the mapped exception directly --
  the one-liner for backend/scheduler/GC seams.

Probability semantics match the legacy ``insights.client.FaultInjector``:
all probabilistic specs at one point share a **single cumulative draw**
(with drop=0.3 and error=0.2, one draw lands in [0, 0.3) for drop and
[0.3, 0.5) for error), and an always-on ``delay`` spec adds latency to
every surviving arrival without consuming the draw.

When no plan is installed every seam holds :data:`NULL_FAULTS`, whose
``fire``/``check`` are attribute-lookup-plus-return no-ops -- the
zero-overhead-when-disabled contract ``bench_fault_overhead`` enforces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import (
    ExecutionError,
    InjectedCrash,
    InsightsTimeout,
    StorageError,
    TransientBackendError,
)
from repro.common.sync import RANK_LEAF, TrackedLock
from repro.faults.plan import FaultPlan, FaultSpec


@dataclass(frozen=True)
class FaultOutcome:
    """What one arrival at an injection point drew."""

    point: str = ""
    kind: Optional[str] = None
    delay: float = 0.0

    @property
    def fired(self) -> bool:
        return self.kind is not None and self.kind != "delay"


#: The shared no-fault outcome (also what :data:`NULL_FAULTS` returns).
NO_FAULT = FaultOutcome()


class FaultRuntime:
    """Evaluates one :class:`FaultPlan` deterministically; thread-safe."""

    enabled = True

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.enabled = self.plan.active
        self._by_point = self.plan.by_point()
        self._rng = random.Random(f"faults-{self.plan.seed}")
        # Bottom of the lock hierarchy: seams fire faults while holding
        # their own locks (the journal handle, the SQLite storage mutex),
        # so this guard must rank below every other tracked lock and
        # never takes one itself.
        self._mutex = TrackedLock("faults.runtime", RANK_LEAF - 10)
        self._arrivals: Dict[str, int] = {}
        self._fires: Dict[int, int] = {}
        #: Deterministic firing log as (point, kind) tuples.
        self.fired_log: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------ #
    # evaluation

    def check(self, point: str) -> FaultOutcome:
        """One arrival at ``point``: decide, count, and return."""
        with self._mutex:
            index = self._arrivals.get(point, 0)
            self._arrivals[point] = index + 1
            live = [spec for spec in self._by_point.get(point, ())
                    if self._live(spec, index)]
            if not live:
                return NO_FAULT
            delay = 0.0
            chosen: Optional[FaultSpec] = None
            walk = [s for s in live
                    if not (s.kind == "delay" and s.probability >= 1.0)]
            if walk:
                draw = self._rng.random()
                cumulative = 0.0
                for spec in walk:
                    cumulative += spec.probability
                    if draw < cumulative:
                        chosen = spec
                        break
            if chosen is None:
                # Survived every probabilistic spec: always-on delay
                # specs still tax the round trip.
                for spec in live:
                    if spec.kind == "delay" and spec.probability >= 1.0:
                        delay += spec.delay_seconds
                        self._count(spec)
                if delay == 0.0:
                    return NO_FAULT
                outcome = FaultOutcome(point=point, kind="delay",
                                       delay=delay)
                self.fired_log.append((point, "delay"))
                return outcome
            self._count(chosen)
            self.fired_log.append((point, chosen.kind))
            return FaultOutcome(point=point, kind=chosen.kind,
                                delay=chosen.delay_seconds)

    def fire(self, point: str) -> FaultOutcome:
        """Like :meth:`check`, but raises the mapped exception."""
        outcome = self.check(point)
        kind = outcome.kind
        if kind is None or kind == "delay":
            return outcome
        message = f"injected {kind} fault at {point}"
        if kind == "crash":
            raise InjectedCrash(message)
        if kind == "transient":
            raise TransientBackendError(message)
        if kind in ("storage", "torn"):
            raise StorageError(message)
        if kind == "drop":
            raise InsightsTimeout(message)
        raise ExecutionError(message)

    def _live(self, spec: FaultSpec, index: int) -> bool:
        if index < spec.after or spec.probability <= 0.0:
            return False
        if spec.max_fires is not None:
            if self._fires.get(id(spec), 0) >= spec.max_fires:
                return False
        return True

    def _count(self, spec: FaultSpec) -> None:
        self._fires[id(spec)] = self._fires.get(id(spec), 0) + 1

    # ------------------------------------------------------------------ #
    # observability

    @property
    def fired_total(self) -> int:
        with self._mutex:
            return len(self.fired_log)

    def stats(self) -> Dict[str, object]:
        """Arrival and firing counts per point (chaos-report payload)."""
        with self._mutex:
            by_kind: Dict[str, int] = {}
            by_point: Dict[str, int] = {}
            for point, kind in self.fired_log:
                by_kind[kind] = by_kind.get(kind, 0) + 1
                by_point[point] = by_point.get(point, 0) + 1
            return {
                "plan": self.plan.name or "(unnamed)",
                "seed": self.plan.seed,
                "arrivals": dict(sorted(self._arrivals.items())),
                "fired": dict(sorted(by_point.items())),
                "fired_by_kind": dict(sorted(by_kind.items())),
                "fired_total": len(self.fired_log),
            }


class NullFaultRuntime:
    """The inert runtime every seam holds by default.

    ``fire``/``check`` return the shared :data:`NO_FAULT` immediately;
    the hot path pays one attribute lookup and one call, which the
    overhead benchmark pins at unmeasurable.
    """

    enabled = False
    plan = FaultPlan()
    fired_log: List[Tuple[str, str]] = []
    fired_total = 0

    def check(self, point: str) -> FaultOutcome:
        return NO_FAULT

    def fire(self, point: str) -> FaultOutcome:
        return NO_FAULT

    def stats(self) -> Dict[str, object]:
        return {"plan": "(none)", "seed": 0, "arrivals": {}, "fired": {},
                "fired_by_kind": {}, "fired_total": 0}


#: Shared inert singleton; identity-comparable (``faults is NULL_FAULTS``).
NULL_FAULTS = NullFaultRuntime()


def resolve_faults(value) -> "FaultRuntime | NullFaultRuntime":
    """Coerce any user-facing ``faults=`` value to a runtime.

    Accepts ``None`` (no faults), a :class:`FaultRuntime` (shared as
    is), a :class:`FaultPlan`, or a string (JSON / DSL, see
    :meth:`FaultPlan.parse`).
    """
    if value is None:
        return NULL_FAULTS
    if isinstance(value, (FaultRuntime, NullFaultRuntime)):
        return value
    if isinstance(value, FaultPlan):
        return FaultRuntime(value)
    if isinstance(value, str):
        return FaultRuntime(FaultPlan.parse(value))
    from repro.common.errors import ConfigError
    raise ConfigError(
        f"faults= expects a FaultPlan, FaultRuntime, plan string, or "
        f"None; got {type(value).__name__}")
