"""Unified deterministic fault injection (``Session(faults=...)``).

Public surface:

* :mod:`repro.faults.points` -- the closed catalog of injection points;
* :class:`FaultSpec` / :class:`FaultPlan` -- declarative, serializable
  descriptions of what to break (JSON, env ``REPRO_FAULTS``, or DSL);
* :class:`FaultRuntime` / :data:`NULL_FAULTS` -- the seeded evaluator
  every seam shares, and the zero-overhead inert default;
* :mod:`repro.faults.chaos` -- the ``repro chaos`` campaign runner
  (imported lazily: it pulls in the full session stack).
"""

from repro.faults import points
from repro.faults.plan import FaultPlan, FaultSpec, merge_plans
from repro.faults.runtime import (
    NO_FAULT,
    NULL_FAULTS,
    FaultOutcome,
    FaultRuntime,
    NullFaultRuntime,
    resolve_faults,
)

__all__ = [
    "points",
    "FaultPlan", "FaultSpec", "merge_plans",
    "FaultOutcome", "FaultRuntime", "NullFaultRuntime",
    "NO_FAULT", "NULL_FAULTS", "resolve_faults",
]
