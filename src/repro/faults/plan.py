"""Fault plans: declarative, serializable descriptions of what to break.

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` entries,
each naming an injection point (:mod:`repro.faults.points`), a failure
kind, and how often to fire -- by probability (one deterministic RNG
draw per arrival at the point), by count (``max_fires`` bounds total
firings; ``after`` skips the first N arrivals), or both.  Plans travel
three ways:

* programmatically: ``Session(faults=FaultPlan(specs=[...], seed=3))``;
* via the environment: ``REPRO_FAULTS`` holds either the JSON dump or
  the compact DSL (see :meth:`FaultPlan.parse`);
* via the CLI: ``repro chaos`` generates seeded campaign plans.

The DSL is ``point:kind[:probability[:max_fires[:delay]]]``, semicolon-
separated, with an optional leading ``seed=N;``::

    seed=3;backend.execute:transient:0.2:2;insights.rpc:drop:0.5

Validation happens at construction: unknown points, kinds a point does
not support, and out-of-range probabilities raise
:class:`~repro.common.errors.ConfigError` immediately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.faults.points import REGISTRY, valid_kinds


@dataclass
class FaultSpec:
    """One injection rule: where, what, and how often."""

    point: str
    kind: str
    #: Chance each arrival at the point fires this spec.  Specs at the
    #: same point share a single cumulative draw (legacy
    #: ``FaultInjector.roll`` semantics): with drop=0.3 and error=0.2,
    #: one draw in [0, 0.3) drops and [0.3, 0.5) errors.
    probability: float = 1.0
    #: Extra simulated latency (``delay`` kind only).
    delay_seconds: float = 0.0
    #: Total firings allowed; ``None`` = unbounded.
    max_fires: Optional[int] = None
    #: Arrivals at the point to let through before this spec is live.
    after: int = 0

    def __post_init__(self) -> None:
        if self.point not in REGISTRY:
            raise ConfigError(
                f"unknown fault point {self.point!r}; known points: "
                f"{', '.join(sorted(REGISTRY))}")
        kinds = valid_kinds(self.point)
        if self.kind not in kinds:
            raise ConfigError(
                f"fault kind {self.kind!r} is not valid at "
                f"{self.point!r}; supported: {', '.join(kinds)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.delay_seconds < 0:
            raise ConfigError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ConfigError(
                f"max_fires must be >= 0, got {self.max_fires}")
        if self.after < 0:
            raise ConfigError(f"after must be >= 0, got {self.after}")

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"point": self.point, "kind": self.kind,
                                  "probability": self.probability}
        if self.delay_seconds:
            out["delay_seconds"] = self.delay_seconds
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        if self.after:
            out["after"] = self.after
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(
            point=str(payload["point"]),
            kind=str(payload["kind"]),
            probability=float(payload.get("probability", 1.0)),
            delay_seconds=float(payload.get("delay_seconds", 0.0)),
            max_fires=(None if payload.get("max_fires") is None
                       else int(payload["max_fires"])),
            after=int(payload.get("after", 0)),
        )


@dataclass
class FaultPlan:
    """A seeded set of injection rules; the unit chaos campaigns run."""

    specs: List[FaultSpec] = field(default_factory=list)
    seed: int = 0
    name: str = ""

    @property
    def active(self) -> bool:
        return any(spec.probability > 0 and spec.max_fires != 0
                   for spec in self.specs)

    def by_point(self) -> Dict[str, List[FaultSpec]]:
        out: Dict[str, List[FaultSpec]] = {}
        for spec in self.specs:
            out.setdefault(spec.point, []).append(spec)
        return out

    # ------------------------------------------------------------------ #
    # serialization

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "name": self.name,
                "specs": [spec.to_dict() for spec in self.specs]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        return cls(
            specs=[FaultSpec.from_dict(s)
                   for s in payload.get("specs", ())],
            seed=int(payload.get("seed", 0)),
            name=str(payload.get("name", "")),
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON or from the compact DSL."""
        text = text.strip()
        if not text:
            return cls()
        if text.startswith("{"):
            try:
                return cls.from_dict(json.loads(text))
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as error:
                raise ConfigError(
                    f"malformed fault-plan JSON: {error}") from None
        seed = 0
        specs: List[FaultSpec] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if chunk.startswith("seed="):
                try:
                    seed = int(chunk[5:])
                except ValueError:
                    raise ConfigError(
                        f"malformed fault-plan seed {chunk!r}") from None
                continue
            parts = chunk.split(":")
            if len(parts) < 2:
                raise ConfigError(
                    f"malformed fault spec {chunk!r}; expected "
                    "point:kind[:probability[:max_fires[:delay]]]")
            try:
                specs.append(FaultSpec(
                    point=parts[0], kind=parts[1],
                    probability=(float(parts[2])
                                 if len(parts) > 2 else 1.0),
                    max_fires=(int(parts[3])
                               if len(parts) > 3 else None),
                    delay_seconds=(float(parts[4])
                                   if len(parts) > 4 else 0.0),
                ))
            except ConfigError:
                raise
            except ValueError as error:
                raise ConfigError(
                    f"malformed fault spec {chunk!r}: {error}") from None
        return cls(specs=specs, seed=seed)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None
                 ) -> Optional["FaultPlan"]:
        """Build a plan from ``REPRO_FAULTS``; ``None`` when unset."""
        import os
        env = os.environ if environ is None else environ
        text = env.get("REPRO_FAULTS", "")
        if not text.strip():
            return None
        plan = cls.parse(text)
        seed = env.get("REPRO_FAULTS_SEED", "")
        if seed.strip():
            try:
                plan.seed = int(seed)
            except ValueError:
                raise ConfigError(
                    f"REPRO_FAULTS_SEED must be an integer, "
                    f"got {seed!r}") from None
        return plan


def merge_plans(plans: Sequence[FaultPlan], seed: Optional[int] = None,
                name: str = "") -> FaultPlan:
    """Concatenate several plans into one (campaign composition)."""
    specs: List[FaultSpec] = []
    for plan in plans:
        specs.extend(plan.specs)
    return FaultPlan(
        specs=specs,
        seed=plans[0].seed if seed is None and plans else (seed or 0),
        name=name or (plans[0].name if plans else ""),
    )
