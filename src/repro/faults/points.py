"""The closed catalog of fault-injection points.

Every seam in the stack where the unified fault framework can perturb
execution is named here, together with the failure *kinds* that make
sense at that seam.  Naming the points centrally keeps three things in
sync: the seams threaded through the code (each calls
:meth:`~repro.faults.runtime.FaultRuntime.fire` with one of these
constants), plan validation (a :class:`~repro.faults.plan.FaultSpec`
naming an unknown point or an unsupported kind is a
:class:`~repro.common.errors.ConfigError` at construction, not a silent
no-op at run time), and the DESIGN-doc injection-point table.

Failure kinds:

``transient``
    A retryable backend error (:class:`~repro.common.errors.
    TransientBackendError`) -- the moral equivalent of a flaky I/O
    syscall.  The engine's bounded retry loop absorbs these.
``crash``
    Simulated process/worker death (:class:`~repro.common.errors.
    InjectedCrash`).  Anything in flight is torn down exactly as an
    OS kill would leave it (open transactions roll back on the next
    open); schedulers and engines treat it as retryable.
``storage``
    A :class:`~repro.common.errors.StorageError` -- a view or blob
    read/write failed.  On the view-read path the engine degrades the
    job to a reuse-free recompute.
``error``
    A non-retryable serving-layer error (the insights client maps it
    to :class:`~repro.common.errors.InsightsError` and runs its own
    retry/degrade cycle).
``drop``
    The insights round trip consumes its full timeout and fails
    (:class:`~repro.common.errors.InsightsTimeout`).
``delay``
    Extra simulated latency added to a surviving round trip.
``torn``
    A partial write: the journal emits a truncated JSONL record with no
    trailing newline, exactly what a crash mid-``write(2)`` leaves.
"""

from __future__ import annotations

from typing import Dict, Tuple

# ---------------------------------------------------------------------- #
# point names

#: Backend plan execution (fired once per ``ExecutionBackend.execute``).
BACKEND_EXECUTE = "backend.execute"
#: Spool/view materialization, fired before any write happens.
BACKEND_MATERIALIZE = "backend.materialize"
#: Mid-materialization (after the CTAS/row write, before the commit) --
#: the kill-mid-CTAS scenario.
BACKEND_MATERIALIZE_MID = "backend.materialize.mid"
#: Reading a materialized view back (fired per ViewScan in the plan and
#: in ``scan_view`` itself).
BACKEND_SCAN_VIEW = "backend.scan_view"
#: Dropping a view's backing storage (GC / purge cascades).
BACKEND_DROP_VIEW = "backend.drop_view"
#: One WAL append in the catalog journal.
JOURNAL_APPEND = "journal.append"
#: A journal snapshot (fired after the temp file is written, before the
#: atomic rename -- a crash here must leave the old snapshot intact).
JOURNAL_SNAPSHOT = "journal.snapshot"
#: A scheduler worker picking up a job (worker death).
SCHEDULER_WORKER = "scheduler.worker"
#: One insights serving-layer round trip.
INSIGHTS_RPC = "insights.rpc"
#: One lifecycle GC sweep.
GC_SWEEP = "gc.sweep"
#: One shard RPC on the router's fetch fan-out (per contacted shard).
SHARD_RPC = "shard.rpc"
#: Spawning one shard worker process (supervisor start/restart).
SHARD_SPAWN = "shard.spawn"
#: Sudden shard-process death observed at the router (the process is
#: really SIGKILLed; the supervisor's restart policy decides recovery).
SHARD_DEATH = "shard.death"

#: point -> (description, valid kinds).  The closed vocabulary.
REGISTRY: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    BACKEND_EXECUTE: (
        "backend plan execution", ("transient", "crash")),
    BACKEND_MATERIALIZE: (
        "view materialization, before any write", ("transient", "crash")),
    BACKEND_MATERIALIZE_MID: (
        "mid-materialization, after the write before the commit",
        ("crash",)),
    BACKEND_SCAN_VIEW: (
        "materialized-view read", ("storage", "transient")),
    BACKEND_DROP_VIEW: (
        "view storage drop (GC / purge)", ("storage",)),
    JOURNAL_APPEND: (
        "catalog-journal WAL append", ("torn", "storage")),
    JOURNAL_SNAPSHOT: (
        "catalog-journal snapshot, before the atomic rename",
        ("crash", "storage")),
    SCHEDULER_WORKER: (
        "scheduler worker-thread death", ("crash",)),
    INSIGHTS_RPC: (
        "insights serving-layer round trip", ("drop", "error", "delay")),
    GC_SWEEP: (
        "lifecycle GC sweep", ("storage",)),
    SHARD_RPC: (
        "shard RPC on the fetch fan-out", ("drop", "error", "delay")),
    SHARD_SPAWN: (
        "shard worker-process spawn", ("error",)),
    SHARD_DEATH: (
        "shard worker-process death (real SIGKILL)", ("crash",)),
}

ALL_POINTS = tuple(sorted(REGISTRY))
ALL_KINDS = ("transient", "crash", "storage", "error",
             "drop", "delay", "torn")


def valid_kinds(point: str) -> Tuple[str, ...]:
    """The failure kinds supported at ``point`` (empty when unknown)."""
    entry = REGISTRY.get(point)
    return entry[1] if entry else ()
