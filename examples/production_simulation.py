"""A scaled-down replay of the paper's production deployment (Table 1).

Simulates an enterprise data-cooking workload over a multi-day window on
a cluster of containers with virtual-cluster quotas, job queues, and
opportunistic (bonus) allocation -- once with CloudViews enabled and once
without -- then prints the Table-1 impact summary.

Run:  python examples/production_simulation.py
"""

from repro import generate_workload
from repro.core import SimulationConfig, WorkloadSimulation
from repro.telemetry import compare_telemetry
from repro.workload import pipeline_summary

DAYS = 6


def run(enabled: bool):
    workload = generate_workload(seed=7, virtual_clusters=3,
                                 templates_per_vc=16)
    config = SimulationConfig(days=DAYS, cloudviews_enabled=enabled)
    label = "CloudViews" if enabled else "baseline"
    print(f"simulating {DAYS} days ({label}) ...")
    return WorkloadSimulation(workload, config).run()


def main() -> None:
    enabled = run(True)
    baseline = run(False)
    report = compare_telemetry(baseline.telemetry, enabled.telemetry)
    summary = pipeline_summary(enabled.repository)

    print("\nProduction Impact Summary (cf. paper Table 1)")
    print("-" * 56)
    print(f"{'Jobs':<40}{summary['jobs']:>14,}")
    pipelines = len({j.pipeline_id for j in enabled.repository.jobs
                     if j.pipeline_id})
    print(f"{'Pipelines':<40}{pipelines:>14,}")
    print(f"{'Virtual Clusters':<40}{summary['virtual_clusters']:>14,}")
    print(f"{'Views Created':<40}{enabled.views_created:>14,}")
    print(f"{'Views Used':<40}{enabled.views_reused:>14,}")
    ratio = enabled.views_reused / max(1, enabled.views_created)
    print(f"{'Reuses per view':<40}{ratio:>14.2f}")
    print("-" * 56)
    for label, value in report.rows():
        print(f"{label:<40}{value:>13.2f}%")
    print(f"{'Median per-job latency improvement':<40}"
          f"{report.median_latency_improvement * 100:>13.2f}%")

    print("\nWorkload shape (cf. paper Figure 3)")
    print(f"repeated subexpressions: "
          f"{enabled.repository.repeated_fraction():.1%} (paper: >75%)")
    print(f"average repeat frequency: "
          f"{enabled.repository.average_repeat_frequency():.2f} (paper: ~5)")

    print("\nDaily cumulative processing time (cf. paper Figure 6c)")
    base_daily = dict(baseline.cumulative_daily("processing_time"))
    cv_daily = dict(enabled.cumulative_daily("processing_time"))
    print(f"{'day':>4} {'baseline':>14} {'cloudviews':>14}")
    for day in sorted(base_daily):
        print(f"{day:>4} {base_daily[day]:>14,.0f} "
              f"{cv_daily.get(day, 0):>14,.0f}")


if __name__ == "__main__":
    main()
