"""The paper's Figure 4: three analysts, one shared computation.

Three analysts study Asia-region sales over the same shared datasets
(Sales, Customer, Parts).  Their SQL looks different, but their query
plans share large subexpressions.  CloudViews discovers the overlap from
the workload, materializes the common fragments online, and rewrites the
later plans into Figure 4b's shape (CloudView scans replacing subplans).

Run:  python examples/analyst_reuse.py
"""

from repro import MultiLevelControls, SelectionPolicy, schema_of
from repro.api import Session

AVG_SALES_PER_CUSTOMER = (
    "SELECT CustomerId, AVG(Price * Quantity) "
    "FROM Sales JOIN Customer "
    "WHERE MktSegment = 'Asia' GROUP BY CustomerId")

AVG_DISCOUNT_PER_BRAND = (
    "SELECT Brand, AVG(Discount) "
    "FROM Sales JOIN Customer JOIN Parts "
    "WHERE MktSegment = 'Asia' GROUP BY Brand")

TOTAL_QUANTITY_PER_PART_TYPE = (
    "SELECT PartType, SUM(Quantity) "
    "FROM Sales JOIN Customer JOIN Parts "
    "WHERE MktSegment = 'Asia' GROUP BY PartType")


def load_shared_datasets(engine) -> None:
    """The cooked datasets all three analysts consume."""
    engine.register_table(
        schema_of("Sales", [
            ("CustomerId", "int"), ("PartId", "int"), ("Price", "float"),
            ("Quantity", "int"), ("Discount", "float")]),
        [dict(CustomerId=i % 25, PartId=i % 10, Price=float(5 + i % 90),
              Quantity=1 + i % 4, Discount=(i % 15) / 100.0)
         for i in range(500)])
    engine.register_table(
        schema_of("Customer", [("CustomerId", "int"), ("MktSegment", "str")]),
        [dict(CustomerId=i,
              MktSegment=["Asia", "Europe", "Americas", "Africa"][i % 4])
         for i in range(25)])
    engine.register_table(
        schema_of("Parts", [("PartId", "int"), ("Brand", "str"),
                            ("PartType", "str")]),
        [dict(PartId=i, Brand=f"brand-{i % 3}", PartType=f"type-{i % 2}")
         for i in range(10)])


def main() -> None:
    controls = MultiLevelControls()
    controls.enable_vc("analytics")
    session = Session(controls=controls,
                      policy=SelectionPolicy(min_reuses_per_epoch=0.0),
                      selection_algorithm="bigsubs")
    load_shared_datasets(session.engine)

    analysts = [
        ("Ava",   "average sales per customer in Asia",
         AVG_SALES_PER_CUSTOMER),
        ("Brent", "average discount per part brand in Asia",
         AVG_DISCOUNT_PER_BRAND),
        ("Chen",  "total quantity sold per part type in Asia",
         TOTAL_QUANTITY_PER_PART_TYPE),
    ]

    print("== Figure 4a: independent plans with hidden overlap ==")
    for index, (name, insight, sql) in enumerate(analysts):
        result = session.run(sql, virtual_cluster="analytics",
                             template_id=f"{name}-report", now=float(index))
        print(f"\n{name} asks for {insight}:")
        print(result.compiled.plan.explain())

    print("\n== CloudViews analyzes the workload ==")
    selection = session.analyze_and_publish()
    print(selection.summary())
    for candidate in selection.selected:
        print(f"  selected: {candidate.operator} subexpression, "
              f"seen {candidate.frequency}x across "
              f"{candidate.distinct_jobs} jobs, "
              f"~{candidate.avg_rows} rows to store")

    print("\n== Figure 4b: the same reports, next run ==")
    for index, (name, insight, sql) in enumerate(analysts):
        result = session.run(sql, virtual_cluster="analytics",
                             template_id=f"{name}-report",
                             now=100.0 + index)
        marker = []
        if result.views_built:
            marker.append(f"materializes {result.views_built} view(s)")
        if result.views_reused:
            marker.append(f"reuses {result.views_reused} view(s)")
        print(f"\n{name} ({' and '.join(marker) or 'no reuse'}):")
        print(result.compiled.plan.explain())

    print(f"\n{session.views_created} views created, "
          f"{session.views_reused} reuses, "
          f"{session.storage_in_use(now=200.0):,} bytes of view storage")
    session.close()


if __name__ == "__main__":
    main()
