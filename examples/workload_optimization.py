"""Broader workload optimization (paper Section 5.2).

CloudViews "opened up the area of workload optimization for cloud query
engines": the same signatures power applications beyond reuse.  This
example walks through three of them over one simulated deployment:

1. **workload compression** into a representative set for pre-production
   evaluation;
2. **micro-models** -- per-template performance predictors learned from
   telemetry;
3. **annotations-file debugging** -- reproducing a job's reuse behaviour
   offline from a snapshot of the selected signatures (Figure 5).

Run:  python examples/workload_optimization.py
"""

from repro import generate_workload
from repro.core import SimulationConfig, WorkloadSimulation
from repro.insights import (
    compile_with_annotations,
    export_current_annotations,
)
from repro.telemetry import evaluate_micromodels, fit_micromodels
from repro.workload import compress_workload, replay_plan


def main() -> None:
    workload = generate_workload(seed=11, virtual_clusters=2,
                                 templates_per_vc=10)
    config = SimulationConfig(days=5, cloudviews_enabled=True)
    simulation = WorkloadSimulation(workload, config)
    print("simulating 5 days of the deployment ...")
    report = simulation.run()

    # ------------------------------------------------------------- #
    print("\n== 1. Workload compression (pre-production replay set) ==")
    compressed = compress_workload(report.repository)
    print(f"{compressed.original_jobs} jobs collapse into "
          f"{len(compressed.representatives)} representative classes "
          f"({compressed.compression_ratio:.1f}x compression)")
    print("heaviest classes:")
    for job, weight in replay_plan(compressed, max_representatives=5):
        print(f"  {job.template_id:<24} x{weight}")

    # ------------------------------------------------------------- #
    print("\n== 2. Micro-models (per-template predictors) ==")
    template_of = {j.job_id: j.template_id for j in report.repository.jobs}
    split = 3 * 86400.0
    train = [t for t in report.telemetry if t.submit_time < split]
    test = [t for t in report.telemetry if t.submit_time >= split]
    bank = fit_micromodels(train, template_of, metric="processing_time",
                           min_observations=2)
    quality = evaluate_micromodels(bank, test, template_of)
    print(f"fitted {len(bank)} per-template models from "
          f"{len(train)} training jobs")
    print(f"held-out accuracy over {quality.evaluated:.0f} jobs: "
          f"median relative error {quality.median_relative_error:.1%}, "
          f"{quality.within_20_percent:.0%} within 20%")

    # ------------------------------------------------------------- #
    print("\n== 3. Annotations-file debugging (Figure 5) ==")
    engine = simulation.engine
    snapshot = export_current_annotations(engine)
    lines = snapshot.count("\n") + 1
    print(f"exported the current selection generation "
          f"({engine.insights.annotation_count()} annotations, "
          f"{lines} lines of JSON)")
    instance = workload.jobs_for_day(4)[0]
    debug = compile_with_annotations(
        engine, instance.template.sql, snapshot,
        params=instance.params,
        virtual_cluster=instance.template.virtual_cluster,
        now=5 * 86400.0, job_id="incident-repro")
    print(f"recompiled {instance.template.template_id} from the file: "
          f"built={debug.built_views} reused={debug.reused_views}")
    print(debug.plan.explain())


if __name__ == "__main__":
    main()
