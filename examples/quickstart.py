"""Quickstart: automatic computation reuse in five minutes.

Register shared datasets, run a few analytical jobs, let CloudViews learn
from the workload, and watch later jobs get rewritten to reuse
materialized common subexpressions -- transparently, with identical
results.

Run:  python examples/quickstart.py
"""

from repro import MultiLevelControls, SelectionPolicy, schema_of
from repro.api import Session


def main() -> None:
    # A Session wires the whole stack: SCOPE-like engine, insights
    # service behind the fault-tolerant client, and the feedback loop.
    # Enable reuse for our virtual cluster (the paper's opt-in model).
    controls = MultiLevelControls()
    controls.enable_vc("quickstart-vc")
    session = Session(
        controls=controls,
        policy=SelectionPolicy(min_reuses_per_epoch=0.0),
    )

    # A shared dataset, as produced by an enterprise data-cooking pipeline.
    session.register_table(
        schema_of("PageViews", [
            ("UserId", "int"), ("Country", "str"), ("Seconds", "float")]),
        [dict(UserId=i % 50, Country=["US", "DE", "IN"][i % 3],
              Seconds=float(i % 120)) for i in range(600)])
    session.register_table(
        schema_of("Users", [("UserId", "int"), ("Premium", "int")]),
        [dict(UserId=i, Premium=i % 4 == 0) for i in range(50)])

    # Two analysts, two different reports -- one common core computation
    # (premium users' page views).
    report_a = ("SELECT Country, SUM(Seconds) AS total "
                "FROM PageViews JOIN Users WHERE Premium = 1 "
                "GROUP BY Country")
    report_b = ("SELECT UserId, COUNT(*) AS views "
                "FROM PageViews JOIN Users WHERE Premium = 1 "
                "GROUP BY UserId")

    print("== Round 1: CloudViews observes the workload ==")
    first_a = session.run(report_a, virtual_cluster="quickstart-vc",
                          template_id="report-a", now=0.0)
    first_b = session.run(report_b, virtual_cluster="quickstart-vc",
                          template_id="report-b", now=1.0)
    print(f"report A: {first_a.row_count} rows, "
          f"views built={first_a.views_built}")
    print(f"report B: {first_b.row_count} rows, "
          f"views built={first_b.views_built}")

    print("\n== Feedback loop: analyze history, select views, publish ==")
    selection = session.analyze_and_publish()
    print(selection.summary())

    print("\n== Round 2: materialize once, reuse everywhere ==")
    second_a = session.run(report_a, virtual_cluster="quickstart-vc",
                           template_id="report-a", now=10.0)
    second_b = session.run(report_b, virtual_cluster="quickstart-vc",
                           template_id="report-b", now=11.0)
    print(f"report A: built={second_a.views_built} "
          f"(pays the one-time materialization)")
    print(f"report B: reused={second_b.views_reused} "
          f"(scans the view instead of recomputing)")
    print("\nreport B's rewritten plan:")
    print(second_b.compiled.plan.explain())

    assert sorted(map(repr, second_a.rows)) == sorted(map(repr, first_a.rows))
    assert sorted(map(repr, second_b.rows)) == sorted(map(repr, first_b.rows))
    print("\nresults identical with and without reuse "
          f"({session.views_created} views created, "
          f"{session.views_reused} reuses so far)")

    print("\n== Inputs changed? Views invalidate automatically ==")
    session.engine.bulk_update("PageViews", [
        dict(UserId=i % 50, Country=["US", "DE", "IN"][i % 3],
             Seconds=float(i % 60)) for i in range(700)], at=20.0)
    third_b = session.run(report_b, virtual_cluster="quickstart-vc",
                          template_id="report-b", now=21.0)
    print(f"after bulk update: built={third_b.views_built} "
          f"(views over the updated stream went stale and rebuild "
          f"just-in-time), reused={third_b.views_reused} "
          f"(views over the unchanged Users stream remain valid)")
    session.close()


if __name__ == "__main__":
    main()
