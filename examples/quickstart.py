"""Quickstart: automatic computation reuse in five minutes.

Register shared datasets, run a few analytical jobs, let CloudViews learn
from the workload, and watch later jobs get rewritten to reuse
materialized common subexpressions -- transparently, with identical
results.

Run:  python examples/quickstart.py
"""

from repro import CloudViews, MultiLevelControls, SelectionPolicy, schema_of


def main() -> None:
    # CloudViews wraps a SCOPE-like engine.  Enable it for our virtual
    # cluster (the paper's opt-in deployment model).
    controls = MultiLevelControls()
    controls.enable_vc("quickstart-vc")
    cloudviews = CloudViews(
        controls=controls,
        policy=SelectionPolicy(min_reuses_per_epoch=0.0),
    )
    engine = cloudviews.engine

    # A shared dataset, as produced by an enterprise data-cooking pipeline.
    engine.register_table(
        schema_of("PageViews", [
            ("UserId", "int"), ("Country", "str"), ("Seconds", "float")]),
        [dict(UserId=i % 50, Country=["US", "DE", "IN"][i % 3],
              Seconds=float(i % 120)) for i in range(600)])
    engine.register_table(
        schema_of("Users", [("UserId", "int"), ("Premium", "int")]),
        [dict(UserId=i, Premium=i % 4 == 0) for i in range(50)])

    # Two analysts, two different reports -- one common core computation
    # (premium users' page views).
    report_a = ("SELECT Country, SUM(Seconds) AS total "
                "FROM PageViews JOIN Users WHERE Premium = 1 "
                "GROUP BY Country")
    report_b = ("SELECT UserId, COUNT(*) AS views "
                "FROM PageViews JOIN Users WHERE Premium = 1 "
                "GROUP BY UserId")

    print("== Round 1: CloudViews observes the workload ==")
    first_a = cloudviews.run(report_a, virtual_cluster="quickstart-vc",
                             template_id="report-a", now=0.0)
    first_b = cloudviews.run(report_b, virtual_cluster="quickstart-vc",
                             template_id="report-b", now=1.0)
    print(f"report A: {len(first_a.rows)} rows, "
          f"views built={first_a.compiled.built_views}")
    print(f"report B: {len(first_b.rows)} rows, "
          f"views built={first_b.compiled.built_views}")

    print("\n== Feedback loop: analyze history, select views, publish ==")
    selection = cloudviews.analyze_and_publish()
    print(selection.summary())

    print("\n== Round 2: materialize once, reuse everywhere ==")
    second_a = cloudviews.run(report_a, virtual_cluster="quickstart-vc",
                              template_id="report-a", now=10.0)
    second_b = cloudviews.run(report_b, virtual_cluster="quickstart-vc",
                              template_id="report-b", now=11.0)
    print(f"report A: built={second_a.compiled.built_views} "
          f"(pays the one-time materialization)")
    print(f"report B: reused={second_b.compiled.reused_views} "
          f"(scans the view instead of recomputing)")
    print("\nreport B's rewritten plan:")
    print(second_b.compiled.plan.explain())

    assert sorted(map(repr, second_a.rows)) == sorted(map(repr, first_a.rows))
    assert sorted(map(repr, second_b.rows)) == sorted(map(repr, first_b.rows))
    print("\nresults identical with and without reuse "
          f"({cloudviews.views_created} views created, "
          f"{cloudviews.views_reused} reuses so far)")

    print("\n== Inputs changed? Views invalidate automatically ==")
    engine.bulk_update("PageViews", [
        dict(UserId=i % 50, Country=["US", "DE", "IN"][i % 3],
             Seconds=float(i % 60)) for i in range(700)], at=20.0)
    third_b = cloudviews.run(report_b, virtual_cluster="quickstart-vc",
                             template_id="report-b", now=21.0)
    print(f"after bulk update: built={third_b.compiled.built_views} "
          f"(views over the updated stream went stale and rebuild "
          f"just-in-time), reused={third_b.compiled.reused_views} "
          f"(views over the unchanged Users stream remain valid)")


if __name__ == "__main__":
    main()
