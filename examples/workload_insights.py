"""SparkCruise-style workload insights (paper Section 5.5).

SparkCruise ships a "Workload Insights Notebook" that shows data
engineers their workload's redundancy before they enable computation
reuse.  This example mirrors that flow: a passive listener logs every
executed query, the user schedules the analysis themselves, inspects the
insights, and only then turns reuse on.

Run:  python examples/workload_insights.py
"""

from repro import SelectionPolicy, Session, schema_of
from repro.extensions import (
    QueryEventListener,
    format_insights,
    run_workload_analysis,
    workload_insights_report,
)

DASHBOARD_QUERIES = [
    ("hourly-errors",
     "SELECT Service, COUNT(*) AS errors FROM Logs JOIN Services "
     "WHERE Level = 'ERROR' GROUP BY Service"),
    ("error-latency",
     "SELECT Service, AVG(LatencyMs) AS avg_latency "
     "FROM Logs JOIN Services WHERE Level = 'ERROR' GROUP BY Service"),
    ("tier-volume",
     "SELECT Tier, COUNT(*) AS n FROM Logs JOIN Services "
     "WHERE Level = 'ERROR' GROUP BY Tier"),
    ("all-traffic",
     "SELECT Service, COUNT(*) AS n FROM Logs JOIN Services "
     "GROUP BY Service"),
]


def main() -> None:
    session = Session()
    engine = session.engine
    session.register_table(
        schema_of("Logs", [("ServiceId", "int"), ("Level", "str"),
                           ("LatencyMs", "float")]),
        [dict(ServiceId=i % 12,
              Level="ERROR" if i % 5 == 0 else "INFO",
              LatencyMs=float(i % 900)) for i in range(900)])
    session.register_table(
        schema_of("Services", [("ServiceId", "int"), ("Service", "str"),
                               ("Tier", "str")]),
        [dict(ServiceId=i, Service=f"svc-{i}",
              Tier="frontend" if i % 3 else "backend") for i in range(12)])

    # Phase 1: run the cluster's workload with reuse OFF; the listener
    # logs plans and signatures from the outside (no engine changes).
    listener = QueryEventListener(engine)
    print("== Phase 1: observe the workload (reuse disabled) ==")
    for cycle in range(3):
        for name, sql in DASHBOARD_QUERIES:
            run = engine.run_sql(sql, reuse_enabled=False,
                                 now=cycle * 60.0)
            listener.on_query_end(run, now=cycle * 60.0,
                                  application_id="dashboards")
    print(f"{listener.repository.total_jobs()} queries logged")

    # Phase 2: the Workload Insights Notebook.
    print("\n== Phase 2: Workload Insights Notebook ==")
    report = workload_insights_report(listener.repository)
    print(format_insights(report))

    # Phase 3: convinced -- schedule the analysis and enable reuse.
    print("\n== Phase 3: enable computation reuse ==")
    selection = run_workload_analysis(
        listener, SelectionPolicy(min_reuses_per_epoch=0.0))
    print(f"published {len(selection.selected)} view selections")
    for name, sql in DASHBOARD_QUERIES:
        result = session.run(sql, template_id=name, now=300.0)
        print(f"{name:<16} built={result.views_built} "
              f"reused={result.views_reused}")
    print(f"\nsession totals: {session.views_created} views "
          f"created, {session.views_reused} reuses")
    session.close()


if __name__ == "__main__":
    main()
