"""Checkpoint and restart via CloudViews materialization (Section 5.6).

"Job failures are common in production clusters ... these transient
errors are especially problematic for long running jobs that run for
hours and fail towards the end."  CloudViews' online materialization
doubles as an automatic checkpoint: the spooled views of a failed job are
already early-sealed, so the resubmission's view matching silently picks
them up and skips the recomputation.

Run:  python examples/checkpoint_restart.py
"""

from repro import Session, schema_of
from repro.extensions import CheckpointManager, FailureModel

LONG_RUNNING_REPORT = (
    "SELECT Region, SUM(Revenue) AS total, COUNT(*) AS orders "
    "FROM Orders JOIN Stores "
    "WHERE Status = 'complete' GROUP BY Region")


def main() -> None:
    session = Session()
    engine = session.engine
    session.register_table(
        schema_of("Orders", [("StoreId", "int"), ("Revenue", "float"),
                             ("Status", "str")]),
        [dict(StoreId=i % 40, Revenue=float(i % 500),
              Status="complete" if i % 7 else "pending")
         for i in range(1500)])
    session.register_table(
        schema_of("Stores", [("StoreId", "int"), ("Region", "str")]),
        [dict(StoreId=i, Region=["east", "west", "north"][i % 3])
         for i in range(40)])

    # Query history says aggregations and joins fail most often; put the
    # checkpoints just before them.
    failure_model = FailureModel()
    manager = CheckpointManager(engine, failure_model)

    print("== Attempt 1: compile with checkpoints ==")
    compiled = manager.compile_with_checkpoints(LONG_RUNNING_REPORT)
    print(f"{compiled.built_views} checkpoint(s) inserted:")
    print(compiled.plan.explain())

    print("\n== Attempt 1 fails near the end ==")
    run, sealed = manager.run_with_failure(compiled, now=0.0)
    assert run is None
    print(f"job failed, but {len(sealed)} checkpoint view(s) were "
          f"early-sealed before the failure:")
    for signature in sealed:
        view = engine.view_store.lookup(signature, now=1.0)
        print(f"  {signature[:12]}…  {view.row_count} rows at {view.path}")

    print("\n== Resubmission: recover from the last checkpoint ==")
    recovered = manager.resubmit(LONG_RUNNING_REPORT, now=10.0)
    print(f"reused {recovered.compiled.reused_views} checkpoint view(s); "
          f"recovered plan:")
    print(recovered.compiled.plan.explain())

    clean = session.run(LONG_RUNNING_REPORT, reuse_override=False,
                        now=10.0)
    assert sorted(map(repr, recovered.rows)) == sorted(map(repr, clean.rows))
    print("\nrecovered results verified against a clean recomputation:")
    for row in sorted(recovered.rows, key=lambda r: r["Region"]):
        print(f"  {row}")
    session.close()


if __name__ == "__main__":
    main()
