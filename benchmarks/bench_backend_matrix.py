"""Backend matrix: throughput and reuse parity across execution backends.

Runs the same two-round TPC-DS flow (observe, select, re-run with reuse)
on every registered execution backend, with CloudViews on and off, and
emits ``BENCH_backends.json`` at the repo root for trend tracking.  The
timing columns differ between backends -- that is the point of the
matrix -- but the *reuse* columns must not: identical views created,
views reused, and catalog digest on every backend, or the backend
abstraction is leaking into selection.
"""

import json
import pathlib
import time

from repro.api import Session
from repro.backends import backend_names
from repro.config import SessionConfig
from repro.core import MultiLevelControls
from repro.selection import SelectionPolicy
from repro.workload.tpcds import TPCDS_QUERIES, install_tpcds

SCALE_ROWS = 800
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_backends.json"


def run_cell(backend: str, reuse: bool):
    """One matrix cell: the two-round TPC-DS flow on one backend."""
    controls = MultiLevelControls()
    controls.enable_vc("default")
    config = SessionConfig(backend=backend,
                           selection_algorithm="bigsubs",
                           selection_policy=SelectionPolicy(
                               storage_budget_bytes=50_000_000,
                               min_reuses_per_epoch=0.0))
    started = time.perf_counter()
    with Session(config=config, controls=controls) as session:
        install_tpcds(session.engine, scale_rows=SCALE_ROWS)
        jobs = 0
        for round_no in (1, 2):
            for offset, (name, sql) in enumerate(TPCDS_QUERIES):
                session.run(sql, template_id=name, reuse_override=reuse,
                            now=1000.0 * round_no + offset)
                jobs += 1
            if round_no == 1 and reuse:
                session.analyze_and_publish()
        wall = time.perf_counter() - started
        return {
            "backend": backend,
            "reuse": reuse,
            "jobs": jobs,
            "wall_seconds": round(wall, 3),
            "jobs_per_second": round(jobs / wall, 1) if wall else 0.0,
            "views_created": session.views_created,
            "views_reused": session.views_reused,
            "catalog_digest": session.catalog_digest(),
            "config": config.to_dict(),
        }


def run_matrix():
    cells = [run_cell(backend, reuse)
             for backend in sorted(backend_names())
             for reuse in (True, False)]
    return {
        "benchmark": "backend_matrix",
        "workload": "tpcds",
        "scale_rows": SCALE_ROWS,
        "queries": len(TPCDS_QUERIES),
        "cells": cells,
    }


def test_backend_matrix(benchmark):
    report = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    print("\nBackend matrix (two-round TPC-DS)")
    print(f"{'backend':<10}{'reuse':<7}{'jobs/s':>8}{'created':>9}"
          f"{'reused':>8}  digest")
    for cell in report["cells"]:
        print(f"{cell['backend']:<10}{str(cell['reuse']):<7}"
              f"{cell['jobs_per_second']:>8,.1f}"
              f"{cell['views_created']:>9}{cell['views_reused']:>8}  "
              f"{cell['catalog_digest'][:12]}")

    # Parity: selection outcomes are backend-invariant.
    for reuse in (True, False):
        group = [c for c in report["cells"] if c["reuse"] == reuse]
        assert len({c["catalog_digest"] for c in group}) == 1
        assert len({(c["views_created"], c["views_reused"])
                    for c in group}) == 1
    with_reuse = [c for c in report["cells"] if c["reuse"]]
    assert all(c["views_reused"] > 0 for c in with_reuse)

    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"matrix -> {OUTPUT}")


if __name__ == "__main__":
    OUTPUT.write_text(json.dumps(run_matrix(), indent=2) + "\n")
    print(f"matrix -> {OUTPUT}")
