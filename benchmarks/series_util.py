"""Shared helpers for the Figure 6/7 cumulative-series benchmarks."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.runner import SimulationReport


def paired_series(enabled: SimulationReport, baseline: SimulationReport,
                  metric: str) -> List[Tuple[int, float, float]]:
    """(day, cumulative baseline, cumulative cloudviews) rows."""
    base = dict(baseline.cumulative_daily(metric))
    with_cv = dict(enabled.cumulative_daily(metric))
    days = sorted(set(base) | set(with_cv))
    rows = []
    last_base = last_cv = 0.0
    for day in days:
        last_base = base.get(day, last_base)
        last_cv = with_cv.get(day, last_cv)
        rows.append((day, last_base, last_cv))
    return rows


def print_series(title: str, unit: str,
                 rows: List[Tuple[int, float, float]]) -> None:
    print(f"\n{title}")
    print(f"{'day':>4} {'baseline':>16} {'cloudviews':>16} {'gain':>8}")
    for day, base, cv in rows:
        gain = (base - cv) / base * 100 if base else 0.0
        print(f"{day:>4} {base:>16,.0f} {cv:>16,.0f} {gain:>7.1f}%  ({unit})")


def final_improvement(rows: List[Tuple[int, float, float]]) -> float:
    _, base, cv = rows[-1]
    return (base - cv) / base * 100 if base else 0.0


def assert_cumulative_monotone(rows: List[Tuple[int, float, float]]) -> None:
    for (_, b0, c0), (_, b1, c1) in zip(rows, rows[1:]):
        assert b1 >= b0 and c1 >= c0
